"""E4 — Theorem 2(4): the lower bound on lambda(G_t) (algebraic connectivity).

Paper claim: ``lambda(G_t) >= min(Omega(lambda(G'_t)^2 d_min / (kappa^2 d_max^2)),
Omega(1 / (kappa d_max)^2))``.

Measured here: lambda(G_t), lambda(G'_t), and the explicit bound with the
proof's constants, on a bounded-degree expander under random and hub-targeted
deletions.
"""

from __future__ import annotations

from repro.adversary import DeletionOnlyAdversary, MaxDegreeAdversary
from repro.analysis.invariants import check_spectral_invariant
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import random_regular_workload


def _run(graph, adversary, steps, kappa):
    healer = Xheal(kappa=kappa, seed=21)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary.bind(graph)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
    return healer, ghost


def spectral_rows():
    rows = []
    for kappa, degree, adversary_factory in (
        (4, 4, lambda: DeletionOnlyAdversary(seed=2)),
        (4, 6, lambda: MaxDegreeAdversary(seed=3)),
        (8, 6, lambda: DeletionOnlyAdversary(seed=4)),
    ):
        graph = random_regular_workload(48, degree, seed=5)
        healer, ghost = _run(graph, adversary_factory(), steps=18, kappa=kappa)
        result = check_spectral_invariant(healer.graph, ghost, kappa=kappa)
        rows.append(
            {
                "workload": f"random-regular d={degree}",
                "kappa": kappa,
                "lambda(Gt)": round(result.healed_lambda, 4),
                "lambda(G't)": round(result.ghost_lambda, 4),
                "theorem2_bound": f"{result.bound:.2e}",
                "holds": result.holds,
            }
        )
    return rows


def test_spectral_gap_bound(run_once):
    rows = run_once(spectral_rows)
    print()
    print_table(rows, title="E4  Theorem 2(4): lambda(Gt) lower bound")
    assert all(row["holds"] for row in rows)
    # On expanders the healed lambda stays well above the (loose) bound.
    assert all(row["lambda(Gt)"] > 0 for row in rows)
