"""E6 — Theorem 5 / Lemma 5: recovery rounds and amortised message complexity.

Paper claims:
* every repair completes in O(log n) rounds,
* the amortised message complexity over p deletions is O(kappa log n * A(p)),
  where A(p) = (1/p) sum Theta(deg(v_i)) is the Lemma 5 lower bound.

Measured here with the distributed protocol simulation (real message counts),
sweeping the network size: amortised messages per deletion, the A(p) lower
bound, the kappa log n A(p) upper-bound shape, and the worst-case rounds
versus log2(n).
"""

from __future__ import annotations

import math

from repro.adversary import DeletionOnlyAdversary
from repro.analysis.amortized import CostLedger
from repro.core.ghost import GhostGraph
from repro.distributed import DistributedXheal
from repro.harness.reporting import print_table
from repro.harness.workloads import random_regular_workload

KAPPA = 4


def _run_size(n, steps):
    graph = random_regular_workload(n, 4, seed=1)
    healer = DistributedXheal(kappa=KAPPA, seed=2)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=3)
    adversary.bind(graph)
    ledger = CostLedger(kappa=KAPPA)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        black_degree = ghost.degree(event.node)
        ghost.record_deletion(event.node)
        report = healer.handle_deletion(event.node)
        ledger.record_deletion(
            event.node, black_degree, report.messages, report.rounds, healer.graph.number_of_nodes()
        )
    summary = ledger.summary()
    return {
        "n": n,
        "deletions": summary.deletions,
        "A(p) lower bound": round(summary.lower_bound, 1),
        "measured amortized msgs": round(summary.amortized_messages, 1),
        "kappa*log2(n)*A(p)": round(KAPPA * math.log2(n) * summary.lower_bound, 1),
        "overhead vs A(p)": round(summary.overhead_vs_lower_bound, 1),
        "max rounds": healer.max_rounds(),
        "log2(n)": round(math.log2(n), 1),
    }


def message_complexity_rows():
    return [_run_size(n, steps) for n, steps in ((40, 12), (80, 16), (160, 20))]


def test_message_and_round_complexity(run_once):
    rows = run_once(message_complexity_rows)
    print()
    print_table(rows, title="E6  Theorem 5: rounds and amortized messages vs n")
    for row in rows:
        # Amortised messages stay within a small constant of the kappa log n A(p) shape.
        assert row["measured amortized msgs"] <= 5 * row["kappa*log2(n)*A(p)"]
        # Recovery rounds stay logarithmic, nowhere near linear in n.
        assert row["max rounds"] <= 8 * row["log2(n)"]
        assert row["max rounds"] < row["n"] / 2
    # The per-deletion overhead over the trivial lower bound does not explode with n.
    overheads = [row["overhead vs A(p)"] for row in rows]
    assert max(overheads) <= 12 * max(1.0, math.log2(rows[-1]["n"]))
