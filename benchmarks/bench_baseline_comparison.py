"""E10 — Full comparison: Xheal vs Forgiving Tree / Forgiving Graph / naive healers.

Paper claim (abstract + related work): Xheal matches the degree and stretch
guarantees of the Forgiving Tree/Graph line of work while *also* preserving
expansion and spectral gap; naive healers sacrifice one side or the other
(clique healing keeps expansion but explodes degrees; cycle healing keeps
degrees but destroys expansion and stretch).

Measured here: every healer replays the *same* adversarial deletion trace on
the same initial topology, and the final h, lambda, max stretch, max degree
ratio and connectivity are tabulated.
"""

from __future__ import annotations

from repro.adversary import MaxDegreeAdversary
from repro.baselines import (
    CliqueHeal,
    ForgivingGraphHeal,
    ForgivingTreeHeal,
    LineHeal,
    NoHeal,
)
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment, run_healer_on_trace
from repro.harness.reporting import print_comparison
from repro.harness.workloads import power_law_workload

HEALERS = [
    lambda: Xheal(kappa=4, seed=1),
    lambda: ForgivingTreeHeal(seed=1),
    lambda: ForgivingGraphHeal(seed=1),
    lambda: LineHeal(seed=1),
    lambda: CliqueHeal(seed=1),
    lambda: NoHeal(seed=1),
]


def comparison_results():
    initial = power_law_workload(70, 2, seed=5)
    reference = run_experiment(
        ExperimentConfig(
            healer_factory=lambda: Xheal(kappa=4, seed=1),
            adversary_factory=lambda: MaxDegreeAdversary(seed=9),
            initial_graph=initial,
            timesteps=25,
            kappa=4,
            exact_expansion_limit=0,
            stretch_sample_pairs=150,
        )
    )
    results = [reference]
    for factory in HEALERS[1:]:
        results.append(
            run_healer_on_trace(
                factory(), initial, reference.trace, kappa=4,
                exact_expansion_limit=0, stretch_sample_pairs=150,
            )
        )
    return results


def test_baseline_comparison(run_once):
    results = run_once(comparison_results)
    print()
    print_comparison(results, title="E10  Same deletion trace, all healers (power-law n=70, hub attack)")
    by_name = {result.healer_name: result for result in results}
    xheal = by_name["xheal"]
    # Xheal: connected, constant expansion, bounded degree ratio.
    assert xheal.connected
    assert xheal.final_metrics.edge_expansion >= 0.9
    assert xheal.final_verdict.degree.holds
    # Tree-based healers keep degrees low but lose the spectral race: Xheal's
    # healed graph has at least as good expansion and a strictly better
    # algebraic connectivity on the same trace.
    for name in ("forgiving-tree", "forgiving-graph"):
        baseline = by_name[name]
        if baseline.connected:
            assert xheal.final_metrics.edge_expansion >= baseline.final_metrics.edge_expansion
            assert (
                xheal.final_metrics.algebraic_connectivity
                > baseline.final_metrics.algebraic_connectivity
            )
    # Clique healing wins on expansion but violates the degree discipline badly.
    clique = by_name["clique-heal"]
    assert clique.worst_degree_ratio > xheal.worst_degree_ratio
    # No healing loses connectivity under a hub attack.
    assert not by_name["no-heal"].connected
