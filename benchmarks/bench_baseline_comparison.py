"""E10 — Full comparison: Xheal vs Forgiving Tree / Forgiving Graph / naive healers.

Paper claim (abstract + related work): Xheal matches the degree and stretch
guarantees of the Forgiving Tree/Graph line of work while *also* preserving
expansion and spectral gap; naive healers sacrifice one side or the other
(clique healing keeps expansion but explodes degrees; cycle healing keeps
degrees but destroys expansion and stretch).

Measured here: every healer replays the *same* adversarial deletion trace on
the same initial topology (via :func:`compare_healers`, which shares the
full-ghost metrics cache across all six runs), and the final h, lambda, max
stretch, max degree ratio and connectivity are tabulated.
"""

from __future__ import annotations

from repro.harness.reporting import print_comparison
from repro.harness.sweeps import compare_healers, healer_factory
from repro.scenarios import ScenarioSpec

SPEC = ScenarioSpec(
    name="e10-baseline-comparison",
    healer="xheal",
    healer_kwargs={"kappa": 4, "seed": 1},
    adversary="max-degree",
    adversary_kwargs={"seed": 9},
    topology="power-law",
    topology_kwargs={"n": 70, "m": 2, "seed": 5},
    timesteps=25,
    kappa=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=150,
)

CHALLENGERS = ("forgiving-tree", "forgiving-graph", "line-heal", "clique-heal", "no-heal")


def comparison_results():
    config = SPEC.compile()
    factories = [config.healer_factory] + [
        healer_factory(name, seed=1) for name in CHALLENGERS
    ]
    return compare_healers(config, factories)


def test_baseline_comparison(run_once):
    results = run_once(comparison_results)
    print()
    print_comparison(results, title="E10  Same deletion trace, all healers (power-law n=70, hub attack)")
    by_name = {result.healer_name: result for result in results}
    xheal = by_name["xheal"]
    # Xheal: connected, constant expansion, bounded degree ratio.
    assert xheal.connected
    assert xheal.final_metrics.edge_expansion >= 0.9
    assert xheal.final_verdict.degree.holds
    # Tree-based healers keep degrees low but lose the spectral race: Xheal's
    # healed graph has at least as good expansion and a strictly better
    # algebraic connectivity on the same trace.
    for name in ("forgiving-tree", "forgiving-graph"):
        baseline = by_name[name]
        if baseline.connected:
            assert xheal.final_metrics.edge_expansion >= baseline.final_metrics.edge_expansion
            assert (
                xheal.final_metrics.algebraic_connectivity
                > baseline.final_metrics.algebraic_connectivity
            )
    # Clique healing wins on expansion but violates the degree discipline badly.
    clique = by_name["clique-heal"]
    assert clique.worst_degree_ratio > xheal.worst_degree_ratio
    # No healing loses connectivity under a hub attack.
    assert not by_name["no-heal"].connected
    # All runs replayed the same trace, so the Theorem-2 reference (full-ghost)
    # metrics are identical — and computed once thanks to the shared cache.
    ghost_rows = {
        (result.ghost_metrics.nodes, result.ghost_metrics.edges,
         result.ghost_metrics.edge_expansion)
        for result in results
    }
    assert len(ghost_rows) == 1
