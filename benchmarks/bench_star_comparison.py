"""E7 — The star worst case: Xheal vs tree-based healing.

Paper claim (Section 1, Related Work): "If the original network is a star of
n+1 nodes and the central node gets deleted, the repair algorithm [that puts
in a tree] puts in a tree, pulling the expansion down from a constant to
O(1/n)", whereas Xheal replaces the star centre by a kappa-regular expander
and keeps the expansion constant.

Measured here: expansion, conductance and lambda_2 of the healed graph after
deleting the centre of stars of increasing size, for Xheal, Forgiving Tree,
Forgiving Graph and the line/cycle baseline.  The expected shape: the
tree/line healers' expansion decays like 1/n; Xheal's stays ~constant.
"""

from __future__ import annotations

from repro.baselines import ForgivingGraphHeal, ForgivingTreeHeal, LineHeal
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import star_workload
from repro.spectral.cheeger import cheeger_constant
from repro.spectral.expansion import edge_expansion
from repro.spectral.laplacian import algebraic_connectivity

HEALERS = {
    "xheal": lambda: Xheal(kappa=6, seed=1),
    "forgiving-tree": lambda: ForgivingTreeHeal(seed=1),
    "forgiving-graph": lambda: ForgivingGraphHeal(seed=1),
    "line-heal": lambda: LineHeal(seed=1),
}

SIZES = (32, 64, 128)


def star_comparison_rows():
    rows = []
    for n in SIZES:
        for name, factory in HEALERS.items():
            healer = factory()
            healer.initialize(star_workload(n))
            healer.handle_deletion(0)
            graph = healer.graph
            rows.append(
                {
                    "n": n,
                    "healer": name,
                    "h(Gt)": round(edge_expansion(graph, exact_limit=0), 4),
                    "phi(Gt)": round(cheeger_constant(graph, exact_limit=0), 4),
                    "lambda(Gt)": round(algebraic_connectivity(graph), 4),
                    "1/n reference": round(1.0 / n, 4),
                }
            )
    return rows


def test_star_comparison(run_once):
    rows = run_once(star_comparison_rows)
    print()
    print_table(rows, title="E7  Star-centre deletion: Xheal vs tree-based healers")
    by_key = {(row["n"], row["healer"]): row for row in rows}
    for n in SIZES:
        xheal = by_key[(n, "xheal")]
        tree = by_key[(n, "forgiving-tree")]
        line = by_key[(n, "line-heal")]
        # Xheal keeps constant expansion; the tree and line healers collapse towards O(1/n).
        assert xheal["h(Gt)"] >= 0.6
        assert tree["h(Gt)"] <= 0.3
        assert line["h(Gt)"] <= 10.0 / n
        assert xheal["h(Gt)"] > 3 * tree["h(Gt)"]
        assert xheal["lambda(Gt)"] > tree["lambda(Gt)"]
    # The gap widens with n (the 1/n decay), i.e. a crossover never happens.
    assert by_key[(128, "forgiving-tree")]["h(Gt)"] <= by_key[(32, "forgiving-tree")]["h(Gt)"]
