"""E1 — Theorem 2(1): degree increase is bounded by kappa * d' + 2 kappa.

Paper claim: for every node x, ``degree(x, G_t) <= kappa * degree(x, G'_t)``
plus an additive ``2 kappa`` (one bridge duty + one share, Lemma 3).

Measured here: the worst per-node degree ratio and the worst additive excess
over several topologies and adversaries, for kappa in {4, 8}, plus the same
numbers for the clique-cloud ablation (which deliberately has no degree
discipline) to show the bound is not vacuous.
"""

from __future__ import annotations

from repro.adversary import DeletionOnlyAdversary, MaxDegreeAdversary
from repro.analysis.invariants import check_degree_invariant
from repro.core.ablations import XhealCliqueClouds
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import power_law_workload, random_regular_workload


def _run_case(healer, graph, adversary, steps):
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary.bind(graph)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
    return healer, ghost


def degree_bound_rows():
    rows = []
    cases = [
        ("random-regular", random_regular_workload(60, 4, seed=1), DeletionOnlyAdversary(seed=2)),
        ("random-regular", random_regular_workload(60, 4, seed=1), MaxDegreeAdversary(seed=3)),
        ("power-law", power_law_workload(60, 2, seed=4), MaxDegreeAdversary(seed=5)),
    ]
    for kappa in (4, 8):
        for name, graph, adversary in cases:
            healer, ghost = _run_case(Xheal(kappa=kappa, seed=7), graph.copy(), adversary, steps=30)
            result = check_degree_invariant(healer.graph, ghost, kappa=kappa)
            rows.append(
                {
                    "healer": f"xheal(k={kappa})",
                    "workload": name,
                    "adversary": adversary.name,
                    "worst_ratio": round(result.worst_ratio, 2),
                    "bound_ratio": f"<= {kappa} (+{2 * kappa} additive)",
                    "violations": len(result.violations),
                    "holds": result.holds,
                }
            )
    # Ablation: clique clouds have no kappa discipline and break the bound.
    graph = random_regular_workload(60, 4, seed=1)
    healer, ghost = _run_case(XhealCliqueClouds(kappa=4, seed=7), graph, MaxDegreeAdversary(seed=3), 30)
    result = check_degree_invariant(healer.graph, ghost, kappa=4)
    rows.append(
        {
            "healer": "xheal-clique-clouds",
            "workload": "random-regular",
            "adversary": "max-degree",
            "worst_ratio": round(result.worst_ratio, 2),
            "bound_ratio": "(no discipline)",
            "violations": len(result.violations),
            "holds": result.holds,
        }
    )
    return rows


def test_degree_bound(run_once):
    rows = run_once(degree_bound_rows)
    print()
    print_table(rows, title="E1  Theorem 2(1): degree increase bound")
    xheal_rows = [row for row in rows if row["healer"].startswith("xheal(")]
    assert all(row["holds"] for row in xheal_rows)
    assert all(row["violations"] == 0 for row in xheal_rows)
