"""E9 — The Section 1.1 example: expansion vs conductance vs mixing time.

Paper claim: take a constant-degree expander and the graph formed by two
n/2-cliques joined by an edge.  Both have edge expansion at least a constant,
but the clique-pair's conductance is O(1/n), so its (lazy random walk) mixing
time is polynomial while the expander's is logarithmic.  This is the paper's
argument for why the Cheeger constant / lambda_2, not just edge expansion, is
the right spectral target.

Measured here: h, phi, lambda_2 (normalized) and the spectral mixing-time
estimate for both graphs at increasing sizes.
"""

from __future__ import annotations

from repro.harness.reporting import print_table
from repro.harness.workloads import random_regular_workload, two_cliques_workload
from repro.spectral.cheeger import cheeger_constant
from repro.spectral.expansion import edge_expansion
from repro.spectral.laplacian import normalized_laplacian_second_eigenvalue
from repro.spectral.mixing import spectral_mixing_time


def cheeger_example_rows():
    rows = []
    for n in (16, 32, 64):
        expander = random_regular_workload(n, 6, seed=1)
        cliques = two_cliques_workload(n)
        for name, graph in (("expander d=6", expander), ("two-cliques", cliques)):
            rows.append(
                {
                    "n": n,
                    "graph": name,
                    "h": round(edge_expansion(graph, exact_limit=0), 3),
                    "phi": round(cheeger_constant(graph, exact_limit=0), 4),
                    "lambda2(norm)": round(normalized_laplacian_second_eigenvalue(graph), 4),
                    "t_mix estimate": round(spectral_mixing_time(graph), 1),
                }
            )
    return rows


def test_cheeger_example(run_once):
    rows = run_once(cheeger_example_rows)
    print()
    print_table(rows, title="E9  Expansion vs conductance (Section 1.1 example)")
    by_key = {(row["n"], row["graph"]): row for row in rows}
    for n in (16, 32, 64):
        expander = by_key[(n, "expander d=6")]
        cliques = by_key[(n, "two-cliques")]
        # Both have constant-ish edge expansion...
        assert expander["h"] >= 1.0
        assert cliques["h"] >= 0.5
        # ...but the clique-pair's conductance falls below the expander's and it mixes slower.
        assert cliques["phi"] < expander["phi"]
        assert cliques["t_mix estimate"] > expander["t_mix estimate"]
    # The O(1/n) collapse: quadrupling n at least halves the clique-pair's
    # conductance, while the expander's stays a constant.
    assert by_key[(64, "two-cliques")]["phi"] < by_key[(16, "two-cliques")]["phi"] / 2
    assert by_key[(64, "expander d=6")]["phi"] > by_key[(16, "expander d=6")]["phi"] / 2
    # The conductance gap (and mixing-time gap) widens with n.
    assert by_key[(64, "two-cliques")]["phi"] < by_key[(16, "two-cliques")]["phi"]
    assert by_key[(64, "two-cliques")]["t_mix estimate"] > by_key[(16, "two-cliques")]["t_mix estimate"]
