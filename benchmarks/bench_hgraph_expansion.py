"""E8 — Law-Siu Theorems 3-4: random H-graphs are expanders w.h.p. and stay so under churn.

Paper claims (quoted as Theorems 3 and 4):
* a random n-node 2d-regular H-graph has edge expansion Omega(d) with
  probability at least 1 - O(n^-p),
* the class is closed under the incremental INSERT/DELETE operations.

Measured here: the empirical success fraction and mean expansion over repeated
random constructions for several (n, d), and the expansion of an H-graph after
a long insert/delete churn sequence.
"""

from __future__ import annotations

import networkx as nx

from repro.expanders.hgraph import HGraph
from repro.expanders.verification import empirical_expansion_profile
from repro.harness.reporting import print_table
from repro.spectral.expansion import edge_expansion
from repro.util.rng import SeededRng


def profile_rows():
    rows = []
    for n in (16, 32, 64):
        for d in (2, 4):
            profile = empirical_expansion_profile(
                n=n, d=d, trials=10, threshold=d / 2.0, base_seed=7, exact_limit=16
            )
            rows.append(
                {
                    "n": n,
                    "d": d,
                    "trials": profile.trials,
                    "threshold (Omega(d) proxy)": profile.threshold,
                    "success_fraction": round(profile.success_fraction, 2),
                    "min h": round(profile.min_expansion, 3),
                    "mean h": round(profile.mean_expansion, 3),
                    "mean lambda2": round(profile.mean_lambda2, 3),
                }
            )
    return rows


def churn_row():
    rng = SeededRng(3)
    hgraph = HGraph(range(30), d=3, rng=rng)
    next_id = 1000
    for step in range(200):
        if rng.coin(0.5) and len(hgraph) > 10:
            hgraph.delete(rng.choice(sorted(hgraph.nodes())))
        else:
            hgraph.insert(next_id)
            next_id += 1
    graph = hgraph.to_graph()
    return {
        "n_after_churn": len(hgraph),
        "churn_ops": 200,
        "h after churn": round(edge_expansion(graph, exact_limit=0), 3),
        "connected": nx.is_connected(graph),
    }


def test_hgraph_expansion(run_once):
    rows = run_once(profile_rows)
    print()
    print_table(rows, title="E8  Law-Siu H-graphs: expansion w.h.p.")
    churn = churn_row()
    print_table([churn], title="E8b H-graph after 200 insert/delete operations")
    # d=4 constructions clear the Omega(d) proxy threshold in the large majority of trials
    # (the estimator only reports an upper bound on h, so this undercounts successes).
    d4 = [row for row in rows if row["d"] == 4]
    assert all(row["success_fraction"] >= 0.6 for row in d4)
    # Expansion grows with d for fixed n.
    for n in (16, 32, 64):
        low = next(row for row in rows if row["n"] == n and row["d"] == 2)
        high = next(row for row in rows if row["n"] == n and row["d"] == 4)
        assert high["mean h"] > low["mean h"]
    assert churn["connected"]
    assert churn["h after churn"] >= 1.0
