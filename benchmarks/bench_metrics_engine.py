"""P1 — metrics engine: fast kernels vs reference implementations.

Not a paper experiment but the perf harness guarding the reproduction's
metric pipeline: the vectorized Gray-code expansion kernel, the
sampled-source stretch kernel and the version-keyed snapshot cache are each
timed against the slow reference formulation they replaced, on the same
workloads ``scripts/bench_record.py`` records into ``BENCH_metrics.json``.

The asserted floors are far below the typically measured speedups (~10x
stretch at n=1024, >100x exact expansion at n=18, >1000x cached re-snapshot)
so the benchmark only fails on a genuine regression, not on machine noise.
"""

from __future__ import annotations

import time

import networkx as nx

from repro.harness.reporting import print_table
from repro.perf.engine import MetricsEngine
from repro.spectral.expansion import exact_minimum_cut_reference, minimum_expansion_cut
from repro.spectral.stretch import stretch_against_ghost, stretch_against_ghost_reference


def _best_of(callable_, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def engine_rows():
    rows = []

    healed = nx.random_regular_graph(8, 1024, seed=1)
    ghost = nx.random_regular_graph(8, 1024, seed=2)
    old_s, old_val = _best_of(
        lambda: stretch_against_ghost_reference(healed, ghost, sample_pairs=200, seed=0),
        repeat=1,
    )
    new_s, new_val = _best_of(
        lambda: stretch_against_ghost(healed, ghost, sample_pairs=200, seed=0), repeat=1
    )
    assert old_val == new_val
    rows.append(
        {
            "kernel": "stretch (sampled, n=1024)",
            "reference_s": round(old_s, 4),
            "fast_s": round(new_s, 4),
            "speedup": round(old_s / new_s, 1),
            "floor": "5x",
        }
    )

    graph = nx.random_regular_graph(4, 16, seed=1)
    old_s, old_res = _best_of(lambda: exact_minimum_cut_reference(graph))
    new_s, new_res = _best_of(lambda: minimum_expansion_cut(graph))
    assert old_res.value == new_res.value
    rows.append(
        {
            "kernel": "exact expansion (n=16)",
            "reference_s": round(old_s, 4),
            "fast_s": round(new_s, 4),
            "speedup": round(old_s / new_s, 1),
            "floor": "3x",
        }
    )

    big = nx.random_regular_graph(8, 512, seed=3)
    engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=200)
    cold_s, _ = _best_of(lambda: engine.snapshot(big, version=1), repeat=1)
    warm_s, _ = _best_of(lambda: engine.snapshot(big, version=1))
    rows.append(
        {
            "kernel": "re-snapshot unchanged graph (n=512)",
            "reference_s": round(cold_s, 4),
            "fast_s": round(warm_s, 6),
            "speedup": round(cold_s / max(warm_s, 1e-9), 1),
            "floor": "100x",
        }
    )
    return rows


def test_metrics_engine_speedups(run_once):
    rows = run_once(engine_rows)
    print()
    print_table(rows, title="P1  metrics engine: fast kernels vs references")
    by_kernel = {row["kernel"]: row["speedup"] for row in rows}
    assert by_kernel["stretch (sampled, n=1024)"] >= 5.0
    assert by_kernel["exact expansion (n=16)"] >= 3.0
    assert by_kernel["re-snapshot unchanged graph (n=512)"] >= 100.0
