"""Ablation — the effect of kappa (expander-cloud degree) on the guarantees.

DESIGN.md calls kappa the main implementation-dependent parameter: the paper
allows it to be a constant or Theta(log n).  Larger kappa gives denser clouds
(better expansion per cloud, higher w.h.p. confidence for the H-graph) at the
cost of a proportionally larger degree increase and message volume.

Measured here: final expansion, degree ratio and healing edge volume of Xheal
with kappa in {2, 4, 8} (and the always-merge ablation at kappa=4) on the same
workload and adversary.  The grid is expressed as a list of
:class:`ScenarioSpec` points executed by :func:`run_scenarios` — the same
records ``python -m repro sweep`` prints.
"""

from __future__ import annotations

from repro.harness.reporting import print_table
from repro.scenarios import ScenarioSpec, run_scenarios

BASE = ScenarioSpec(
    name="kappa-ablation",
    healer="xheal",
    healer_kwargs={"kappa": 4, "seed": 1},
    adversary="deletion-only",
    adversary_kwargs={"seed": 2},
    topology="random-regular",
    topology_kwargs={"n": 50, "degree": 4, "seed": 3},
    timesteps=20,
    kappa=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=100,
)


def ablation_specs() -> list[tuple[str, object, ScenarioSpec]]:
    """Return (sweep label, parameter, spec): the kappa grid plus the merge ablation."""
    points: list[tuple[str, object, ScenarioSpec]] = []
    for kappa in (2, 4, 8):
        points.append(
            (
                "kappa",
                kappa,
                BASE.with_overrides(
                    name=f"kappa-ablation[kappa={kappa}]",
                    healer_kwargs={"kappa": kappa, "seed": 1},
                    kappa=kappa,
                ),
            )
        )
    points.append(
        (
            "ablation",
            "always-merge",
            BASE.with_overrides(name="kappa-ablation[always-merge]", healer="xheal-always-merge"),
        )
    )
    return points


def kappa_ablation_rows():
    points = ablation_specs()
    records = run_scenarios([spec for _, _, spec in points])
    rows = []
    for (sweep, parameter, _), record in zip(points, records):
        row = {"sweep": sweep, "parameter": parameter}
        row.update(record.summary)
        rows.append(row)
    return rows


def test_kappa_ablation(run_once):
    rows = run_once(kappa_ablation_rows)
    print()
    columns = [
        "sweep", "parameter", "healer", "connected", "h(Gt)", "lambda(Gt)",
        "max_stretch", "max_degree_ratio", "amortized_msgs", "theorem2_holds",
    ]
    print_table(rows, columns=columns, title="Ablation: kappa and always-merge")
    by_param = {row["parameter"]: row for row in rows}
    # All variants keep connectivity and the Theorem 2 guarantees for their own kappa.
    assert all(row["connected"] for row in rows)
    assert all(row["theorem2_holds"] for row in rows)
    # Larger kappa may raise the degree ratio ceiling but never above kappa + slack.
    for kappa in (2, 4, 8):
        assert by_param[kappa]["max_degree_ratio"] <= kappa + 2 * kappa
    # Always-merge pays more healing work (message estimate) than standard Xheal.
    assert by_param["always-merge"]["amortized_msgs"] >= by_param[4]["amortized_msgs"]
