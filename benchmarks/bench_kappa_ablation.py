"""Ablation — the effect of kappa (expander-cloud degree) on the guarantees.

DESIGN.md calls kappa the main implementation-dependent parameter: the paper
allows it to be a constant or Theta(log n).  Larger kappa gives denser clouds
(better expansion per cloud, higher w.h.p. confidence for the H-graph) at the
cost of a proportionally larger degree increase and message volume.

Measured here: final expansion, degree ratio and healing edge volume of Xheal
with kappa in {2, 4, 8} (and the always-merge ablation at kappa=4) on the same
workload and adversary.
"""

from __future__ import annotations

from dataclasses import replace

from repro.adversary import DeletionOnlyAdversary
from repro.core.ablations import XhealAlwaysMerge
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.reporting import print_table
from repro.harness.sweeps import sweep_parameter
from repro.harness.workloads import random_regular_workload


def kappa_ablation_rows():
    base = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: DeletionOnlyAdversary(seed=2),
        initial_graph=random_regular_workload(50, 4, seed=3),
        timesteps=20,
        kappa=4,
        exact_expansion_limit=0,
        stretch_sample_pairs=100,
    )
    sweep = sweep_parameter(
        base,
        label="kappa",
        values=[2, 4, 8],
        configure=lambda config, kappa: replace(
            config, healer_factory=lambda: Xheal(kappa=kappa, seed=1), kappa=kappa
        ),
    )
    rows = [point.row() for point in sweep]
    merge_result = run_experiment(
        replace(base, healer_factory=lambda: XhealAlwaysMerge(kappa=4, seed=1))
    )
    merge_row = {"sweep": "ablation", "parameter": "always-merge"}
    merge_row.update(merge_result.summary_row())
    rows.append(merge_row)
    return rows


def test_kappa_ablation(run_once):
    rows = run_once(kappa_ablation_rows)
    print()
    columns = [
        "sweep", "parameter", "healer", "connected", "h(Gt)", "lambda(Gt)",
        "max_stretch", "max_degree_ratio", "amortized_msgs", "theorem2_holds",
    ]
    print_table(rows, columns=columns, title="Ablation: kappa and always-merge")
    by_param = {row["parameter"]: row for row in rows}
    # All variants keep connectivity and the Theorem 2 guarantees for their own kappa.
    assert all(row["connected"] for row in rows)
    assert all(row["theorem2_holds"] for row in rows)
    # Larger kappa may raise the degree ratio ceiling but never above kappa + slack.
    for kappa in (2, 4, 8):
        assert by_param[kappa]["max_degree_ratio"] <= kappa + 2 * kappa
    # Always-merge pays more healing work (message estimate) than standard Xheal.
    assert by_param["always-merge"]["amortized_msgs"] >= by_param[4]["amortized_msgs"]
