"""Shared helpers for the benchmark suite.

Every benchmark reproduces one row of the per-experiment index in DESIGN.md
(and records paper-vs-measured in EXPERIMENTS.md).  The pattern is:

* build the workload and adversary named in the index,
* run the experiment(s) once inside ``benchmark.pedantic(..., rounds=1)`` so
  pytest-benchmark reports the wall-clock cost of regenerating the row,
* print the paper-style table/series so the captured ``bench_output.txt``
  contains the actual numbers being compared.
"""

from __future__ import annotations

import pytest


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay each benchmark's printed tables at the end of the run.

    pytest captures per-test stdout, so the paper-style tables the benchmarks
    print would normally be invisible on success; this hook re-emits them in
    the terminal summary so ``bench_output.txt`` contains the actual numbers
    being compared against the paper.
    """
    sections = []
    for outcome in ("passed", "failed"):
        for report in terminalreporter.getreports(outcome):
            if getattr(report, "when", "call") != "call":
                continue
            captured = getattr(report, "capstdout", "")
            if captured and "===" in captured:
                sections.append((report.nodeid, captured))
    if not sections:
        return
    terminalreporter.section("Xheal reproduction — paper-style tables")
    for nodeid, captured in sections:
        terminalreporter.write_line(f"\n##### {nodeid}")
        terminalreporter.write_line(captured.rstrip())


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
