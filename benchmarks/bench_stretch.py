"""E2 — Theorem 2(2): stretch stays within O(log n).

Paper claim: for any two surviving nodes, their distance in the healed graph
is at most ``O(log n)`` times their distance in ``G'_t``.

Measured here: the maximum pairwise stretch after deletion-heavy runs on a
grid (large diameters, so stretch is actually exercised) and an ER graph, and
the ratio ``max_stretch / log2(n)`` which the theorem bounds by a constant.
"""

from __future__ import annotations

import math

from repro.adversary import DeletionOnlyAdversary, RandomAdversary
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import erdos_renyi_workload, grid_workload
from repro.spectral.stretch import stretch_against_ghost


def _run(graph, adversary, steps, kappa=4):
    healer = Xheal(kappa=kappa, seed=3)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary.bind(graph)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
    return healer, ghost


def stretch_rows():
    rows = []
    cases = [
        ("grid 8x8", grid_workload(8, 8), DeletionOnlyAdversary(seed=5), 25),
        ("grid 10x10", grid_workload(10, 10), DeletionOnlyAdversary(seed=6), 40),
        ("erdos-renyi n=80", erdos_renyi_workload(80, 5, seed=7), RandomAdversary(seed=8, delete_probability=0.7), 40),
    ]
    for name, graph, adversary, steps in cases:
        healer, ghost = _run(graph, adversary, steps)
        summary = stretch_against_ghost(
            healer.graph, ghost.alive_subgraph(), sample_pairs=400, seed=1
        )
        n = ghost.number_of_nodes()
        rows.append(
            {
                "workload": name,
                "deletions": steps,
                "max_stretch": round(summary.max_stretch, 3),
                "avg_stretch": round(summary.average_stretch, 3),
                "log2(n)": round(math.log2(n), 2),
                "stretch/log2(n)": round(summary.max_stretch / math.log2(n), 3),
                "paper_bound": "O(log n) (constant x log2 n)",
            }
        )
    return rows


def test_stretch_bound(run_once):
    rows = run_once(stretch_rows)
    print()
    print_table(rows, title="E2  Theorem 2(2): stretch is O(log n)")
    # The constant in front of log n stays small (the paper's O() hides ~1).
    assert all(row["stretch/log2(n)"] <= 4.0 for row in rows)
    assert all(row["max_stretch"] < float("inf") for row in rows)
