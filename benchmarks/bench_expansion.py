"""E3 — Theorem 2(3): edge expansion h(G_t) >= min(alpha, h(G'_t)).

Paper claim: at any point, the healed graph's expansion is either at least a
constant alpha, or at least the expansion of the insertions-only graph.

Measured here: h(G_t) vs h(G'_t) after adversarial deletion sequences on an
expander (where h(G'_t) is a constant and the healed graph must stay a
constant-expansion graph) and on a star (where a single deletion would
destroy a tree-based healer).
"""

from __future__ import annotations

from repro.adversary import DeletionOnlyAdversary, MaxDegreeAdversary
from repro.analysis.invariants import check_expansion_invariant
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import random_regular_workload, star_workload


def _run(graph, adversary, steps, kappa=6, seed=11):
    healer = Xheal(kappa=kappa, seed=seed)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary.bind(graph)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
    return healer, ghost


def expansion_rows():
    rows = []
    cases = [
        ("random-regular d=4 n=50", random_regular_workload(50, 4, seed=1), DeletionOnlyAdversary(seed=2), 20),
        ("random-regular d=6 n=48", random_regular_workload(48, 6, seed=3), MaxDegreeAdversary(seed=4), 20),
        ("star n=40", star_workload(40), MaxDegreeAdversary(seed=5), 10),
    ]
    for name, graph, adversary, steps in cases:
        healer, ghost = _run(graph, adversary, steps)
        result = check_expansion_invariant(healer.graph, ghost, alpha=1.0, exact_limit=0)
        rows.append(
            {
                "workload": name,
                "adversary": adversary.name,
                "deletions": steps,
                "h(Gt)": round(result.healed_expansion, 3),
                "h(G't)": round(result.ghost_expansion, 3),
                "bound=min(1,h(G't))": round(result.bound, 3),
                "holds": result.holds,
            }
        )
    return rows


def test_expansion_bound(run_once):
    rows = run_once(expansion_rows)
    print()
    print_table(rows, title="E3  Theorem 2(3): h(Gt) >= min(alpha, h(G't))")
    assert all(row["holds"] for row in rows)
    # On the expander workloads the healed expansion stays a constant (>= ~1).
    assert rows[0]["h(Gt)"] >= 0.9
