"""E5 — Corollary 1: if G'_t is a bounded-degree expander, so is G_t.

Paper claim: the healed graph of an expander remains an expander, i.e. its
expansion and spectral gap stay bounded away from zero no matter how many
adversarial deletions occur.

Measured here: the time series of h(G_t) and lambda(G_t) while 30% of a
bounded-degree expander's nodes are deleted, compared against the same series
for the Forgiving Tree baseline (whose expansion degrades — the contrast the
paper draws with [PODC'08/'09]).
"""

from __future__ import annotations

from repro.adversary import DeletionOnlyAdversary
from repro.baselines import ForgivingTreeHeal
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.reporting import format_series, print_table
from repro.harness.workloads import random_regular_workload
from repro.spectral.expansion import edge_expansion
from repro.spectral.laplacian import algebraic_connectivity


def _series(healer_factory, steps=24, every=6):
    graph = random_regular_workload(60, 6, seed=9)
    healer = healer_factory()
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=4)
    adversary.bind(graph)
    checkpoints = []
    for timestep in range(1, steps + 1):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        ghost.record_deletion(event.node)
        healer.handle_deletion(event.node)
        if timestep % every == 0 or timestep == steps:
            checkpoints.append(
                {
                    "deleted": timestep,
                    "h(Gt)": round(edge_expansion(healer.graph, exact_limit=0), 3),
                    "lambda(Gt)": round(algebraic_connectivity(healer.graph), 3),
                }
            )
    return healer.name, checkpoints


def expander_preservation_series():
    return [
        _series(lambda: Xheal(kappa=6, seed=1)),
        _series(lambda: ForgivingTreeHeal(seed=1)),
    ]


def test_expander_preservation(run_once):
    results = run_once(expander_preservation_series)
    print()
    for name, checkpoints in results:
        rows = [{"healer": name, **checkpoint} for checkpoint in checkpoints]
        print_table(rows, title=f"E5  Corollary 1 series ({name})")
    xheal_series = dict(results)["xheal"]
    tree_series = dict(results)["forgiving-tree"]
    # Xheal keeps the expander property (expansion and lambda bounded away from 0)...
    assert all(point["h(Gt)"] >= 0.8 for point in xheal_series)
    assert all(point["lambda(Gt)"] >= 0.3 for point in xheal_series)
    # ...and ends up clearly better than the tree-based healer.
    assert xheal_series[-1]["h(Gt)"] > tree_series[-1]["h(Gt)"]
    assert xheal_series[-1]["lambda(Gt)"] > tree_series[-1]["lambda(Gt)"]
