"""Micro-benchmark — raw healing throughput of the library itself.

Not a paper experiment: this measures how fast the implementation processes
adversarial deletions (repairs per second) at a few network sizes, and how
expensive the spectral verification layer is relative to healing.  Useful for
sizing the larger reproduction runs and catching performance regressions.
"""

from __future__ import annotations

from repro.adversary import DeletionOnlyAdversary
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.workloads import random_regular_workload
from repro.spectral.expansion import edge_expansion


def _heal_run(n, steps):
    graph = random_regular_workload(n, 4, seed=1)
    healer = Xheal(kappa=4, seed=2)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=3)
    adversary.bind(graph)
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        ghost.record_deletion(event.node)
        healer.handle_deletion(event.node)
    return healer


def test_healing_throughput_small(benchmark):
    healer = benchmark(lambda: _heal_run(60, 20))
    assert healer.graph.number_of_nodes() == 40


def test_healing_throughput_medium(benchmark):
    healer = benchmark.pedantic(lambda: _heal_run(200, 50), rounds=1, iterations=1)
    assert healer.graph.number_of_nodes() == 150


def test_expansion_measurement_cost(benchmark):
    graph = random_regular_workload(120, 4, seed=4)
    value = benchmark(lambda: edge_expansion(graph, exact_limit=0, samples=32))
    assert value >= 0.0
