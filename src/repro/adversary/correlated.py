"""Correlated adversaries: whole-domain kills and recorded-trace replay.

Single-node churn (:mod:`repro.adversary.strategies`) misses the failure
modes real deployments see: a top-of-rack switch or a power feed takes a
whole *failure domain* (:mod:`repro.core.domains`) dark in one step, and
operators want to stress healers against recorded production churn, not
synthetic distributions.  Both land here as registry plugins:

* ``domain-kill`` drains one labelled failure domain per kill turn as an
  atomic batched event sequence (the harness applies all of it within one
  timestep, metric cadence included);
* ``trace-replay`` deterministically plays back a JSONL churn trace
  (:mod:`repro.adversary.traces`), preserving recorded batch boundaries —
  trace in, identical adversary out.
"""

from __future__ import annotations

import networkx as nx

from repro.adversary.base import Adversary, AdversaryEvent
from repro.adversary.strategies import DEFAULT_MIN_NODES
from repro.adversary.traces import group_into_batches, read_churn_trace
from repro.core.domains import domain_members
from repro.scenarios.registry import register_adversary
from repro.util.validation import require

#: Domain-selection policies for :class:`DomainKillAdversary`.
_KILL_ORDERS = ("random", "round-robin", "largest")


@register_adversary("domain-kill", aliases=("rack-kill",))
class DomainKillAdversary(Adversary):
    """Kill an entire failure domain at once; insert churn between kills.

    Every ``kill_every``-th timestep the adversary picks a domain that still
    has labelled members alive (policy: ``order``) and emits one batched
    deletion per member — atomically truncated by the ``min_nodes`` floor, so
    a kill that would shrink the graph too far is shortened up front, never
    half-applied.  Other timesteps insert a random node (domainless: the
    healer's replacements don't belong to any rack), which is what gives a
    budget-limited healer steps to drain its deferred-repair queue between
    kills.  Runs out of labelled domains → falls back to insertions;
    ``max_kills`` bounds the total number of domain kills.
    """

    name = "domain-kill"

    def __init__(
        self,
        kill_every: int = 1,
        max_attachments: int = 5,
        min_nodes: int = DEFAULT_MIN_NODES,
        seed: int = 0,
        order: str = "random",
        max_kills: int | None = None,
    ):
        require(kill_every >= 1, "kill_every must be at least 1")
        require(max_attachments >= 1, "max_attachments must be at least 1")
        require(order in _KILL_ORDERS, f"order must be one of {_KILL_ORDERS}")
        require(max_kills is None or max_kills >= 0, "max_kills must be non-negative")
        super().__init__(seed=seed)
        self.kill_every = kill_every
        self.max_attachments = max_attachments
        self.min_nodes = min_nodes
        self.order = order
        self.max_kills = max_kills
        self._kills_done = 0
        self._round_robin_cursor = 0

    def _pick_domain(self, domains: dict[str, list]) -> str:
        names = list(domains)
        if self.order == "largest":
            # Size-desc, name-asc tie-break: deterministic for equal racks.
            return max(names, key=lambda name: (len(domains[name]), name))
        if self.order == "round-robin":
            name = names[self._round_robin_cursor % len(names)]
            self._round_robin_cursor += 1
            return name
        return self._rng.choice(names)

    def next_events(self, graph: nx.Graph, timestep: int) -> tuple[AdversaryEvent, ...] | None:
        kill_turn = timestep % self.kill_every == 0 and (
            self.max_kills is None or self._kills_done < self.max_kills
        )
        if kill_turn:
            domains = domain_members(graph)
            if domains:
                targets = domains[self._pick_domain(domains)]
                batch = self._batched_deletions(graph, targets, self.min_nodes)
                if batch:
                    self._kills_done += 1
                    return batch
                # Floor reached: fall through to insertion churn so the run
                # keeps producing events instead of stopping early.
        insertion = self._random_insertion(graph, self.max_attachments)
        if insertion is None:
            return None
        return (insertion,)


@register_adversary("trace-replay")
class TraceReplayAdversary(Adversary):
    """Replay a recorded JSONL churn trace, batch boundaries included.

    The trace (see :mod:`repro.adversary.traces`) is read once at
    construction; each call to :meth:`next_events` returns the next recorded
    batch, then ``None`` — the adversary is a pure function of the file, so
    two runs over the same trace are byte-identical.  ``label`` overrides the
    reported adversary name: pass the recording run's adversary so the
    replayed summary row matches the original bit for bit.
    """

    name = "trace-replay"

    def __init__(self, path: str, label: str | None = None, seed: int = 0):
        super().__init__(seed=seed)
        self.path = str(path)
        if label is not None:
            self.name = str(label)
        events, steps = read_churn_trace(self.path)
        self._batches = group_into_batches(events, steps)
        self._cursor = 0

    def next_events(self, graph: nx.Graph, timestep: int) -> tuple[AdversaryEvent, ...] | None:
        if self._cursor >= len(self._batches):
            return None
        batch = self._batches[self._cursor]
        self._cursor += 1
        return batch
