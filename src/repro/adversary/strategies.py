"""Concrete adversary strategies."""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.adversary.base import Adversary, AdversaryEvent, EventType
from repro.scenarios.registry import register_adversary
from repro.util.ids import NodeId
from repro.util.validation import require, require_probability

#: Experiments never shrink the network below this many nodes by default; the
#: healing guarantees are asymptotic and tiny graphs are all corner cases.
DEFAULT_MIN_NODES = 4


@register_adversary("random", aliases=("churn",))
class RandomAdversary(Adversary):
    """Churn: with probability ``delete_probability`` delete a random node, else insert one."""

    name = "random"

    def __init__(
        self,
        delete_probability: float = 0.5,
        max_attachments: int = 5,
        min_nodes: int = DEFAULT_MIN_NODES,
        seed: int = 0,
    ):
        require_probability(delete_probability, "delete_probability")
        require(max_attachments >= 1, "max_attachments must be at least 1")
        super().__init__(seed=seed)
        self.delete_probability = delete_probability
        self.max_attachments = max_attachments
        self.min_nodes = min_nodes

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = self._deletable_nodes(graph, self.min_nodes)
        if deletable and self._rng.coin(self.delete_probability):
            return AdversaryEvent(EventType.DELETE, self._rng.choice(deletable))
        return self._random_insertion(graph, self.max_attachments)


@register_adversary("deletion-only")
class DeletionOnlyAdversary(Adversary):
    """Delete a uniformly random node every timestep (no insertions)."""

    name = "deletion-only"

    def __init__(self, min_nodes: int = DEFAULT_MIN_NODES, seed: int = 0):
        super().__init__(seed=seed)
        self.min_nodes = min_nodes

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = self._deletable_nodes(graph, self.min_nodes)
        if not deletable:
            return None
        return AdversaryEvent(EventType.DELETE, self._rng.choice(deletable))


@register_adversary("insertion-only")
class InsertionOnlyAdversary(Adversary):
    """Insert a node with random attachments every timestep (no deletions)."""

    name = "insertion-only"

    def __init__(self, max_attachments: int = 5, seed: int = 0):
        require(max_attachments >= 1, "max_attachments must be at least 1")
        super().__init__(seed=seed)
        self.max_attachments = max_attachments

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        return self._random_insertion(graph, self.max_attachments)


@register_adversary("max-degree", aliases=("hub-attack",))
class MaxDegreeAdversary(Adversary):
    """Always delete the highest-degree node (hub attack).

    This is the omniscient adversary's natural strategy against expansion: it
    generalises the star-centre deletion from the paper's introduction and is
    the attack under which tree-based healers lose their spectral properties
    fastest.
    """

    name = "max-degree"

    def __init__(self, min_nodes: int = DEFAULT_MIN_NODES, seed: int = 0):
        super().__init__(seed=seed)
        self.min_nodes = min_nodes

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = self._deletable_nodes(graph, self.min_nodes)
        if not deletable:
            return None
        target = max(deletable, key=lambda node: (graph.degree(node), -node))
        return AdversaryEvent(EventType.DELETE, target)


@register_adversary("min-degree")
class MinDegreeAdversary(Adversary):
    """Always delete the lowest-degree node (periphery attack)."""

    name = "min-degree"

    def __init__(self, min_nodes: int = DEFAULT_MIN_NODES, seed: int = 0):
        super().__init__(seed=seed)
        self.min_nodes = min_nodes

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = self._deletable_nodes(graph, self.min_nodes)
        if not deletable:
            return None
        target = min(deletable, key=lambda node: (graph.degree(node), node))
        return AdversaryEvent(EventType.DELETE, target)


@register_adversary("star-center")
class StarCenterAdversary(Adversary):
    """Delete the node whose removal creates the largest "orphaned" neighbourhood.

    The target is the node maximising ``degree(v) - edges among N(v)`` — the
    number of neighbour pairs left without a direct connection.  On a star
    this is exactly the centre; on general graphs it picks the most
    articulation-like hub, which is the worst case for tree-based healing.
    """

    name = "star-center"

    def __init__(self, min_nodes: int = DEFAULT_MIN_NODES, seed: int = 0):
        super().__init__(seed=seed)
        self.min_nodes = min_nodes

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = self._deletable_nodes(graph, self.min_nodes)
        if not deletable:
            return None

        def orphan_score(node: NodeId) -> int:
            neighbors = set(graph.neighbors(node))
            internal = sum(1 for u, v in graph.edges(neighbors) if u in neighbors and v in neighbors)
            return len(neighbors) - internal

        target = max(deletable, key=lambda node: (orphan_score(node), graph.degree(node), -node))
        return AdversaryEvent(EventType.DELETE, target)


@register_adversary("cascade")
class CascadeAdversary(Adversary):
    """Delete a neighbour of the previously deleted node (a spreading failure).

    Starts from the highest-degree node and then follows the failure locally,
    so successive deletions keep hitting the clouds created by earlier repairs
    — exercising Cases 2.1 and 2.2 of the algorithm heavily.
    """

    name = "cascade"

    def __init__(self, min_nodes: int = DEFAULT_MIN_NODES, seed: int = 0):
        super().__init__(seed=seed)
        self.min_nodes = min_nodes
        self._last_neighbors: list[NodeId] = []

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        deletable = set(self._deletable_nodes(graph, self.min_nodes))
        if not deletable:
            return None
        candidates = [node for node in self._last_neighbors if node in deletable]
        if candidates:
            target = self._rng.choice(sorted(candidates))
        else:
            target = max(sorted(deletable), key=lambda node: graph.degree(node))
        self._last_neighbors = sorted(graph.neighbors(target))
        return AdversaryEvent(EventType.DELETE, target)


class ScriptedAdversary(Adversary):
    """Replay an explicit sequence of events (used by tests and figure traces)."""

    name = "scripted"

    def __init__(self, events: Sequence[AdversaryEvent] | Iterable[AdversaryEvent], seed: int = 0):
        super().__init__(seed=seed)
        self._events = list(events)
        self._cursor = 0

    @classmethod
    def deleting(cls, nodes: Iterable[NodeId]) -> "ScriptedAdversary":
        """Build a scripted adversary that deletes the given nodes in order."""
        return cls([AdversaryEvent(EventType.DELETE, node) for node in nodes])

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        if self._cursor >= len(self._events):
            return None
        event = self._events[self._cursor]
        self._cursor += 1
        return event

    def remaining(self) -> int:
        """Return how many scripted events have not been played yet."""
        return len(self._events) - self._cursor
