"""Adversary strategies (Section 2's "Node Insert, Delete and Network Repair Model").

The adversary is omniscient about the topology and the algorithm (but not the
healer's random bits).  At each timestep it either deletes an arbitrary node
or inserts a new node with arbitrary connections to existing nodes.

Strategies provided:

* :class:`~repro.adversary.strategies.RandomAdversary` — uniform random
  deletions mixed with random insertions (churn).
* :class:`~repro.adversary.strategies.MaxDegreeAdversary` — always delete the
  highest-degree node (hub attack; the star-centre worst case generalised).
* :class:`~repro.adversary.strategies.MinDegreeAdversary` — always delete the
  lowest-degree node (periphery attack).
* :class:`~repro.adversary.strategies.StarCenterAdversary` — delete the
  centre of the largest star-like neighbourhood first (the paper's motivating
  expansion-killing attack against tree-based healers).
* :class:`~repro.adversary.strategies.CascadeAdversary` — repeatedly delete a
  neighbour of the previously deleted node, simulating a spreading failure.
* :class:`~repro.adversary.strategies.ScriptedAdversary` — replay an explicit
  list of events (used by tests and the figure traces).
* :class:`~repro.adversary.strategies.InsertionOnlyAdversary` /
  :class:`~repro.adversary.strategies.DeletionOnlyAdversary` — pure growth /
  pure attrition.
"""

from repro.adversary.base import Adversary, AdversaryEvent, EventType
from repro.adversary.strategies import (
    CascadeAdversary,
    DeletionOnlyAdversary,
    InsertionOnlyAdversary,
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
    ScriptedAdversary,
    StarCenterAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryEvent",
    "EventType",
    "RandomAdversary",
    "MaxDegreeAdversary",
    "MinDegreeAdversary",
    "StarCenterAdversary",
    "CascadeAdversary",
    "ScriptedAdversary",
    "InsertionOnlyAdversary",
    "DeletionOnlyAdversary",
]
