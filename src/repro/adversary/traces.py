"""The JSONL churn-trace format: recorded workloads as first-class scenarios.

A churn trace is a plain-text JSONL file — one adversarial event per line —
that the ``trace-replay`` adversary (:mod:`repro.adversary.correlated`) can
play back deterministically.  Line schema::

    {"neighbors": [...], "node": 7, "step": 3, "type": "delete"}

``type``/``node``/``neighbors`` are exactly the artifact trace dialect of
:func:`repro.scenarios.runner.event_to_dict`; the optional ``step`` is the
1-based timestep the event belonged to in the recording run.  Consecutive
lines sharing a ``step`` value form one atomic batch on replay (a correlated
domain kill stays a domain kill); lines without ``step`` replay one per
timestep.

Encoding is canonical — sorted keys, compact separators, ``\\n`` line
endings, trailing newline — so a trace's bytes are a pure function of its
events: record → replay → re-record round-trips byte-identically, which is
what the hypothesis suite pins.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.adversary.base import AdversaryEvent
from repro.scenarios.runner import event_from_dict, event_to_dict
from repro.util.validation import require


def encode_churn_line(event: AdversaryEvent, step: int | None = None) -> str:
    """Return one event's canonical churn-trace line (no trailing newline)."""
    data = event_to_dict(event)
    if step is not None:
        data["step"] = int(step)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def churn_trace_bytes(
    events: Sequence[AdversaryEvent], steps: Sequence[int] | None = None
) -> bytes:
    """Serialize a whole trace to its canonical bytes.

    ``steps``, when given, must parallel ``events`` (one timestep per event);
    pass :attr:`~repro.harness.experiment.ExperimentResult.event_steps` to
    preserve a batched run's grouping.
    """
    if steps is not None:
        require(
            len(steps) == len(events),
            f"steps ({len(steps)}) must parallel events ({len(events)})",
        )
        lines = [encode_churn_line(event, step) for event, step in zip(events, steps)]
    else:
        lines = [encode_churn_line(event) for event in events]
    return ("".join(line + "\n" for line in lines)).encode("utf-8")


def write_churn_trace(
    events: Sequence[AdversaryEvent],
    path: str | Path,
    steps: Sequence[int] | None = None,
) -> Path:
    """Write a churn trace to ``path`` in canonical form; returns the path."""
    path = Path(path)
    path.write_bytes(churn_trace_bytes(events, steps))
    return path


def read_churn_trace(path: str | Path) -> tuple[list[AdversaryEvent], list[int | None]]:
    """Parse a churn trace into ``(events, steps)`` (steps entries may be None).

    Blank lines are ignored so hand-edited traces stay valid; malformed lines
    raise ``ValueError`` naming the offending line number.
    """
    events: list[AdversaryEvent] = []
    steps: list[int | None] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            event = event_from_dict(data)
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: malformed churn-trace line: {exc}") from exc
        events.append(event)
        step = data.get("step")
        steps.append(int(step) if step is not None else None)
    return events, steps


def group_into_batches(
    events: Sequence[AdversaryEvent], steps: Sequence[int | None]
) -> list[tuple[AdversaryEvent, ...]]:
    """Group a parsed trace into replay batches.

    Consecutive events sharing a (non-``None``) ``step`` value form one
    batch; a ``None`` step always starts its own singleton batch.  Only
    *consecutive* runs group — a trace is a timeline, so a step value
    reappearing later is a new timestep, not a merge.
    """
    require(len(steps) == len(events), "steps must parallel events")
    batches: list[tuple[AdversaryEvent, ...]] = []
    current: list[AdversaryEvent] = []
    current_step: int | None = None
    for event, step in zip(events, steps):
        if current and step is not None and step == current_step:
            current.append(event)
            continue
        if current:
            batches.append(tuple(current))
        current = [event]
        current_step = step
    if current:
        batches.append(tuple(current))
    return batches
