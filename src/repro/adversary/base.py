"""Adversary interface and event types.

The adversary observes the *healed* graph ``G_t`` (it is omniscient about the
topology) and the ghost graph, and produces one event per timestep: either an
insertion (a fresh node id plus the existing nodes it attaches to) or a
deletion (an existing node id).  It never observes the healer's random bits —
the model's "oblivious to the random choices" assumption — which is enforced
structurally: adversaries receive only the graphs, never the healer object.
"""

from __future__ import annotations

import enum
from abc import ABC
from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.util.ids import IdAllocator, NodeId
from repro.util.rng import SeededRng


class EventType(enum.Enum):
    """The two adversarial moves allowed by the model."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class AdversaryEvent:
    """A single adversarial move.

    ``node`` is the inserted or deleted node; ``neighbors`` is only meaningful
    for insertions (the existing nodes the new node connects to).
    """

    type: EventType
    node: NodeId
    neighbors: tuple[NodeId, ...] = field(default_factory=tuple)

    @property
    def is_insertion(self) -> bool:
        """Return whether this event inserts a node."""
        return self.type is EventType.INSERT

    @property
    def is_deletion(self) -> bool:
        """Return whether this event deletes a node."""
        return self.type is EventType.DELETE


class Adversary(ABC):
    """Base class for adversary strategies.

    Subclasses implement :meth:`next_event` (one move per timestep) or, for
    correlated failures, :meth:`next_events` (a batch applied atomically
    within one timestep); the shared machinery provides a seeded random
    stream and an :class:`~repro.util.ids.IdAllocator` so that inserted node
    ids never collide with existing ones.
    """

    name: str = "abstract"

    def __init__(self, seed: int = 0):
        self._rng = SeededRng(seed).child("adversary", type(self).__name__)
        self._allocator: IdAllocator | None = None

    def bind(self, initial_graph: nx.Graph) -> None:
        """Attach the adversary to the initial graph (reserves existing node ids)."""
        self._allocator = IdAllocator.from_existing(initial_graph.nodes())

    def _fresh_node(self) -> NodeId:
        if self._allocator is None:
            raise RuntimeError("adversary used before bind() was called")
        return self._allocator.allocate()

    def next_event(self, graph: nx.Graph, timestep: int) -> AdversaryEvent | None:
        """Return the adversary's move given the current healed graph ``G_t``.

        Returning ``None`` means the adversary has nothing left to do (for
        example, a deletion-only adversary facing a too-small graph); the
        experiment harness stops the run early in that case.

        Single-move adversaries override this; batched adversaries override
        :meth:`next_events` instead, in which case this method is unused.
        """
        raise NotImplementedError(
            f"{type(self).__name__} implements neither next_event nor next_events"
        )

    def next_events(self, graph: nx.Graph, timestep: int) -> tuple[AdversaryEvent, ...] | None:
        """Return the adversary's moves for one timestep, as an atomic batch.

        The harness applies the whole batch within a single timestep (one
        metric observation cadence), or none of it: a batch that fails
        validation aborts the run before any member event is applied.  The
        default wraps :meth:`next_event`, so single-move adversaries get
        batches of one for free.  Returning ``None`` — or an empty batch —
        stops the run early.
        """
        event = self.next_event(graph, timestep)
        if event is None:
            return None
        return (event,)

    # -- helpers shared by concrete strategies --------------------------------

    def _random_insertion(self, graph: nx.Graph, max_attachments: int) -> AdversaryEvent | None:
        """Insert a fresh node attached to a random non-empty subset of nodes."""
        nodes = sorted(graph.nodes())
        if not nodes:
            return None
        count = self._rng.randint(1, min(max_attachments, len(nodes)))
        neighbors = tuple(self._rng.sample(nodes, count))
        return AdversaryEvent(EventType.INSERT, self._fresh_node(), neighbors)

    @staticmethod
    def _deletable_nodes(graph: nx.Graph, minimum_remaining: int) -> list[NodeId]:
        """Return nodes that may be deleted while keeping ``minimum_remaining`` nodes."""
        if graph.number_of_nodes() <= minimum_remaining:
            return []
        return sorted(graph.nodes())

    @staticmethod
    def _batched_deletions(
        graph: nx.Graph, targets: Iterable[NodeId], minimum_remaining: int
    ) -> tuple[AdversaryEvent, ...]:
        """Turn ``targets`` into an atomically-guarded batch of deletions.

        A correlated kill must never half-apply: if deleting every target
        would shrink the graph below ``minimum_remaining`` nodes, the batch is
        truncated *up front* — the first ``n - minimum_remaining`` targets in
        order — so the harness either applies the whole (possibly shortened)
        batch or, when no deletion is affordable, receives an empty tuple.
        Targets not currently in the graph are skipped.
        """
        allowance = graph.number_of_nodes() - minimum_remaining
        if allowance <= 0:
            return ()
        events: list[AdversaryEvent] = []
        for node in targets:
            if len(events) >= allowance:
                break
            if node in graph:
                events.append(AdversaryEvent(EventType.DELETE, node))
        return tuple(events)
