"""repro — a full reproduction of *Xheal: Localized Self-healing using Expanders*
(Pandurangan & Trehan, PODC 2011).

The library provides:

* :mod:`repro.core` — the Xheal algorithm (primary/secondary expander clouds,
  free/bridge nodes, edge colouring) and the self-healer interface.
* :mod:`repro.expanders` — the Law-Siu H-graph expander construction the
  algorithm's clouds are built from.
* :mod:`repro.spectral` — edge expansion, Cheeger constant, algebraic
  connectivity, stretch and mixing-time measurement.
* :mod:`repro.adversary` — omniscient adversary strategies (hub attack,
  cascades, churn, scripted traces).
* :mod:`repro.baselines` — Forgiving Tree / Forgiving Graph and naive healers
  for comparison.
* :mod:`repro.distributed` — a synchronous LOCAL-model simulator running the
  distributed Xheal protocol with real message/round accounting.
* :mod:`repro.analysis` — Theorem 2 invariant checkers and Theorem 5 / Lemma 5
  amortised message accounting.
* :mod:`repro.harness` — workload generators, the experiment runner and the
  report printers behind ``benchmarks/``.

Quickstart::

    import networkx as nx
    from repro import Xheal, GhostGraph
    from repro.adversary import RandomAdversary
    from repro.harness import run_experiment, ExperimentConfig

    graph = nx.random_regular_graph(4, 50, seed=1)
    result = run_experiment(ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4),
        adversary_factory=lambda: RandomAdversary(seed=7),
        initial_graph=graph,
        timesteps=100,
    ))
    print(result.final_metrics)
"""

from repro.core import (
    GhostGraph,
    RepairAction,
    RepairReport,
    SelfHealer,
    Xheal,
    XhealConfig,
)

__version__ = "1.0.0"

__all__ = [
    "GhostGraph",
    "RepairAction",
    "RepairReport",
    "SelfHealer",
    "Xheal",
    "XhealConfig",
    "__version__",
]
