"""repro — a full reproduction of *Xheal: Localized Self-healing using Expanders*
(Pandurangan & Trehan, PODC 2011).

The library provides:

* :mod:`repro.core` — the Xheal algorithm (primary/secondary expander clouds,
  free/bridge nodes, edge colouring) and the self-healer interface.
* :mod:`repro.expanders` — the Law-Siu H-graph expander construction the
  algorithm's clouds are built from.
* :mod:`repro.spectral` — edge expansion, Cheeger constant, algebraic
  connectivity, stretch and mixing-time measurement.
* :mod:`repro.adversary` — omniscient adversary strategies (hub attack,
  cascades, churn, scripted traces).
* :mod:`repro.baselines` — Forgiving Tree / Forgiving Graph and naive healers
  for comparison.
* :mod:`repro.distributed` — a synchronous LOCAL-model simulator running the
  distributed Xheal protocol with real message/round accounting.
* :mod:`repro.analysis` — Theorem 2 invariant checkers and Theorem 5 / Lemma 5
  amortised message accounting.
* :mod:`repro.harness` — workload generators, the experiment runner and the
  report printers behind ``benchmarks/``.
* :mod:`repro.scenarios` — the declarative front door: plugin registries of
  healers/adversaries/topologies, serializable :class:`ScenarioSpec` /
  :class:`SweepSpec` documents, a parallel sweep runner, replayable JSONL run
  artifacts and the ``python -m repro`` CLI.

Quickstart (declarative — every component by registry name)::

    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec(
        healer="xheal", healer_kwargs={"kappa": 4},
        adversary="random", adversary_kwargs={"delete_probability": 0.6},
        topology="random-regular", topology_kwargs={"n": 50, "degree": 4},
        timesteps=100, seed=7,
    )
    record = spec.run()                 # RunRecord: summary, timeline, trace
    print(record.summary)
    print(spec.to_json())               # serializable; `python -m repro run`

    from repro.scenarios import SweepSpec, run_scenarios
    grid = SweepSpec(base=spec, axes={"healer_kwargs.kappa": [2, 4, 8]})
    records = run_scenarios(grid.expand(), workers=4)

The imperative layer underneath is still public — ``spec.compile()`` returns
the :class:`~repro.harness.experiment.ExperimentConfig` that
:func:`~repro.harness.experiment.run_experiment` consumes, so factory-based
wiring keeps working unchanged.  Discover names with ``python -m repro list``
or :func:`repro.scenarios.list_healers` / ``list_adversaries`` /
``list_topologies``.
"""

from repro.core import (
    GhostGraph,
    RepairAction,
    RepairReport,
    SelfHealer,
    Xheal,
    XhealConfig,
)

__version__ = "1.1.0"

__all__ = [
    "GhostGraph",
    "RepairAction",
    "RepairReport",
    "SelfHealer",
    "Xheal",
    "XhealConfig",
    "__version__",
]
