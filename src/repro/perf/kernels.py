"""Vectorized exact cut kernels (Gray-code enumeration, bit-packed NumPy).

The brute-force kernels in :mod:`repro.spectral.expansion` and
:mod:`repro.spectral.cheeger` rescan every edge for every enumerated subset —
O(2^n * m) Python-level work.  The kernels here enumerate the same cuts in
**Gray-code order**, where consecutive subsets differ by exactly one vertex
``v``, so the crossing count evolves by

    delta = +/- (deg(v) - 2 * |N(v) & S|)

an O(deg) update instead of an O(m) rescan.  Membership is bit-packed into a
single ``uint64`` per subset (one bit per non-anchor vertex) and the whole
recurrence — toggled bit, neighbourhood intersection popcount, prefix sum of
deltas, subset sizes and volumes — is evaluated for a block of 2^20 subsets
at a time with NumPy (``np.bitwise_count`` provides the vectorized popcount),
leaving no per-subset Python work at all.

Coverage argument: fix an anchor vertex ``a`` (the first node).  Every subset
``T`` of ``V - {a}`` is enumerated once.  A cut ``S`` with ``|S| <= n/2``
either avoids ``a`` (then ``S = T`` is enumerated directly) or contains ``a``
(then its complement ``V - S`` avoids ``a`` and is enumerated, and
``E(S, S-bar) = E(V-S, S)``), so scoring both ``T`` and ``V - T`` against the
size constraint examines every legal cut exactly through one pass over
``2^(n-1)`` subsets — half the naive count.

Conductance is symmetric under complementation, so for the Cheeger kernel a
single side per enumerated subset suffices.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.util.ids import NodeId
from repro.util.validation import require

#: Hard safety cap: 2^(MAX_EXACT_NODES-1) subsets are enumerated, so anything
#: beyond ~26 nodes is no longer "interactive" even fully vectorized.
MAX_EXACT_NODES = 26

#: Subsets are processed in blocks of this many to bound peak memory
#: (a block allocates a handful of int64/uint64 arrays of this length).
_BLOCK = 1 << 20

if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # NumPy < 2.0: SWAR popcount over uint64 lanes

    def _popcount(values: np.ndarray) -> np.ndarray:
        v = np.asarray(values, dtype=np.uint64).copy()
        v -= (v >> np.uint64(1)) & np.uint64(0x5555555555555555)
        v = (v & np.uint64(0x3333333333333333)) + (
            (v >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (v * np.uint64(0x0101010101010101)) >> np.uint64(56)


def _bit_pack(graph: nx.Graph) -> tuple[list[NodeId], np.ndarray, np.ndarray]:
    """Return ``(nodes, degrees, adjacency_masks)`` for the Gray-code scan.

    ``adjacency_masks[b]`` holds, for the vertex at bit position ``b`` (node
    index ``b + 1``; the anchor node index 0 has no bit), the bitmask of its
    neighbours among the non-anchor vertices.  Edges incident to the anchor
    contribute to ``degrees`` only — the anchor is never inside an enumerated
    subset, so those edges always cross.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    degrees = np.zeros(n, dtype=np.int64)
    masks = np.zeros(max(1, n - 1), dtype=np.uint64)
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        degrees[iu] += 1
        degrees[iv] += 1
        if iu > 0 and iv > 0:
            masks[iu - 1] |= np.uint64(1) << np.uint64(iv - 1)
            masks[iv - 1] |= np.uint64(1) << np.uint64(iu - 1)
    return nodes, degrees, masks


def _gray_blocks(n: int, degrees: np.ndarray, masks: np.ndarray):
    """Yield ``(gray, sizes, crossings, volumes)`` arrays per subset block.

    ``gray[i]`` is the bit-packed membership of the i-th enumerated subset
    (Gray-code order over the ``n - 1`` non-anchor vertices, empty subset
    excluded), ``crossings[i] = |E(S_i, V - S_i)|`` and
    ``volumes[i] = sum(deg(v) for v in S_i)``.
    """
    one = np.uint64(1)
    tail_degrees = degrees[1:]  # degree of the vertex at each bit position
    total = 1 << (n - 1)
    crossing_carry = 0
    volume_carry = 0
    for start in range(1, total, _BLOCK):
        stop = min(start + _BLOCK, total)
        idx = np.arange(start, stop, dtype=np.uint64)
        gray = idx ^ (idx >> one)
        prev_gray = (idx - one) ^ ((idx - one) >> one)
        # Bit toggled between consecutive Gray codes = trailing-zero count of idx.
        toggled = _popcount((idx & (~idx + one)) - one).astype(np.intp)
        added = ((gray >> toggled.astype(np.uint64)) & one).astype(np.int64)
        sign = 2 * added - 1
        inside = _popcount(masks[toggled] & prev_gray).astype(np.int64)
        deltas = sign * (tail_degrees[toggled] - 2 * inside)
        crossings = crossing_carry + np.cumsum(deltas)
        volumes = volume_carry + np.cumsum(sign * tail_degrees[toggled])
        crossing_carry = int(crossings[-1])
        volume_carry = int(volumes[-1])
        sizes = _popcount(gray).astype(np.int64)
        yield gray, sizes, crossings, volumes


def _subset_from_gray(gray: int, nodes: list[NodeId]) -> frozenset[NodeId]:
    """Decode a bit-packed subset back into node identities."""
    members = set()
    bit = 0
    while gray:
        if gray & 1:
            members.add(nodes[bit + 1])
        gray >>= 1
        bit += 1
    return frozenset(members)


def exact_minimum_expansion_cut(graph: nx.Graph) -> tuple[float, frozenset[NodeId]]:
    """Return ``(h(G), S)`` with ``S`` a minimising cut, ``|S| <= n/2``, exactly.

    Vectorized Gray-code enumeration of all ``2^(n-1)`` anchor-free subsets;
    both the subset and its complement are scored against the ``|S| <= n/2``
    constraint, which covers every legal cut (see module docstring).
    """
    n = graph.number_of_nodes()
    require(n >= 2, "edge expansion needs at least 2 nodes")
    require(n <= MAX_EXACT_NODES, f"exact kernel capped at {MAX_EXACT_NODES} nodes, got {n}")
    nodes, degrees, masks = _bit_pack(graph)
    half = n // 2
    best_value = float("inf")
    best_gray = 0
    best_complement = False
    for gray, sizes, crossings, _volumes in _gray_blocks(n, degrees, masks):
        crossings_f = crossings.astype(np.float64)
        direct = np.where(
            sizes <= half, crossings_f / sizes, np.inf
        )
        complement = np.where(
            n - sizes <= half, crossings_f / (n - sizes), np.inf
        )
        pos = int(np.argmin(direct))
        if direct[pos] < best_value:
            best_value = float(direct[pos])
            best_gray = int(gray[pos])
            best_complement = False
        pos = int(np.argmin(complement))
        if complement[pos] < best_value:
            best_value = float(complement[pos])
            best_gray = int(gray[pos])
            best_complement = True
        if best_value == 0.0:
            break
    members = _subset_from_gray(best_gray, nodes)
    if best_complement:
        members = frozenset(nodes) - members
    return best_value, members


def exact_minimum_cheeger_cut(graph: nx.Graph) -> tuple[float, frozenset[NodeId]]:
    """Return ``(phi(G), S)`` with ``S`` a minimising conductance cut, exactly.

    Conductance ``|E(S, S-bar)| / min(vol(S), vol(S-bar))`` is invariant under
    complementation, so each enumerated anchor-free subset already represents
    its complement too; the returned cut is normalised to the smaller-volume
    side (falling back to the smaller-size side on volume ties) to match the
    reference enumeration's ``|S| <= n/2`` convention.

    Cuts with ``min(vol, vol-bar) == 0`` score ``0.0``, mirroring
    :func:`repro.spectral.cheeger.cheeger_constant_of_cut`.
    """
    n = graph.number_of_nodes()
    require(n >= 2, "conductance needs at least 2 nodes")
    require(n <= MAX_EXACT_NODES, f"exact kernel capped at {MAX_EXACT_NODES} nodes, got {n}")
    nodes, degrees, masks = _bit_pack(graph)
    double_edges = int(degrees.sum())
    best_value = float("inf")
    best_gray = 0
    for gray, sizes, crossings, volumes in _gray_blocks(n, degrees, masks):
        denominators = np.minimum(volumes, double_edges - volumes)
        values = np.where(
            denominators > 0, crossings / np.maximum(denominators, 1), 0.0
        )
        pos = int(np.argmin(values))
        if values[pos] < best_value:
            best_value = float(values[pos])
            best_gray = int(gray[pos])
        if best_value == 0.0:
            break
    members = _subset_from_gray(best_gray, nodes)
    volume = sum(degree for _, degree in graph.degree(members))
    complement_volume = double_edges - volume
    if complement_volume < volume or (
        complement_volume == volume and n - len(members) < len(members)
    ):
        members = frozenset(nodes) - members
    return best_value, members
