"""The metrics engine: version-keyed caching + warm-started spectral solves.

Every experiment step used to pay for metric snapshots that recompute
everything from scratch, even when the graph had not changed between the
final snapshot, the ghost snapshot and the Theorem-2 invariant checks.  The
:class:`MetricsEngine` fixes that by memoising each kernel on a *version*
the graph's owner maintains:

* the healed graph's :attr:`repro.core.healer.SelfHealer.graph_version`
  (bumped on insertion, deletion, and every healing edge claim/release),
* the ghost graph's :attr:`repro.core.ghost.GhostGraph.version`
  (bumped on every recorded event).

Equal versions guarantee an unchanged graph, so a cache hit returns the
previous value without touching the graph at all.  Calls with ``version=None``
bypass the cache (safe default for graphs with no version authority).

The engine also remembers the Fiedler vector of the last spectral solve per
``(label, kind)`` stream and feeds it to the sparse Lanczos solver as the
starting vector ``v0`` of the next solve: per-timestep deltas are tiny (one
deletion, O(1) rewired cloud edges), so the previous eigenvector is an
excellent initial guess.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx
import numpy as np

from repro.core.ghost import GhostGraph
from repro.spectral.cheeger import cheeger_constant
from repro.spectral.expansion import DEFAULT_EXACT_LIMIT, edge_expansion
from repro.spectral.laplacian import (
    algebraic_connectivity,
    normalized_laplacian_second_eigenvalue,
)
from repro.spectral.metrics import GraphMetrics
from repro.spectral.stretch import StretchSummary, stretch_against_ghost
from repro.util.graphutils import max_degree, min_degree
from repro.util.ids import NodeId

_MISS = object()


class MetricsCache:
    """A ``key -> (version, value)`` store with hit/miss accounting.

    One slot per key: a new version overwrites the old entry, which is exactly
    the access pattern of an experiment loop (metrics of the *current* graph
    are asked for repeatedly; historic versions never come back).
    """

    def __init__(self) -> None:
        self._store: dict[object, tuple[object, object]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: object, version: object):
        """Return the cached value for ``key`` at ``version``, or the miss sentinel."""
        if version is None:
            self.misses += 1
            return _MISS
        entry = self._store.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return _MISS

    def store(self, key: object, version: object, value: object) -> None:
        """Record ``value`` for ``key`` at ``version`` (no-op for unversioned calls)."""
        if version is not None:
            self._store[key] = (version, value)

    def stats(self) -> dict[str, int]:
        """Return hit/miss counters (handy for tests and reports)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._store)}


class MetricsEngine:
    """Incremental, cached computation of every Theorem-2 metric.

    Parameters mirror the experiment configuration: ``exact_limit`` bounds the
    exact expansion/conductance enumeration, ``stretch_sample_pairs`` the
    stretch sampling, and ``seed`` the sampled estimators.  They are fixed at
    construction so that cached values are always comparable; callers that
    need different fidelity should use a second engine (or the plain
    functions in :mod:`repro.spectral`).

    ``label`` arguments name independent graph streams ("healed",
    "ghost_full", "ghost_alive", ...) so one engine can serve several graphs
    whose version counters are unrelated.
    """

    def __init__(
        self,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
        stretch_sample_pairs: int | None = 200,
        seed: int = 0,
        sparse_threshold: int = 400,
    ) -> None:
        self.exact_limit = exact_limit
        self.stretch_sample_pairs = stretch_sample_pairs
        self.seed = seed
        self.sparse_threshold = sparse_threshold
        self.cache = MetricsCache()
        self._fiedler: dict[tuple[str, str], dict[NodeId, float]] = {}

    # -- scalar kernels -----------------------------------------------------------

    def connected(self, graph: nx.Graph, version: int | None = None, label: str = "healed") -> bool:
        """Cached ``nx.is_connected`` (single-node graphs count as connected)."""
        cached = self.cache.lookup(("connected", label), version)
        if cached is not _MISS:
            return cached
        value = graph.number_of_nodes() <= 1 or nx.is_connected(graph)
        self.cache.store(("connected", label), version, value)
        return value

    def edge_expansion(
        self, graph: nx.Graph, version: int | None = None, label: str = "healed"
    ) -> float:
        """Cached ``h(G)`` (exact up to ``exact_limit`` nodes, bound beyond)."""
        cached = self.cache.lookup(("expansion", label), version)
        if cached is not _MISS:
            return cached
        value = edge_expansion(graph, exact_limit=self.exact_limit, seed=self.seed)
        self.cache.store(("expansion", label), version, value)
        return value

    def cheeger_constant(
        self, graph: nx.Graph, version: int | None = None, label: str = "healed"
    ) -> float:
        """Cached ``phi(G)``."""
        cached = self.cache.lookup(("cheeger", label), version)
        if cached is not _MISS:
            return cached
        value = cheeger_constant(graph, exact_limit=self.exact_limit, seed=self.seed)
        self.cache.store(("cheeger", label), version, value)
        return value

    def algebraic_connectivity(
        self, graph: nx.Graph, version: int | None = None, label: str = "healed"
    ) -> float:
        """Cached ``lambda_2`` of the combinatorial Laplacian, warm-started."""
        return self._spectral(
            graph,
            version,
            label,
            kind="combinatorial",
            solver=algebraic_connectivity,
        )

    def normalized_lambda2(
        self, graph: nx.Graph, version: int | None = None, label: str = "healed"
    ) -> float:
        """Cached ``lambda_2`` of the normalized Laplacian, warm-started."""
        return self._spectral(
            graph,
            version,
            label,
            kind="normalized",
            solver=normalized_laplacian_second_eigenvalue,
        )

    def _spectral(
        self,
        graph: nx.Graph,
        version: int | None,
        label: str,
        kind: str,
        solver: Callable,
    ) -> float:
        cached = self.cache.lookup((kind, label), version)
        if cached is not _MISS:
            return cached
        n = graph.number_of_nodes()
        want_vector = n > self.sparse_threshold
        v0 = self._warm_start((label, kind), graph) if want_vector else None
        result = solver(
            graph,
            sparse_threshold=self.sparse_threshold,
            v0=v0,
            return_vector=want_vector,
        )
        if want_vector:
            value, vector = result
            if vector is not None:
                self._fiedler[(label, kind)] = dict(zip(graph.nodes(), vector.tolist()))
        else:
            value = result
        self.cache.store((kind, label), version, value)
        return value

    def _warm_start(self, key: tuple[str, str], graph: nx.Graph) -> np.ndarray | None:
        """Project the previous Fiedler vector onto the current node set.

        Surviving nodes keep their old component, new nodes get the mean; the
        result is centred (orthogonal-ish to the trivial eigenvector) and
        normalised.  Returns ``None`` when fewer than half the nodes overlap
        with the stored vector (a cold or stale state would not help ARPACK).
        """
        state = self._fiedler.get(key)
        if not state:
            return None
        nodes = list(graph.nodes())
        hits = [state.get(node) for node in nodes]
        known = [h for h in hits if h is not None]
        if len(known) < max(2, len(nodes) // 2):
            return None
        fill = sum(known) / len(known)
        vector = np.array([h if h is not None else fill for h in hits], dtype=float)
        vector -= vector.mean()
        norm = np.linalg.norm(vector)
        if norm < 1e-12:
            return None
        return vector / norm

    # -- stretch ------------------------------------------------------------------

    def stretch_summary(
        self,
        healed: nx.Graph,
        ghost_alive: nx.Graph | Callable[[], nx.Graph],
        healed_version: int | None = None,
        ghost_version: int | None = None,
        label: str = "healed",
    ) -> StretchSummary | None:
        """Cached stretch summary of ``healed`` against the alive ghost subgraph.

        ``ghost_alive`` may be a graph or a zero-argument factory (e.g.
        ``ghost.alive_subgraph``); the factory is only invoked on a cache
        miss, so repeated invariant checks of an unchanged pair never even
        materialize the subgraph.  ``label`` names the healed-graph stream,
        like every other kernel.  Returns ``None`` when fewer than two nodes
        are shared.
        """
        key = ("stretch", label)
        version = (
            None
            if healed_version is None or ghost_version is None
            else (healed_version, ghost_version)
        )
        cached = self.cache.lookup(key, version)
        if cached is not _MISS:
            return cached
        ghost_graph = ghost_alive() if callable(ghost_alive) else ghost_alive
        if len(set(healed.nodes()) & set(ghost_graph.nodes())) < 2:
            summary = None
        else:
            summary = stretch_against_ghost(
                healed,
                ghost_graph,
                sample_pairs=self.stretch_sample_pairs,
                seed=self.seed,
            )
        self.cache.store(key, version, summary)
        return summary

    # -- snapshots ----------------------------------------------------------------

    def snapshot(
        self,
        graph: nx.Graph,
        ghost: nx.Graph | None = None,
        version: int | None = None,
        ghost_version: int | None = None,
        label: str = "healed",
    ) -> GraphMetrics:
        """Compute (or fetch) a full :class:`GraphMetrics` snapshot of ``graph``.

        Equivalent to :func:`repro.spectral.metrics.snapshot_metrics` with this
        engine's fidelity parameters; every constituent kernel goes through
        the version cache, so a snapshot followed by an invariant check of the
        same graph version recomputes nothing.
        """
        key = ("snapshot", label, ghost is not None)
        # With a ghost, an unknown ghost_version must bypass the cache (None is
        # "no version authority", not a version), mirroring stretch_summary.
        if version is None or (ghost is not None and ghost_version is None):
            full_version = None
        else:
            full_version = (version, ghost_version if ghost is not None else None)
        cached = self.cache.lookup(key, full_version)
        if cached is not _MISS:
            return cached
        n = graph.number_of_nodes()
        if n < 2:
            metrics = GraphMetrics(
                nodes=n,
                edges=graph.number_of_edges(),
                connected=n == 1,
                max_degree=max_degree(graph),
                min_degree=min_degree(graph),
                edge_expansion=0.0,
                cheeger_constant=0.0,
                algebraic_connectivity=0.0,
                normalized_lambda2=0.0,
            )
            self.cache.store(key, full_version, metrics)
            return metrics
        max_s: float | None = None
        avg_s: float | None = None
        if ghost is not None:
            summary = self.stretch_summary(
                graph, ghost, healed_version=version, ghost_version=ghost_version, label=label
            )
            if summary is not None:
                max_s = summary.max_stretch
                avg_s = summary.average_stretch
        metrics = GraphMetrics(
            nodes=n,
            edges=graph.number_of_edges(),
            connected=self.connected(graph, version, label),
            max_degree=max_degree(graph),
            min_degree=min_degree(graph),
            edge_expansion=self.edge_expansion(graph, version, label),
            cheeger_constant=self.cheeger_constant(graph, version, label),
            algebraic_connectivity=self.algebraic_connectivity(graph, version, label),
            normalized_lambda2=self.normalized_lambda2(graph, version, label),
            max_stretch=max_s,
            average_stretch=avg_s,
        )
        self.cache.store(key, full_version, metrics)
        return metrics

    def check_theorem2(
        self,
        healed: nx.Graph,
        ghost: GhostGraph,
        kappa: int,
        healed_version: int | None = None,
        alpha: float = 1.0,
        stretch_constant: float = 4.0,
    ):
        """Engine-accelerated :func:`repro.analysis.invariants.check_theorem2`.

        The ghost version is read off the :class:`GhostGraph` itself; every
        expensive quantity (expansion, lambda, stretch, connectivity) is
        served from the version cache when a snapshot of the same graph
        version was already taken.
        """
        from repro.analysis.invariants import check_theorem2

        return check_theorem2(
            healed,
            ghost,
            kappa=kappa,
            alpha=alpha,
            stretch_constant=stretch_constant,
            exact_limit=self.exact_limit,
            sample_pairs=self.stretch_sample_pairs,
            seed=self.seed,
            engine=self,
            healed_version=healed_version,
        )

    # -- diagnostics --------------------------------------------------------------

    def cache_stats(self) -> dict[str, int]:
        """Return the cache's hit/miss counters."""
        return self.cache.stats()
