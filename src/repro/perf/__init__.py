"""Fast metrics engine: vectorized cut kernels plus a versioned metric cache.

This package is the performance layer of the reproduction.  The rest of the
library defines *what* each Theorem-2 quantity means (in :mod:`repro.spectral`
and :mod:`repro.analysis`); this package provides *fast ways to compute them*:

* :mod:`repro.perf.kernels` — exact minimum-expansion and minimum-conductance
  cuts via a bit-packed Gray-code enumeration whose per-cut crossing count is
  an O(1)-amortised vectorized update rather than an O(m) edge rescan.
* :mod:`repro.perf.engine` — :class:`~repro.perf.engine.MetricsEngine`, which
  memoises every metric on the owning graph's monotonic version counter
  (``SelfHealer.graph_version`` / ``GhostGraph.version``) and warm-starts the
  sparse eigensolvers from the previous snapshot's Fiedler vector.

The slow, obviously-correct formulations stay available as ``*_reference``
functions in their original modules; the equivalence tests in
``tests/test_perf_equivalence.py`` pin the fast kernels to them.
"""

from repro.perf.kernels import (
    exact_minimum_cheeger_cut,
    exact_minimum_expansion_cut,
)

__all__ = [
    "MetricsCache",
    "MetricsEngine",
    "exact_minimum_cheeger_cut",
    "exact_minimum_expansion_cut",
]


def __getattr__(name: str):
    # The engine sits above repro.spectral while the kernels sit below it
    # (spectral's exact paths call into them), so the engine is loaded lazily
    # to keep `import repro.spectral` acyclic.
    if name in ("MetricsCache", "MetricsEngine"):
        from repro.perf import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
