"""The experiment runner: drive a healer with an adversary and record metrics.

The runner implements the model loop of Figure 1: at every timestep the
adversary produces an insertion or a deletion, the ghost graph records it,
the healer reacts, and the trackers/ledgers accumulate the Theorem 2 and
Theorem 5 quantities.  The same adversarial *trace* can be replayed against
several healers (``run_healer_on_trace``) so comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import networkx as nx

from repro.adversary.base import Adversary, AdversaryEvent
from repro.analysis.amortized import AmortizedCostSummary, CostLedger
from repro.analysis.invariants import Theorem2Verdict
from repro.analysis.trackers import DegreeRatioTracker, MetricTimeline
from repro.core.ghost import GhostGraph
from repro.core.healer import SelfHealer
from repro.perf.engine import MetricsEngine
from repro.spectral.metrics import GraphMetrics
from repro.util.validation import require


@dataclass
class ExperimentConfig:
    """Configuration of one experiment run.

    Attributes
    ----------
    healer_factory / adversary_factory:
        Zero-argument callables producing a fresh healer / adversary; the
        runner owns their lifecycle so sweeps can re-instantiate cleanly.
    initial_graph:
        The starting topology ``G_0`` (connected, simple).
    timesteps:
        Maximum number of adversarial events to play.
    metric_every:
        Record a full metric snapshot every this many timesteps; 0 disables
        intermediate snapshots (a final snapshot is always taken).  Snapshots
        go through a single :class:`~repro.perf.engine.MetricsEngine` keyed on
        the healer's ``graph_version`` / the ghost's ``version`` counters, so
        when ``metric_every`` and ``check_invariants_every`` coincide on a
        timestep (and at the end of the run) the invariant check reuses the
        snapshot's expansion / lambda / stretch values instead of recomputing
        them — an unchanged graph is never measured twice.
    kappa:
        The kappa used for invariant checking / cost bounds (should match the
        healer's kappa for Xheal; for baselines it only parameterises the
        reporting).
    check_invariants_every:
        Run the full Theorem 2 check every this many timesteps (0 = only at
        the end).  Served by the same engine/cache as ``metric_every``.
    exact_expansion_limit:
        Graphs with at most this many nodes get *exact* expansion and
        conductance values (vectorized Gray-code enumeration of all cuts,
        see :mod:`repro.perf.kernels`); larger graphs get the certified
        sweep+sampling upper bound.  The default is 22 — the vectorized
        kernel enumerates all 2^21 cuts in about a second, where the old
        Python rescan capped out near 18 (hence the previous default of
        16).
    stretch_sample_pairs:
        Number of node pairs sampled for stretch measurements (None = all).
        Sampling happens *before* any shortest-path work: only the sampled
        sources are BFS'd, so the per-snapshot cost is O(k * (n + m)) rather
        than all-pairs.
    snapshot_every:
        Cadence of *full Theorem-2 snapshots*.  ``None`` (default) keeps the
        historical behaviour: one full healed/ghost snapshot plus verdict at
        the end of the run, intermediate cadence governed by ``metric_every``
        alone.  ``0`` skips the end-of-run snapshot trio entirely — sweep
        points that only consume counters get ``None`` in the spectral /
        stretch / verdict columns of ``summary_row()`` and stop paying the
        dominant per-point cost (the Fiedler solves and cut sweeps).  A
        positive value records a timeline snapshot every that many timesteps
        (on top of ``metric_every``) and keeps the final trio.
    """

    healer_factory: Callable[[], SelfHealer]
    adversary_factory: Callable[[], Adversary]
    initial_graph: nx.Graph
    timesteps: int = 100
    metric_every: int = 0
    kappa: int = 4
    check_invariants_every: int = 0
    exact_expansion_limit: int = 22
    stretch_sample_pairs: int | None = 100
    seed: int = 0
    snapshot_every: int | None = None


@dataclass
class ExperimentResult:
    """Everything an experiment run produced."""

    healer_name: str
    adversary_name: str
    timesteps_executed: int
    insertions: int
    deletions: int
    final_graph: nx.Graph
    ghost: GhostGraph
    final_metrics: GraphMetrics | None
    ghost_metrics: GraphMetrics | None
    final_verdict: Theorem2Verdict | None
    timeline: MetricTimeline
    cost_summary: AmortizedCostSummary
    worst_degree_ratio: float
    trace: list[AdversaryEvent] = field(default_factory=list)
    intermediate_verdicts: list[Theorem2Verdict] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)
    healer_extra: dict[str, object] = field(default_factory=dict)
    #: Parallel to ``trace``: the 1-based timestep each event belonged to.
    #: Batched adversaries put several events in one timestep; the churn-trace
    #: exporter uses this to preserve the grouping.  Empty for flat replays.
    event_steps: list[int] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        """Return whether the final healed graph is connected."""
        graph = self.final_graph
        return graph.number_of_nodes() <= 1 or nx.is_connected(graph)

    def summary_row(self) -> dict[str, object]:
        """Return a flat dict suitable for the report printers.

        Runs configured with ``snapshot_every=0`` skip the final metric
        snapshots; their spectral / stretch / verdict columns are ``None``
        while the counter columns stay exact.
        """
        final, ghost = self.final_metrics, self.ghost_metrics
        row: dict[str, object] = {
            "healer": self.healer_name,
            "adversary": self.adversary_name,
            "steps": self.timesteps_executed,
            "nodes": final.nodes if final is not None else self.final_graph.number_of_nodes(),
            "edges": final.edges if final is not None else self.final_graph.number_of_edges(),
            "connected": self.connected,
            "h(Gt)": round(final.edge_expansion, 4) if final is not None else None,
            "h(G't)": round(ghost.edge_expansion, 4) if ghost is not None else None,
            "lambda(Gt)": (
                round(final.algebraic_connectivity, 4) if final is not None else None
            ),
            "lambda(G't)": (
                round(ghost.algebraic_connectivity, 4) if ghost is not None else None
            ),
            "max_stretch": (
                round(final.max_stretch, 3)
                if final is not None and final.max_stretch is not None
                else None
            ),
            "max_degree_ratio": round(self.worst_degree_ratio, 3),
            "amortized_msgs": round(self.cost_summary.amortized_messages, 1),
            "theorem2_holds": (
                self.final_verdict.all_hold if self.final_verdict is not None else None
            ),
        }
        # Healer-specific columns (e.g. BudgetedHealer's deferred_repairs /
        # budget_stalls) ride along; artifact lines are sorted-key JSON, so
        # appending here cannot perturb existing goldens.
        row.update(self.healer_extra)
        return row


def _apply_event(
    healer: SelfHealer, ghost: GhostGraph, event: AdversaryEvent
) -> tuple[int, int, int]:
    """Apply one event to healer and ghost; return (black_degree, messages, rounds)."""
    if event.is_insertion:
        ghost.record_insertion(event.node, event.neighbors)
        healer.handle_insertion(event.node, event.neighbors)
        return (0, 0, 0)
    black_degree = ghost.degree(event.node)
    ghost.record_deletion(event.node)
    report = healer.handle_deletion(event.node)
    messages = report.messages if report.messages else report.total_edge_changes
    return (black_degree, messages, report.rounds)


def _validate_batch(live, batch: Sequence[AdversaryEvent]) -> None:
    """Check a whole adversary batch against the live graph *before* applying it.

    Batched events are atomic: either every member applies or none does.  The
    healer validates per event, so a bad third event would otherwise leave the
    first two applied — instead we simulate the batch's membership deltas on a
    set overlay and raise up front, with the graph untouched.
    """
    added: set = set()
    removed: set = set()

    def present(node) -> bool:
        if node in added:
            return True
        return node in live and node not in removed

    for event in batch:
        if event.is_insertion:
            require(not present(event.node), f"batched insertion of existing node {event.node}")
            for neighbor in event.neighbors:
                require(neighbor != event.node, "a node cannot be inserted adjacent to itself")
                require(
                    present(neighbor),
                    f"batched insertion neighbor {neighbor} not in the network",
                )
            added.add(event.node)
            removed.discard(event.node)
        else:
            require(present(event.node), f"batched deletion of unknown node {event.node}")
            removed.add(event.node)
            added.discard(event.node)


def _live_view(healer: SelfHealer):
    """Return the cheapest live-graph view of ``healer`` the hot loop can use.

    Store-backed healers expose their :class:`~repro.core.edgestore.EdgeStore`,
    which speaks the graph dialect adversaries consume — probing it costs no
    materialization.  Healers without a store (external plugins) fall back to
    the ``nx.Graph`` property.
    """
    return getattr(healer, "graph_store", None) or healer.graph


def _ghost_full_snapshot(
    engine: MetricsEngine, ghost: GhostGraph, ghost_engine: MetricsEngine | None
) -> GraphMetrics:
    """Snapshot the full ghost graph, optionally through a *shared* engine.

    The full ghost graph (original nodes + insertions, no deletions or
    healing applied) is a pure function of the insertion sequence, so healers
    replaying the same trace all see the identical graph.  Passing the same
    ``ghost_engine`` to each run lets the second and later healers fetch the
    Theorem-2 reference metrics from cache instead of recomputing them.  The
    cache key includes the node and edge counts next to the insertions-only
    version counter, so runs whose ghosts diverged (defensively skipped
    events) can never be served each other's values.
    """
    if ghost_engine is None:
        return engine.snapshot(ghost.graph, version=ghost.graph_version, label="ghost_full")
    version = (
        ghost.graph_version,
        ghost.graph.number_of_nodes(),
        ghost.graph.number_of_edges(),
    )
    metrics = ghost_engine.snapshot(ghost.graph, version=version, label="ghost_full")
    # Pre-seed the run-local cache with the two ghost_full kernels the final
    # check_theorem2 reads back on *this* engine (expansion and lambda, keyed
    # by the plain insertions-only version — see check_expansion_invariant /
    # check_spectral_invariant); without these entries every healer would
    # redo the expensive ghost cut sweep and Fiedler solve.
    engine.cache.store(("expansion", "ghost_full"), ghost.graph_version, metrics.edge_expansion)
    engine.cache.store(
        ("combinatorial", "ghost_full"), ghost.graph_version, metrics.algebraic_connectivity
    )
    return metrics


def run_experiment(
    config: ExperimentConfig, ghost_engine: MetricsEngine | None = None
) -> ExperimentResult:
    """Run one healer against one adversary from the configured initial graph.

    ``ghost_engine``, when given, serves the full-ghost metric snapshot from
    a cache shared across runs (see :func:`repro.harness.sweeps.compare_healers`);
    it must be configured with the same fidelity parameters as ``config``.
    """
    require(config.timesteps >= 1, "timesteps must be at least 1")
    require(config.initial_graph.number_of_nodes() >= 2, "initial graph too small")

    healer = config.healer_factory()
    healer.initialize(config.initial_graph)
    ghost = GhostGraph(config.initial_graph)
    adversary = config.adversary_factory()
    adversary.bind(config.initial_graph)

    ledger = CostLedger(kappa=config.kappa)
    degree_tracker = DegreeRatioTracker(kappa=config.kappa)
    engine = MetricsEngine(
        exact_limit=config.exact_expansion_limit,
        stretch_sample_pairs=config.stretch_sample_pairs,
        seed=config.seed,
    )
    timeline = MetricTimeline(
        exact_limit=config.exact_expansion_limit,
        stretch_sample_pairs=config.stretch_sample_pairs,
        engine=engine,
    )
    trace: list[AdversaryEvent] = []
    event_steps: list[int] = []
    verdicts: list[Theorem2Verdict] = []
    insertions = 0
    deletions = 0
    executed = 0

    live = _live_view(healer)
    fast_tracker = live is not healer.graph
    if fast_tracker:
        degree_tracker.attach_store(live, ghost)
    snapshot_cadence = config.snapshot_every if config.snapshot_every else 0

    for timestep in range(1, config.timesteps + 1):
        batch = adversary.next_events(live, timestep)
        if not batch:
            break
        # Atomicity: validate the whole batch against the untouched graph, so
        # a malformed correlated kill aborts before any member event applies.
        _validate_batch(live, batch)
        worst_ratio = degree_tracker.max_ratio_seen
        for event in batch:
            trace.append(event)
            event_steps.append(timestep)
            executed += 1
            if event.is_insertion:
                insertions += 1
            else:
                deletions += 1

            black_degree, messages, rounds = _apply_event(healer, ghost, event)
            if event.is_deletion:
                ledger.record_deletion(
                    deleted=event.node,
                    black_degree=black_degree,
                    messages=messages,
                    rounds=rounds,
                    network_size=live.number_of_nodes(),
                )
            # Observe after *every* event (not once per timestep): replays
            # walk the flat trace event by event, so the degree-ratio stream
            # must match or run-vs-replay byte-identity breaks.
            if fast_tracker:
                if event.is_insertion:
                    degree_tracker.record_insertion(event.node, event.neighbors)
                worst_ratio = degree_tracker.observe_store()
            else:
                worst_ratio = degree_tracker.observe(healer.graph, ghost)

        due = config.metric_every and timestep % config.metric_every == 0
        due = due or (snapshot_cadence and timestep % snapshot_cadence == 0)
        if due:
            timeline.record(
                timestep, healer.graph, ghost, worst_ratio, healed_version=healer.graph_version
            )
        if config.check_invariants_every and timestep % config.check_invariants_every == 0:
            verdicts.append(
                engine.check_theorem2(
                    healer.graph,
                    ghost,
                    kappa=config.kappa,
                    healed_version=healer.graph_version,
                )
            )

    if config.snapshot_every == 0:
        final_metrics = ghost_metrics = None
        final_verdict = None
    else:
        ghost_alive = ghost.alive_subgraph()
        final_metrics = engine.snapshot(
            healer.graph,
            ghost=ghost_alive,
            version=healer.graph_version,
            ghost_version=ghost.version,
            label="healed",
        )
        ghost_metrics = _ghost_full_snapshot(engine, ghost, ghost_engine)
        final_verdict = engine.check_theorem2(
            healer.graph,
            ghost,
            kappa=config.kappa,
            healed_version=healer.graph_version,
        )

    return ExperimentResult(
        healer_name=healer.name,
        adversary_name=adversary.name,
        timesteps_executed=executed,
        insertions=insertions,
        deletions=deletions,
        final_graph=healer.graph.copy(),
        ghost=ghost,
        final_metrics=final_metrics,
        ghost_metrics=ghost_metrics,
        final_verdict=final_verdict,
        timeline=timeline,
        cost_summary=ledger.summary(),
        worst_degree_ratio=degree_tracker.max_ratio_seen,
        trace=trace,
        intermediate_verdicts=verdicts,
        cache_stats=engine.cache_stats(),
        healer_extra=healer.extra_summary(),
        event_steps=event_steps,
    )


def run_healer_on_trace(
    healer: SelfHealer,
    initial_graph: nx.Graph,
    trace: Sequence[AdversaryEvent],
    kappa: int = 4,
    exact_expansion_limit: int = 22,
    stretch_sample_pairs: int | None = 100,
    seed: int = 0,
    adversary_name: str = "trace",
    ghost_engine: MetricsEngine | None = None,
    snapshot_every: int | None = None,
) -> ExperimentResult:
    """Replay a fixed adversarial trace against ``healer`` (for fair comparisons).

    The trace is typically taken from a previous :func:`run_experiment` result
    so that several healers face exactly the same insertions and deletions.
    Events naming nodes absent from the healer's graph are skipped defensively
    (can only happen when a prior healer lost connectivity and the trace was
    generated adaptively).

    ``seed`` seeds the metrics engine's sampled estimators — pass the original
    run's ``config.seed`` to make a replay reproduce its measurements exactly.
    ``adversary_name`` labels the result's summary row (artifact replays pass
    the original adversary name so the replayed row matches byte for byte).
    ``ghost_engine`` optionally shares the full-ghost metric cache across
    healers replaying the same trace (see
    :func:`repro.harness.sweeps.compare_healers`).  ``snapshot_every``
    mirrors :attr:`ExperimentConfig.snapshot_every` so replays of
    snapshot-skipping runs reproduce their rows exactly.
    """
    healer.initialize(initial_graph)
    ghost = GhostGraph(initial_graph)
    ledger = CostLedger(kappa=kappa)
    degree_tracker = DegreeRatioTracker(kappa=kappa)
    engine = MetricsEngine(
        exact_limit=exact_expansion_limit,
        stretch_sample_pairs=stretch_sample_pairs,
        seed=seed,
    )
    timeline = MetricTimeline(
        exact_limit=exact_expansion_limit,
        stretch_sample_pairs=stretch_sample_pairs,
        engine=engine,
    )
    insertions = 0
    deletions = 0
    executed = 0

    live = _live_view(healer)
    fast_tracker = live is not healer.graph
    if fast_tracker:
        degree_tracker.attach_store(live, ghost)

    for event in trace:
        if event.is_deletion and event.node not in live:
            continue
        if event.is_insertion and event.node in live:
            continue
        if event.is_insertion:
            neighbors = tuple(node for node in event.neighbors if node in live)
            if not neighbors:
                # All anchors are gone: the event cannot be applied, so it
                # must not count as executed either (it would inflate the
                # summary row's step counters relative to the work done).
                continue
            executed += 1
            insertions += 1
            ghost.record_insertion(event.node, neighbors)
            healer.handle_insertion(event.node, neighbors)
            if fast_tracker:
                degree_tracker.record_insertion(event.node, neighbors)
        else:
            executed += 1
            deletions += 1
            black_degree = ghost.degree(event.node)
            ghost.record_deletion(event.node)
            report = healer.handle_deletion(event.node)
            ledger.record_deletion(
                deleted=event.node,
                black_degree=black_degree,
                messages=report.messages if report.messages else report.total_edge_changes,
                rounds=report.rounds,
                network_size=live.number_of_nodes(),
            )
        if fast_tracker:
            degree_tracker.observe_store()
        else:
            degree_tracker.observe(healer.graph, ghost)

    if snapshot_every == 0:
        final_metrics = ghost_metrics = None
        final_verdict = None
    else:
        ghost_alive = ghost.alive_subgraph()
        final_metrics = engine.snapshot(
            healer.graph,
            ghost=ghost_alive,
            version=healer.graph_version,
            ghost_version=ghost.version,
            label="healed",
        )
        ghost_metrics = _ghost_full_snapshot(engine, ghost, ghost_engine)
        final_verdict = engine.check_theorem2(
            healer.graph, ghost, kappa=kappa, healed_version=healer.graph_version
        )
    return ExperimentResult(
        healer_name=healer.name,
        adversary_name=adversary_name,
        timesteps_executed=executed,
        insertions=insertions,
        deletions=deletions,
        final_graph=healer.graph.copy(),
        ghost=ghost,
        final_metrics=final_metrics,
        ghost_metrics=ghost_metrics,
        final_verdict=final_verdict,
        timeline=timeline,
        cost_summary=ledger.summary(),
        worst_degree_ratio=degree_tracker.max_ratio_seen,
        trace=list(trace),
        cache_stats=engine.cache_stats(),
        healer_extra=healer.extra_summary(),
    )
