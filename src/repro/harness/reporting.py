"""Plain-text table printing for benchmark output.

The benchmarks print the same rows/series the paper's evaluation talks about
(expansion vs the ghost graph, degree ratios, stretch, amortised messages).
Everything is plain text so it renders in a terminal and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(column) for column in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = [_cell(row.get(column)) for column in columns]
        rendered.append(cells)
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, cells))
        for cells in rendered
    ]
    return "\n".join([header, separator, *body])


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Print (and return) a formatted table, optionally with a title banner."""
    text = format_table(rows, columns)
    if title:
        banner = f"=== {title} ==="
        text = f"{banner}\n{text}"
    print(text)
    return text


def print_comparison(
    results: Iterable, title: str | None = None, columns: Sequence[str] | None = None
) -> str:
    """Print the ``summary_row()`` of several :class:`ExperimentResult` objects."""
    rows = [result.summary_row() for result in results]
    return print_table(rows, columns=columns, title=title)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Format an (x, y) series as two aligned columns (a text stand-in for a figure)."""
    lines = [f"--- {name} ---"]
    for x, y in zip(xs, ys):
        lines.append(f"{_cell(x):>12}  {_cell(y)}")
    return "\n".join(lines)
