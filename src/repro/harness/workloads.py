"""Initial-topology generators for experiments.

The paper motivates Xheal with reconfigurable networks — peer-to-peer
overlays, wireless mesh networks, infrastructure networks — and its analysis
highlights specific worst cases (the star) and reference classes (bounded
degree expanders).  Each generator returns a connected simple
:class:`networkx.Graph` with integer node ids starting at 0.
"""

from __future__ import annotations

import networkx as nx

from repro.core.domains import assign_domain
from repro.scenarios.registry import TOPOLOGIES, register_topology
from repro.util.validation import require


@register_topology("star")
def star_workload(n: int) -> nx.Graph:
    """A star on ``n`` nodes (centre = node 0).

    The paper's motivating worst case for tree-based healers: deleting the
    centre leaves the healer to reconnect ``n - 1`` mutually unconnected
    leaves.
    """
    require(n >= 3, "star needs at least 3 nodes")
    return nx.star_graph(n - 1)


@register_topology("random-regular")
def random_regular_workload(n: int, degree: int = 4, seed: int = 0) -> nx.Graph:
    """A random ``degree``-regular graph — the canonical bounded-degree expander."""
    require(n > degree, "n must exceed the degree")
    require((n * degree) % 2 == 0, "n * degree must be even")
    graph = nx.random_regular_graph(degree, n, seed=seed)
    # Random regular graphs are connected w.h.p.; retry a few seeds if unlucky.
    attempt = 0
    while not nx.is_connected(graph) and attempt < 10:
        attempt += 1
        graph = nx.random_regular_graph(degree, n, seed=seed + attempt)
    require(nx.is_connected(graph), "failed to generate a connected regular graph")
    return graph


@register_topology("erdos-renyi")
def erdos_renyi_workload(n: int, average_degree: float = 6.0, seed: int = 0) -> nx.Graph:
    """A connected Erdos-Renyi graph with the given expected average degree."""
    require(n >= 4, "need at least 4 nodes")
    probability = min(1.0, average_degree / max(1, n - 1))
    graph = nx.gnp_random_graph(n, probability, seed=seed)
    attempt = 0
    while not nx.is_connected(graph) and attempt < 20:
        attempt += 1
        graph = nx.gnp_random_graph(n, probability, seed=seed + attempt)
    if not nx.is_connected(graph):
        # Stitch components together rather than failing: adversarial models
        # assume a connected start.
        components = [sorted(component) for component in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    return graph


@register_topology("grid")
def grid_workload(rows: int, cols: int | None = None) -> nx.Graph:
    """A 2D grid graph relabelled to integer ids (wireless-mesh-like topology)."""
    require(rows >= 2, "grid needs at least 2 rows")
    if cols is None:
        cols = rows
    require(cols >= 2, "grid needs at least 2 columns")
    grid = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(grid, ordering="sorted")


@register_topology("ring")
def ring_workload(n: int) -> nx.Graph:
    """A cycle on ``n`` nodes (minimum-degree connected topology)."""
    require(n >= 3, "ring needs at least 3 nodes")
    return nx.cycle_graph(n)


@register_topology("power-law")
def power_law_workload(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """A Barabasi-Albert preferential-attachment graph (P2P-overlay-like hubs)."""
    require(n > m >= 1, "need n > m >= 1")
    return nx.barabasi_albert_graph(n, m, seed=seed)


@register_topology("two-cliques")
def two_cliques_workload(n: int, expander_degree: int = 4, seed: int = 0) -> nx.Graph:
    """A constant-degree expander with a clique added on each half of its nodes.

    The paper's Section 1.1 example: "consider a constant degree expander of n
    nodes and partition the vertex set into two equal parts.  Make each of the
    parts a clique.  This graph has expansion at least a constant, but its
    conductance is O(1/n)" — so edge expansion alone misses the polynomial
    mixing time, which is why the Cheeger constant / lambda_2 matter.
    """
    require(n >= 8 and n % 2 == 0, "need an even n >= 8")
    graph = random_regular_workload(n, expander_degree, seed=seed)
    half = n // 2
    for offset in (0, half):
        for i in range(half):
            for j in range(i + 1, half):
                graph.add_edge(offset + i, offset + j)
    return graph


@register_topology("racked-clos")
def racked_clos_workload(racks: int = 4, nodes_per_rack: int = 8, spine_degree: int = 2) -> nx.Graph:
    """Racked datacenter fabric: intra-rack rings plus a circulant spine.

    Each rack is a failure domain (node attribute ``domain = "rackRR"``):
    losing one models a ToR switch or power feed going dark.  Within a rack
    the ``nodes_per_rack`` servers form a ring; across racks, node ``i`` of
    rack ``r`` links to node ``(i + k) % nodes_per_rack`` of rack
    ``(r + 1 + k) % racks`` for each spine offset ``k < spine_degree`` — a
    deterministic circulant wiring (no seed), so the same parameters always
    produce the same graph, which the byte-identity suites rely on.
    """
    require(racks >= 2, "racked-clos needs at least 2 racks")
    require(nodes_per_rack >= 3, "racked-clos needs at least 3 nodes per rack")
    require(1 <= spine_degree < racks, "spine_degree must be in [1, racks)")
    graph = nx.Graph()
    for rack in range(racks):
        base = rack * nodes_per_rack
        members = range(base, base + nodes_per_rack)
        graph.add_nodes_from(members)
        assign_domain(graph, members, f"rack{rack:02d}")
        for i in range(nodes_per_rack):
            graph.add_edge(base + i, base + (i + 1) % nodes_per_rack)
    for rack in range(racks):
        for k in range(spine_degree):
            other = (rack + 1 + k) % racks
            if other == rack:
                continue
            for i in range(nodes_per_rack):
                u = rack * nodes_per_rack + i
                v = other * nodes_per_rack + (i + k) % nodes_per_rack
                graph.add_edge(u, v)
    return graph


@register_topology("pod-mesh")
def pod_mesh_workload(pods: int = 4, nodes_per_pod: int = 6, inter_pod_links: int = 2) -> nx.Graph:
    """Pod mesh: clique pods (CXL memory pods) bridged by a deterministic mesh.

    Each pod is a clique and a failure domain (``domain = "podPP"``) — the
    sparse-pod topology Octopus motivates.  Every pair of pods is bridged by
    ``inter_pod_links`` edges: node ``j`` of pod ``a`` connects to node ``j``
    of pod ``b`` for ``j < inter_pod_links``.  Fully deterministic, no seed.
    """
    require(pods >= 2, "pod-mesh needs at least 2 pods")
    require(nodes_per_pod >= 3, "pod-mesh needs at least 3 nodes per pod")
    require(1 <= inter_pod_links <= nodes_per_pod, "inter_pod_links must be in [1, nodes_per_pod]")
    graph = nx.Graph()
    for pod in range(pods):
        base = pod * nodes_per_pod
        members = range(base, base + nodes_per_pod)
        graph.add_nodes_from(members)
        assign_domain(graph, members, f"pod{pod:02d}")
        for i in range(nodes_per_pod):
            for j in range(i + 1, nodes_per_pod):
                graph.add_edge(base + i, base + j)
    for a in range(pods):
        for b in range(a + 1, pods):
            for j in range(inter_pod_links):
                graph.add_edge(a * nodes_per_pod + j, b * nodes_per_pod + j)
    return graph


#: Read-only live view of the topology registry — the single source of truth
#: for workload names.  Generators register themselves with
#: :func:`repro.scenarios.registry.register_topology` above; scenario specs,
#: ``python -m repro list`` and :func:`workload_by_name` all consult the same
#: table.
WORKLOADS = TOPOLOGIES.as_mapping()


def workload_by_name(name: str, **kwargs) -> nx.Graph:
    """Instantiate a workload by its registry name.

    Unknown names raise a :class:`~repro.scenarios.registry.UnknownNameError`
    listing every registered workload and suggesting the nearest match.
    """
    return TOPOLOGIES.get(name)(**kwargs)
