"""Experiment harness: workloads, the runner, sweeps and report printing.

This is the layer the ``benchmarks/`` directory and the examples are built
on.  A benchmark is: pick a workload (initial topology), an adversary, one or
more healers, run them through :func:`run_experiment` for a number of
timesteps, and print the resulting table with
:mod:`repro.harness.reporting`.
"""

from repro.harness.workloads import (
    WORKLOADS,
    erdos_renyi_workload,
    grid_workload,
    power_law_workload,
    random_regular_workload,
    ring_workload,
    star_workload,
    two_cliques_workload,
    workload_by_name,
)
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_healer_on_trace,
)
from repro.harness.sweeps import SweepResult, compare_healers, sweep_healers, sweep_parameter
from repro.harness.reporting import format_table, print_comparison, print_table

__all__ = [
    "WORKLOADS",
    "erdos_renyi_workload",
    "grid_workload",
    "power_law_workload",
    "random_regular_workload",
    "ring_workload",
    "star_workload",
    "two_cliques_workload",
    "workload_by_name",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_healer_on_trace",
    "SweepResult",
    "compare_healers",
    "sweep_healers",
    "sweep_parameter",
    "format_table",
    "print_comparison",
    "print_table",
]
