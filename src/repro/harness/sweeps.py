"""Parameter sweeps built on top of the experiment runner.

For declarative, serializable, parallelizable sweeps prefer
:class:`repro.scenarios.sweep.SweepSpec` +
:func:`repro.scenarios.runner.run_scenarios` — the functions here remain as
the thin imperative layer they compile down to, plus
:func:`compare_healers`, the shared-trace/shared-ghost-metrics comparison
harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.adversary.base import Adversary
from repro.core.healer import SelfHealer
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_healer_on_trace,
)
from repro.perf.engine import MetricsEngine


@dataclass(frozen=True)
class SweepResult:
    """One point of a parameter sweep.

    ``wall_clock_s`` mirrors the scenario layer's per-point cost column: the
    measured execution time of this point, surfaced in :meth:`row` so
    imperative sweeps can also be cost-profiled.
    """

    label: str
    parameter: object
    result: ExperimentResult
    wall_clock_s: float | None = None

    def row(self) -> dict[str, object]:
        """Return the experiment's summary row augmented with the sweep parameter."""
        row = {"sweep": self.label, "parameter": self.parameter}
        row.update(self.result.summary_row())
        if self.wall_clock_s is not None:
            row["wall_clock_s"] = self.wall_clock_s
        return row


def sweep_parameter(
    base_config: ExperimentConfig,
    label: str,
    values: Sequence[object],
    configure: Callable[[ExperimentConfig, object], ExperimentConfig],
    on_result: Callable[[SweepResult], None] | None = None,
    collect: bool = True,
) -> list[SweepResult]:
    """Run the experiment once per parameter value.

    ``configure(config, value)`` returns the config to use for that value
    (typically built with :func:`dataclasses.replace`).

    ``on_result`` fires after each point completes — the streaming hook for
    long sweeps (persist the row, drop the graphs).  With ``collect=False``
    nothing is buffered and the returned list is empty; an
    :class:`~repro.harness.experiment.ExperimentResult` holds whole graphs,
    so buffering thousands of them is exactly what the scenario layer's
    ``stream_to`` mode exists to avoid.
    """
    results: list[SweepResult] = []
    for value in values:
        config = configure(base_config, value)
        start = time.perf_counter()
        result = run_experiment(config)
        point = SweepResult(
            label=label,
            parameter=value,
            result=result,
            wall_clock_s=time.perf_counter() - start,
        )
        if on_result is not None:
            on_result(point)
        if collect:
            results.append(point)
    return results


def sweep_healers(
    base_config: ExperimentConfig,
    healers: Mapping[str, Callable[[], SelfHealer]],
    adversary_factory: Callable[[], Adversary] | None = None,
    on_result: Callable[[SweepResult], None] | None = None,
    collect: bool = True,
) -> list[SweepResult]:
    """Run the same experiment once per healer (each against a fresh adversary).

    Adversaries are deterministic given their seed, so every healer faces the
    same strategy; healers that change the topology differently may still see
    different adaptive choices, which is the model's intent (the adversary is
    omniscient about topology).  For strictly identical traces use
    :func:`repro.harness.experiment.run_healer_on_trace`.

    ``on_result``/``collect`` stream points as they finish, as in
    :func:`sweep_parameter`.
    """
    results: list[SweepResult] = []
    for name, factory in healers.items():
        config = replace(
            base_config,
            healer_factory=factory,
            adversary_factory=adversary_factory or base_config.adversary_factory,
        )
        start = time.perf_counter()
        result = run_experiment(config)
        point = SweepResult(
            label="healer",
            parameter=name,
            result=result,
            wall_clock_s=time.perf_counter() - start,
        )
        if on_result is not None:
            on_result(point)
        if collect:
            results.append(point)
    return results


def healer_factory(name: str, **kwargs) -> Callable[[], SelfHealer]:
    """Return a factory building the registered healer ``name`` with ``kwargs``.

    The registry lookup happens eagerly (typos fail here, with suggestions)
    and the class is captured by value — no late-binding trap when building
    factory lists in a loop.
    """
    from repro.scenarios.registry import HEALERS

    healer_cls = HEALERS.get(name)
    return lambda: healer_cls(**kwargs)


def compare_healers(
    base_config: ExperimentConfig,
    healers: Mapping[str, Callable[[], SelfHealer]] | Sequence[Callable[[], SelfHealer]],
) -> list[ExperimentResult]:
    """Replay one adversarial trace against several healers, apples-to-apples.

    The first healer runs live against ``base_config``'s adversary; every
    other healer replays the exact trace it produced (the standard
    comparison pattern of the examples and benchmarks).

    All runs share one full-ghost metrics cache: the ghost graph ``G'_t`` is
    a pure function of the insertion sequence, so replaying the same trace
    produces the identical ghost for every healer — its Theorem-2 reference
    metrics are computed once (by the first run) and served from cache for
    the rest instead of being recomputed per healer.
    """
    factories = list(healers.values()) if isinstance(healers, Mapping) else list(healers)
    if not factories:
        return []
    ghost_engine = MetricsEngine(
        exact_limit=base_config.exact_expansion_limit,
        stretch_sample_pairs=base_config.stretch_sample_pairs,
        seed=base_config.seed,
    )
    reference = run_experiment(
        replace(base_config, healer_factory=factories[0]), ghost_engine=ghost_engine
    )
    results = [reference]
    for factory in factories[1:]:
        results.append(
            run_healer_on_trace(
                factory(),
                base_config.initial_graph,
                reference.trace,
                kappa=base_config.kappa,
                exact_expansion_limit=base_config.exact_expansion_limit,
                stretch_sample_pairs=base_config.stretch_sample_pairs,
                seed=base_config.seed,
                ghost_engine=ghost_engine,
            )
        )
    return results
