"""Parameter sweeps built on top of the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.adversary.base import Adversary
from repro.core.healer import SelfHealer
from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment


@dataclass(frozen=True)
class SweepResult:
    """One point of a parameter sweep."""

    label: str
    parameter: object
    result: ExperimentResult

    def row(self) -> dict[str, object]:
        """Return the experiment's summary row augmented with the sweep parameter."""
        row = {"sweep": self.label, "parameter": self.parameter}
        row.update(self.result.summary_row())
        return row


def sweep_parameter(
    base_config: ExperimentConfig,
    label: str,
    values: Sequence[object],
    configure: Callable[[ExperimentConfig, object], ExperimentConfig],
) -> list[SweepResult]:
    """Run the experiment once per parameter value.

    ``configure(config, value)`` returns the config to use for that value
    (typically built with :func:`dataclasses.replace`).
    """
    results: list[SweepResult] = []
    for value in values:
        config = configure(base_config, value)
        results.append(SweepResult(label=label, parameter=value, result=run_experiment(config)))
    return results


def sweep_healers(
    base_config: ExperimentConfig,
    healers: Mapping[str, Callable[[], SelfHealer]],
    adversary_factory: Callable[[], Adversary] | None = None,
) -> list[SweepResult]:
    """Run the same experiment once per healer (each against a fresh adversary).

    Adversaries are deterministic given their seed, so every healer faces the
    same strategy; healers that change the topology differently may still see
    different adaptive choices, which is the model's intent (the adversary is
    omniscient about topology).  For strictly identical traces use
    :func:`repro.harness.experiment.run_healer_on_trace`.
    """
    results: list[SweepResult] = []
    for name, factory in healers.items():
        config = replace(
            base_config,
            healer_factory=factory,
            adversary_factory=adversary_factory or base_config.adversary_factory,
        )
        results.append(SweepResult(label="healer", parameter=name, result=run_experiment(config)))
    return results
