"""``python -m repro`` — the scenario CLI (see :mod:`repro.scenarios.cli`)."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
