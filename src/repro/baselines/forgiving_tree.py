"""Forgiving Tree baseline [Hayes, Rustagi, Saia, Trehan; PODC 2008].

The Forgiving Tree replaces each deleted node by a *Reconstruction Tree*: a
balanced binary tree whose leaves are the deleted node's neighbours and whose
internal "virtual" nodes are simulated by those same neighbours.  Its
guarantees are a constant additive degree increase and ``O(log n)`` stretch —
but, as the Xheal paper points out, the patches are trees, so a single
deletion at the centre of a star collapses the edge expansion from a constant
to ``O(1/n)``.

This implementation works on the *real-node projection* of the structure: the
edges actually present in the network after the virtual tree is simulated by
real nodes.  Concretely, the surviving neighbours are arranged as the nodes of
a balanced binary tree (heap order over the sorted neighbour list) and tree
edges are added between them.  This preserves the properties the comparison
with Xheal relies on — bounded degree increase, logarithmic stretch of the
patch, and tree-shaped (expansion-destroying) repairs — without simulating
the virtual-node message machinery.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId


def balanced_tree_edges(nodes: list[NodeId]) -> list[tuple[NodeId, NodeId]]:
    """Return the edges of a balanced binary tree over ``nodes`` (heap indexing).

    ``nodes[0]`` is the root, ``nodes[i]`` has children ``nodes[2i+1]`` and
    ``nodes[2i+2]`` when those indices exist.  The tree has depth
    ``floor(log2(len(nodes)))`` and maximum degree 3.
    """
    edges: list[tuple[NodeId, NodeId]] = []
    for i in range(len(nodes)):
        for child_index in (2 * i + 1, 2 * i + 2):
            if child_index < len(nodes):
                edges.append((nodes[i], nodes[child_index]))
    return edges


@register_healer("forgiving-tree")
class ForgivingTreeHeal(SelfHealer):
    """Replace the deleted node by a balanced binary tree of its neighbours."""

    name = "forgiving-tree"

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
        survivors = sorted(node for node in neighbors if node in self._graph)
        if len(survivors) < 2:
            return
        for u, v in balanced_tree_edges(survivors):
            self._add_plain_edge(u, v, report)
