"""Clique healing baseline.

When a node is deleted, every pair of its surviving neighbours is connected.
This maximises expansion and minimises stretch of the repair but makes node
degrees explode (a node adjacent to many deletions accumulates the union of
all the deleted neighbourhoods) — the degree-increase benchmark uses it as
the "no degree discipline" upper bracket.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId


@register_healer("clique-heal")
class CliqueHeal(SelfHealer):
    """Reconnect the deleted node's neighbours as a clique."""

    name = "clique-heal"

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
        survivors = sorted(node for node in neighbors if node in self._graph)
        for i in range(len(survivors)):
            for j in range(i + 1, len(survivors)):
                self._add_plain_edge(survivors[i], survivors[j], report)
