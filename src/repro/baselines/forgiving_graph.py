"""Forgiving Graph baseline [Hayes, Saia, Trehan; PODC 2009].

The Forgiving Graph improves on the Forgiving Tree by handling both
insertions and deletions and by bounding the *multiplicative* degree increase
using "half-full trees" (HAFTs): the deleted node is replaced by a half-full
binary tree whose leaves are the surviving neighbours, and neighbours with
higher degree in the original graph are placed closer to the root so that the
extra edges they pick up stay proportional to their original degree.

As with the Forgiving Tree baseline, this implementation uses the real-node
projection of the virtual structure: a half-full tree is built over the
surviving neighbours ordered by their ghost-graph degree (highest degree
first, i.e. nearest the root), and its edges are added to the network.  The
comparison-relevant properties — multiplicative O(1) degree increase,
O(log n) stretch, and tree-shaped patches that destroy expansion — are
preserved.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId


def half_full_tree_edges(leaves: list[NodeId]) -> list[tuple[NodeId, NodeId]]:
    """Return the edges of a half-full tree (HAFT) whose node set is ``leaves``.

    A half-full tree over ``k`` items is the union of complete binary trees
    whose sizes are the powers of two in the binary representation of ``k``,
    with the roots of consecutive trees chained together.  Here the *same*
    real nodes play both leaf and internal roles (real-node projection), so we
    build each complete tree in heap order over its slice of ``leaves`` and
    chain the slice heads.
    """
    edges: list[tuple[NodeId, NodeId]] = []
    remaining = list(leaves)
    previous_root: NodeId | None = None
    while remaining:
        # Largest power of two not exceeding the remaining count.
        size = 1 << (len(remaining).bit_length() - 1)
        block, remaining = remaining[:size], remaining[size:]
        for i in range(size):
            for child_index in (2 * i + 1, 2 * i + 2):
                if child_index < size:
                    edges.append((block[i], block[child_index]))
        if previous_root is not None:
            edges.append((previous_root, block[0]))
        previous_root = block[0]
    return edges


@register_healer("forgiving-graph")
class ForgivingGraphHeal(SelfHealer):
    """Replace the deleted node by a half-full tree of its neighbours."""

    name = "forgiving-graph"

    def __init__(self, seed: int = 0):
        super().__init__(seed=seed)
        # Degrees in the insertions-only graph, used to order the HAFT so that
        # high-degree nodes sit near the root (the PODC'09 placement rule).
        self._ghost_degree: dict[NodeId, int] = {}

    def _after_initialize(self) -> None:
        self._ghost_degree = {node: self._graph.degree(node) for node in self._graph.nodes()}

    def _after_insertion(self, node: NodeId, neighbors: list[NodeId], report: RepairReport) -> None:
        self._ghost_degree[node] = len(neighbors)
        for neighbor in neighbors:
            self._ghost_degree[neighbor] = self._ghost_degree.get(neighbor, 0) + 1

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
        survivors = [node for node in neighbors if node in self._graph]
        if len(survivors) < 2:
            return
        # High ghost-degree nodes first: they take the internal (higher-degree)
        # positions of the half-full tree.
        survivors.sort(key=lambda node: (-self._ghost_degree.get(node, 0), node))
        for u, v in half_full_tree_edges(survivors):
            self._add_plain_edge(u, v, report)
