"""Baseline self-healing algorithms Xheal is compared against.

The paper positions Xheal against two families of prior work:

* **Tree-based self-healers** — *Forgiving Tree* [Hayes, Rustagi, Saia,
  Trehan; PODC 2008] and *Forgiving Graph* [Hayes, Saia, Trehan; PODC 2009]
  replace a deleted node by a (virtual) tree of its neighbours.  They keep
  degrees and stretch low but, as Section 1 argues, "methods which put in
  tree like structures of nodes are likely to be bad for expansion": deleting
  the centre of a star drops expansion from a constant to ``O(1/n)``.
* **Naive healers** — no healing at all, connecting the neighbours in a cycle
  (line), a clique, or with a few random edges.  These bracket the design
  space: the clique heals expansion perfectly but explodes degrees, the cycle
  keeps degrees tiny but gives terrible expansion and stretch, no-heal loses
  connectivity outright.

All baselines implement the same :class:`repro.core.healer.SelfHealer`
interface so the experiment harness can drive them interchangeably.
"""

from repro.baselines.no_heal import NoHeal
from repro.baselines.line_heal import LineHeal
from repro.baselines.clique_heal import CliqueHeal
from repro.baselines.random_heal import RandomKHeal
from repro.baselines.forgiving_tree import ForgivingTreeHeal
from repro.baselines.forgiving_graph import ForgivingGraphHeal

ALL_BASELINES = (
    NoHeal,
    LineHeal,
    CliqueHeal,
    RandomKHeal,
    ForgivingTreeHeal,
    ForgivingGraphHeal,
)

__all__ = [
    "NoHeal",
    "LineHeal",
    "CliqueHeal",
    "RandomKHeal",
    "ForgivingTreeHeal",
    "ForgivingGraphHeal",
    "ALL_BASELINES",
]
