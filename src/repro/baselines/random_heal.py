"""Random-k healing baseline.

When a node is deleted, each surviving neighbour is connected to ``k``
uniformly random other neighbours (without duplicates).  This is the
"unstructured" cousin of Xheal's expander clouds: similar edge budget, but no
guarantee the added edges form an expander, no colour bookkeeping, and no
free-node machinery for later repairs.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId
from repro.util.validation import require


@register_healer("random-k-heal")
class RandomKHeal(SelfHealer):
    """Connect each surviving neighbour to ``k`` random other neighbours."""

    name = "random-k-heal"

    def __init__(self, k: int = 2, seed: int = 0):
        require(k >= 1, f"k must be at least 1, got {k}")
        super().__init__(seed=seed)
        self.k = k

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
        survivors = sorted(node for node in neighbors if node in self._graph)
        if len(survivors) < 2:
            return
        for node in survivors:
            others = [candidate for candidate in survivors if candidate != node]
            picks = self._rng.sample(others, min(self.k, len(others)))
            for target in picks:
                self._add_plain_edge(node, target, report)
