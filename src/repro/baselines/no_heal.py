"""The trivial "do nothing" baseline.

No edges are ever added after a deletion.  The network fragments quickly,
making this the connectivity lower bound every real healer must beat.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId


@register_healer("no-heal")
class NoHeal(SelfHealer):
    """A healer that never heals."""

    name = "no-heal"

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
