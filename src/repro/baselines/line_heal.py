"""Cycle ("line") healing baseline.

When a node is deleted its surviving neighbours are reconnected in a cycle
(in sorted order).  This is the minimal-degree repair mentioned in the paper's
introduction — "If we were trying to give the lowest degrees to the nodes in a
connected graph, they would be connected in a line/cycle giving the maximum
possible diameter" — so it keeps the degree increase at most 2 per deletion
but sacrifices stretch and expansion.
"""

from __future__ import annotations

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.util.ids import NodeId


@register_healer("line-heal", aliases=("cycle-heal",))
class LineHeal(SelfHealer):
    """Reconnect the deleted node's neighbours in a cycle."""

    name = "line-heal"

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        report.note_action(RepairAction.BASELINE)
        survivors = sorted(node for node in neighbors if node in self._graph)
        if len(survivors) < 2:
            return
        if len(survivors) == 2:
            self._add_plain_edge(survivors[0], survivors[1], report)
            return
        for i, node in enumerate(survivors):
            self._add_plain_edge(node, survivors[(i + 1) % len(survivors)], report)
