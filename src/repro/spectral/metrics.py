"""Combined metric snapshots used by the experiment harness.

A :class:`GraphMetrics` snapshot bundles every quantity Theorem 2 talks about
so the harness can record one row per timestep and the report printers can
emit the paper-style comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import networkx as nx

from repro.spectral.cheeger import cheeger_constant
from repro.spectral.expansion import DEFAULT_EXACT_LIMIT, edge_expansion
from repro.spectral.laplacian import algebraic_connectivity, normalized_laplacian_second_eigenvalue
from repro.spectral.stretch import stretch_against_ghost
from repro.util.graphutils import max_degree, min_degree


@dataclass(frozen=True)
class GraphMetrics:
    """All Theorem-2 quantities for one graph (optionally vs. a ghost graph)."""

    nodes: int
    edges: int
    connected: bool
    max_degree: int
    min_degree: int
    edge_expansion: float
    cheeger_constant: float
    algebraic_connectivity: float
    normalized_lambda2: float
    max_stretch: float | None = None
    average_stretch: float | None = None

    def as_dict(self) -> dict:
        """Return a plain-dict view (for recorders and report printers)."""
        return asdict(self)


def snapshot_metrics(
    graph: nx.Graph,
    ghost: nx.Graph | None = None,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    stretch_sample_pairs: int | None = 200,
    seed: int = 0,
) -> GraphMetrics:
    """Compute a :class:`GraphMetrics` snapshot of ``graph``.

    When ``ghost`` is provided and both graphs share at least two nodes,
    stretch statistics against the ghost graph are included.

    This is the stand-alone, uncached path.  Loops that snapshot the same
    graph repeatedly should go through
    :meth:`repro.perf.engine.MetricsEngine.snapshot`, which memoises every
    constituent kernel on the graph's version counter.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return GraphMetrics(
            nodes=n,
            edges=graph.number_of_edges(),
            connected=n == 1,
            max_degree=max_degree(graph),
            min_degree=min_degree(graph),
            edge_expansion=0.0,
            cheeger_constant=0.0,
            algebraic_connectivity=0.0,
            normalized_lambda2=0.0,
        )

    connected = nx.is_connected(graph)
    expansion = edge_expansion(graph, exact_limit=exact_limit, seed=seed)
    conductance = cheeger_constant(graph, exact_limit=exact_limit, seed=seed)
    lambda2 = algebraic_connectivity(graph)
    normalized = normalized_laplacian_second_eigenvalue(graph)

    max_s: float | None = None
    avg_s: float | None = None
    if ghost is not None and len(set(graph.nodes()) & set(ghost.nodes())) >= 2:
        summary = stretch_against_ghost(graph, ghost, sample_pairs=stretch_sample_pairs, seed=seed)
        max_s = summary.max_stretch
        avg_s = summary.average_stretch

    return GraphMetrics(
        nodes=n,
        edges=graph.number_of_edges(),
        connected=connected,
        max_degree=max_degree(graph),
        min_degree=min_degree(graph),
        edge_expansion=expansion,
        cheeger_constant=conductance,
        algebraic_connectivity=lambda2,
        normalized_lambda2=normalized,
        max_stretch=max_s,
        average_stretch=avg_s,
    )


def compare_metrics(healed: GraphMetrics, ghost: GraphMetrics) -> dict[str, float]:
    """Return the healed/ghost ratios Theorem 2 constrains.

    Keys:

    * ``degree_ratio`` — ``max_degree(G_t) / max_degree(G'_t)`` (Theorem 2.1
      bounds the *per-node* ratio; the max-degree ratio is a coarser but
      monotone proxy recorded alongside the per-node checks in
      :mod:`repro.analysis.invariants`).
    * ``expansion_ratio`` — ``h(G_t) / h(G'_t)``.
    * ``lambda_ratio`` — ``lambda(G_t) / lambda(G'_t)``.

    Ratios with a zero denominator are reported as ``inf``.
    """
    def ratio(numerator: float, denominator: float) -> float:
        if denominator == 0:
            return float("inf")
        return numerator / denominator

    return {
        "degree_ratio": ratio(healed.max_degree, ghost.max_degree),
        "expansion_ratio": ratio(healed.edge_expansion, ghost.edge_expansion),
        "lambda_ratio": ratio(healed.algebraic_connectivity, ghost.algebraic_connectivity),
    }
