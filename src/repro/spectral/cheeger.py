"""Cheeger constant (conductance) ``phi(G)`` (Section 1.1, "Cheeger constant").

The paper defines::

    phi(G) = min_S  |E(S, S-bar)| / min(vol(S), vol(S-bar))

where ``vol(S)`` is the sum of degrees of vertices in ``S``.  For k-regular
graphs ``phi = h / k``; for irregular graphs the two can differ dramatically —
the paper's two-cliques example (expansion constant, conductance ``O(1/n)``)
is reproduced in ``benchmarks/bench_cheeger_example.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

import networkx as nx
import numpy as np

from repro.perf.kernels import MAX_EXACT_NODES, exact_minimum_cheeger_cut
from repro.spectral.expansion import crossing_edges_of_cut
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require

#: Kept in lockstep with :data:`repro.spectral.expansion.DEFAULT_EXACT_LIMIT`:
#: the vectorized Gray-code kernel makes 22 nodes affordable.
DEFAULT_EXACT_LIMIT = 22


@dataclass(frozen=True)
class CheegerResult:
    """Result of a conductance minimisation."""

    value: float
    cut: frozenset[NodeId]
    exact: bool


def _volume(graph: nx.Graph, members: set[NodeId]) -> int:
    return sum(degree for node, degree in graph.degree(members))


def cheeger_constant_of_cut(graph: nx.Graph, cut: Iterable[NodeId]) -> float:
    """Return the conductance of the explicit cut ``S = cut``.

    A set/frozenset ``cut`` is used as-is, and only edges incident to ``S``
    are scanned — O(vol(S)), not the O(m) full rescan of the original.
    """
    members = cut if isinstance(cut, (set, frozenset)) else set(cut)
    require(bool(members), "cut must be non-empty")
    require(len(members) < graph.number_of_nodes(), "cut must be a strict subset of V")
    crossing = crossing_edges_of_cut(graph, members)
    vol_s = _volume(graph, members)
    vol_rest = 2 * graph.number_of_edges() - vol_s
    denominator = min(vol_s, vol_rest)
    if denominator == 0:
        return 0.0
    return crossing / denominator


def _exact_cheeger(graph: nx.Graph) -> CheegerResult:
    """Exact minimum conductance cut via the vectorized Gray-code kernel."""
    value, cut = exact_minimum_cheeger_cut(graph)
    return CheegerResult(value, cut, exact=True)


def exact_cheeger_reference(graph: nx.Graph) -> CheegerResult:
    """Brute-force conductance minimisation, kept as equivalence-test ground truth."""
    nodes = list(graph.nodes())
    n = len(nodes)
    best_value = float("inf")
    best_cut: frozenset[NodeId] = frozenset()
    # Conductance only needs subsets up to half the *volume*; enumerating all
    # subsets of size <= n-1 and letting the min(vol, vol-bar) handle symmetry
    # is simplest; restrict to size <= n/2 by symmetry of the definition.
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            value = cheeger_constant_of_cut(graph, subset)
            if value < best_value:
                best_value = value
                best_cut = frozenset(subset)
                if best_value == 0.0:
                    return CheegerResult(0.0, best_cut, exact=True)
    return CheegerResult(best_value, best_cut, exact=True)


def conductance_sweep(graph: nx.Graph) -> CheegerResult:
    """Return the best conductance cut found by the Fiedler sweep heuristic.

    This is the standard spectral-partitioning sweep: order the vertices by
    the Fiedler vector of the *normalized* Laplacian and take the best prefix.
    The returned value is an upper bound on ``phi(G)``; by Cheeger's
    inequality it is within a quadratic factor of optimal.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    require(n >= 2, "conductance needs at least 2 nodes")
    if graph.number_of_edges() == 0 or not nx.is_connected(graph):
        # Any single component (or isolated vertex) is a zero-conductance cut.
        components = list(nx.connected_components(graph))
        smallest = min(components, key=lambda c: _volume(graph, set(c)))
        if len(smallest) == n:
            smallest = {next(iter(smallest))}
        return CheegerResult(0.0, frozenset(smallest), exact=False)
    try:
        fiedler = nx.fiedler_vector(graph, method="tracemin_lu", normalized=True)
    except (nx.NetworkXError, np.linalg.LinAlgError):
        fiedler = None
    if fiedler is None:
        order = nodes
    else:
        order = [node for _, node in sorted(zip(fiedler, nodes), key=lambda pair: pair[0])]
    best_value = float("inf")
    best_cut: frozenset[NodeId] = frozenset()
    for size in range(1, n):
        prefix = order[:size]
        value = cheeger_constant_of_cut(graph, prefix)
        if value < best_value:
            best_value = value
            best_cut = frozenset(prefix)
    return CheegerResult(best_value, best_cut, exact=False)


def cheeger_constant(
    graph: nx.Graph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    samples: int = 64,
    seed: int = 0,
) -> float:
    """Return ``phi(G)`` — exact for small graphs, sweep+sampled bound otherwise."""
    n = graph.number_of_nodes()
    require(n >= 2, "conductance needs at least 2 nodes")
    if not nx.is_connected(graph):
        return 0.0
    if n <= exact_limit:
        if n <= MAX_EXACT_NODES:
            return _exact_cheeger(graph).value
        # Exactness beyond the vectorized kernel's cap: brute force, not error.
        return exact_cheeger_reference(graph).value
    best = conductance_sweep(graph).value
    rng = SeededRng(seed)
    nodes = list(graph.nodes())
    for _ in range(samples):
        size = rng.randint(1, max(1, n // 2))
        cut = rng.sample(nodes, size)
        best = min(best, cheeger_constant_of_cut(graph, cut))
    # Singleton cuts are cheap and often tight on irregular graphs.
    for node in nodes:
        best = min(best, cheeger_constant_of_cut(graph, [node]))
    return best


def cheeger_bounds_from_lambda(lambda_normalized: float) -> tuple[float, float]:
    """Return ``(lower, upper)`` bounds on ``phi`` from Theorem 1 of the paper.

    The paper states the Cheeger inequality as ``2 phi >= lambda > phi^2 / 2``,
    i.e. ``lambda / 2 <= phi <= sqrt(2 lambda)`` where ``lambda`` is the second
    smallest eigenvalue of the normalized Laplacian.
    """
    require(lambda_normalized >= 0, "lambda must be non-negative")
    lower = lambda_normalized / 2.0
    upper = float(np.sqrt(2.0 * lambda_normalized))
    return (lower, upper)
