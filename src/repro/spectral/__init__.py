"""Spectral and expansion metrics (Section 1.1 of the paper).

This subpackage implements every graph quantity the paper's theorems bound:

* **edge expansion** ``h(G) = min_{|S| <= n/2} |E(S, S-bar)| / |S|``
* **Cheeger constant / conductance**
  ``phi(G) = min_S |E(S, S-bar)| / min(vol(S), vol(S-bar))``
* **algebraic connectivity** ``lambda_2`` — second-smallest eigenvalue of the
  Laplacian, related to the Cheeger constant through the Cheeger inequality
  ``2 phi >= lambda_2 > phi^2 / 2`` (Theorem 1 of the paper)
* **stretch** — the pairwise-distance ratio between the healed graph ``G_t``
  and the insertions-only ghost graph ``G'_t``
* **mixing time** estimates from the spectral gap of the lazy random walk.

Exact cut quantities are exponential to compute; the implementations provide
exact brute-force evaluation for small graphs and certified bounds /
sampled approximations for larger ones, as documented per function.
"""

from repro.spectral.expansion import (
    crossing_edges_of_cut,
    edge_expansion,
    edge_expansion_bounds,
    edge_expansion_of_cut,
    exact_minimum_cut_reference,
    minimum_expansion_cut,
)
from repro.spectral.cheeger import (
    cheeger_bounds_from_lambda,
    cheeger_constant,
    cheeger_constant_of_cut,
    conductance_sweep,
    exact_cheeger_reference,
)
from repro.spectral.laplacian import (
    algebraic_connectivity,
    algebraic_connectivity_reference,
    laplacian_matrix,
    laplacian_spectrum,
    normalized_lambda2_reference,
    normalized_laplacian_second_eigenvalue,
    spectral_gap,
    theorem2_lambda_lower_bound,
)
from repro.spectral.stretch import (
    average_stretch,
    max_stretch,
    pairwise_stretch,
    pairwise_stretch_reference,
    stretch_against_ghost,
    stretch_against_ghost_reference,
)
from repro.spectral.mixing import (
    lazy_walk_matrix,
    mixing_time_bound_from_lambda,
    spectral_mixing_time,
)
from repro.spectral.metrics import GraphMetrics, compare_metrics, snapshot_metrics

__all__ = [
    "crossing_edges_of_cut",
    "edge_expansion",
    "edge_expansion_bounds",
    "edge_expansion_of_cut",
    "exact_minimum_cut_reference",
    "minimum_expansion_cut",
    "cheeger_bounds_from_lambda",
    "cheeger_constant",
    "cheeger_constant_of_cut",
    "conductance_sweep",
    "exact_cheeger_reference",
    "algebraic_connectivity",
    "algebraic_connectivity_reference",
    "laplacian_matrix",
    "laplacian_spectrum",
    "normalized_lambda2_reference",
    "normalized_laplacian_second_eigenvalue",
    "spectral_gap",
    "theorem2_lambda_lower_bound",
    "average_stretch",
    "max_stretch",
    "pairwise_stretch",
    "pairwise_stretch_reference",
    "stretch_against_ghost",
    "stretch_against_ghost_reference",
    "lazy_walk_matrix",
    "mixing_time_bound_from_lambda",
    "spectral_mixing_time",
    "GraphMetrics",
    "compare_metrics",
    "snapshot_metrics",
]
