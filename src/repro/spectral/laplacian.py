"""Laplacian spectrum and the algebraic connectivity ``lambda_2`` (Section 4.2).

The paper's Theorem 2(4) lower-bounds the second-smallest eigenvalue of the
(combinatorial) Laplacian of the healed graph ``G_t`` in terms of the ghost
graph ``G'_t``::

    lambda(G_t) >= min( Omega( lambda(G'_t)^2 d_min(G'_t) / (kappa^2 d_max(G'_t)^2) ),
                        Omega( 1 / (kappa d_max(G'_t))^2 ) )

:func:`theorem2_lambda_lower_bound` evaluates the explicit constants used in
the proof (via Cheeger's inequality and the degree inequality h/d_max <= phi
<= h/d_min) so the benchmark can compare measured ``lambda(G_t)`` against the
concrete bound rather than an opaque Omega().
"""

from __future__ import annotations

import warnings

import networkx as nx
import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.util.validation import require


def laplacian_matrix(graph: nx.Graph) -> np.ndarray:
    """Return the dense combinatorial Laplacian ``L = D - A`` of ``graph``."""
    require(graph.number_of_nodes() >= 1, "graph must be non-empty")
    return nx.laplacian_matrix(graph).toarray().astype(float)


def laplacian_spectrum(graph: nx.Graph) -> np.ndarray:
    """Return the sorted eigenvalues of the combinatorial Laplacian."""
    matrix = laplacian_matrix(graph)
    eigenvalues = np.linalg.eigvalsh(matrix)
    return np.sort(eigenvalues)


def _second_smallest_pair(
    matrix,
    n: int,
    v0: np.ndarray | None,
    want_vector: bool,
    nullspace: np.ndarray | None = None,
) -> tuple[float, np.ndarray | None]:
    """Return ``(lambda_2, fiedler_vector?)`` of a sparse PSD Laplacian.

    Solver cascade, fastest first:

    1. **LOBPCG** with the known null vector deflated via the ``Y`` constraint
       (``1`` for the combinatorial Laplacian, ``D^{1/2} 1`` for the
       normalized one) and the block warm-started from ``v0`` (the previous
       snapshot's Fiedler vector) when available.  The result is accepted
       only if its residual ``||L x - lambda x||`` verifies it.
    2. **ARPACK shift-invert** at ``sigma = -0.01``.  The shift sits slightly
       *below* zero because a Laplacian is singular (lambda_1 is exactly 0):
       factorizing at ``sigma=0`` hands ARPACK a numerically garbage operator
       — warm starts made that visible.  ``L + 0.01 I`` is positive definite
       and the eigenvalues nearest the shift are still {0, lambda_2}.
    3. **Dense** ``eigh`` as the last resort.
    """
    if nullspace is not None:
        operator = scipy.sparse.csr_matrix(matrix)
        if v0 is not None:
            start = v0.reshape(-1, 1).astype(float)
        else:
            # Deterministic start: any fixed vector not parallel to the null
            # space works; LOBPCG orthogonalises against Y internally.
            start = np.cos(np.arange(n, dtype=float)).reshape(-1, 1)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                values, vectors = scipy.sparse.linalg.lobpcg(
                    operator,
                    start,
                    Y=nullspace.reshape(-1, 1).astype(float),
                    largest=False,
                    tol=1e-9,
                    maxiter=200,
                )
            value = float(values[0])
            vector = vectors[:, 0]
            residual = float(np.linalg.norm(operator @ vector - value * vector))
            if np.isfinite(value) and residual <= 1e-6 * max(1.0, abs(value)):
                return max(value, 0.0), (vector if want_vector else None)
        except (ValueError, np.linalg.LinAlgError):
            pass
    sigma = -1e-2
    try:
        if want_vector:
            eigenvalues, eigenvectors = scipy.sparse.linalg.eigsh(
                matrix, k=2, sigma=sigma, which="LM", v0=v0
            )
            order = np.argsort(eigenvalues)
            return float(max(eigenvalues[order[1]], 0.0)), eigenvectors[:, order[1]]
        eigenvalues = scipy.sparse.linalg.eigsh(
            matrix, k=2, sigma=sigma, which="LM", v0=v0, return_eigenvectors=False
        )
        return float(max(np.sort(eigenvalues)[-1], 0.0)), None
    except (scipy.sparse.linalg.ArpackNoConvergence, RuntimeError, ValueError):
        dense = matrix.toarray() if scipy.sparse.issparse(matrix) else np.asarray(matrix)
        if want_vector:
            eigenvalues, eigenvectors = np.linalg.eigh(dense)
            return float(max(eigenvalues[1], 0.0)), eigenvectors[:, 1]
        spectrum = np.sort(np.linalg.eigvalsh(dense))
        return float(max(spectrum[1], 0.0)), None


def algebraic_connectivity(
    graph: nx.Graph,
    sparse_threshold: int = 400,
    v0: np.ndarray | None = None,
    return_vector: bool = False,
) -> float | tuple[float, np.ndarray | None]:
    """Return ``lambda_2`` of the combinatorial Laplacian of ``graph``.

    For graphs larger than ``sparse_threshold`` nodes a sparse Lanczos solver
    is used (warm-started from ``v0`` when given, e.g. the previous
    snapshot's Fiedler vector); smaller graphs go through a dense
    eigendecomposition which is both faster for small n and numerically
    exact.  With ``return_vector=True`` the result is ``(lambda_2, vector)``
    where ``vector`` is the Fiedler vector in ``list(graph.nodes())`` order
    (``None`` for disconnected graphs).

    A disconnected graph has ``lambda_2 == 0`` (returned exactly as ``0.0``).
    """
    n = graph.number_of_nodes()
    require(n >= 2, "algebraic connectivity needs at least 2 nodes")
    if not nx.is_connected(graph):
        return (0.0, None) if return_vector else 0.0
    if n <= sparse_threshold:
        if return_vector:
            eigenvalues, eigenvectors = np.linalg.eigh(laplacian_matrix(graph))
            return float(max(eigenvalues[1], 0.0)), eigenvectors[:, 1]
        spectrum = laplacian_spectrum(graph)
        return float(max(spectrum[1], 0.0))
    laplacian = nx.laplacian_matrix(graph).astype(float)
    value, vector = _second_smallest_pair(
        laplacian, n, v0, return_vector, nullspace=np.ones(n)
    )
    return (value, vector) if return_vector else value


def algebraic_connectivity_reference(graph: nx.Graph) -> float:
    """Dense ``lambda_2`` of the combinatorial Laplacian (always O(n^3)).

    Ground truth for the sparse/warm-started path's equivalence tests.
    """
    n = graph.number_of_nodes()
    require(n >= 2, "algebraic connectivity needs at least 2 nodes")
    if not nx.is_connected(graph):
        return 0.0
    spectrum = laplacian_spectrum(graph)
    return float(max(spectrum[1], 0.0))


def normalized_laplacian_second_eigenvalue(
    graph: nx.Graph,
    sparse_threshold: int = 400,
    v0: np.ndarray | None = None,
    return_vector: bool = False,
) -> float | tuple[float, np.ndarray | None]:
    """Return ``lambda_2`` of the *normalized* Laplacian of ``graph``.

    This is the eigenvalue appearing in the Cheeger inequality for
    conductance (Theorem 1 of the paper).  Graphs beyond ``sparse_threshold``
    nodes use the sparse Lanczos path (previously this was always a dense
    full-spectrum solve, O(n^3) even at n=1024); ``v0``/``return_vector``
    behave as in :func:`algebraic_connectivity`.
    """
    n = graph.number_of_nodes()
    require(n >= 2, "normalized spectrum needs at least 2 nodes")
    if not nx.is_connected(graph):
        return (0.0, None) if return_vector else 0.0
    if n <= sparse_threshold:
        if return_vector:
            dense = nx.normalized_laplacian_matrix(graph).toarray().astype(float)
            eigenvalues, eigenvectors = np.linalg.eigh(dense)
            return float(max(eigenvalues[1], 0.0)), eigenvectors[:, 1]
        spectrum = np.sort(nx.normalized_laplacian_spectrum(graph).real)
        return float(max(spectrum[1], 0.0))
    normalized = scipy.sparse.csr_matrix(nx.normalized_laplacian_matrix(graph).astype(float))
    # The normalized Laplacian's null vector is D^{1/2} 1, not 1.
    null_vector = np.sqrt([max(degree, 1) for _, degree in graph.degree()])
    value, vector = _second_smallest_pair(
        normalized, n, v0, return_vector, nullspace=null_vector
    )
    return (value, vector) if return_vector else value


def normalized_lambda2_reference(graph: nx.Graph) -> float:
    """Dense normalized-Laplacian ``lambda_2`` (ground truth for equivalence tests)."""
    n = graph.number_of_nodes()
    require(n >= 2, "normalized spectrum needs at least 2 nodes")
    if not nx.is_connected(graph):
        return 0.0
    spectrum = np.sort(nx.normalized_laplacian_spectrum(graph).real)
    return float(max(spectrum[1], 0.0))


def spectral_gap(graph: nx.Graph) -> float:
    """Return the spectral gap ``1 - mu_2`` of the lazy random-walk matrix.

    ``mu_2`` is the second-largest eigenvalue of ``(I + D^{-1} A) / 2``.  The
    gap is half the normalized-Laplacian ``lambda_2``, so we compute it that
    way for numerical robustness.
    """
    return normalized_laplacian_second_eigenvalue(graph) / 2.0


def theorem2_lambda_lower_bound(
    lambda_ghost: float,
    d_min_ghost: int,
    d_max_ghost: int,
    kappa: int,
) -> float:
    """Evaluate the explicit Theorem 2(4) lower bound on ``lambda(G_t)``.

    Following the proof in Section 4.2 with its explicit constants:

    * Case 1 (``h(G_t) >= h(G'_t)``):
      ``lambda(G_t) >= lambda(G'_t)^2 d_min(G'_t) / (8 kappa^2 d_max(G'_t)^2)``
      — the ``1/8`` and the degree bound ``d_max(G_t) <= kappa d_max(G'_t) + 2 kappa``
      are rolled into the formula.
    * Case 2 (``h(G_t) >= 1``):
      ``lambda(G_t) >= 1 / (2 (kappa d_max(G'_t) + 2 kappa)^2)``.

    The theorem guarantees ``lambda(G_t)`` is at least the *minimum* of the two
    cases, so this function returns that minimum.
    """
    require(kappa >= 1, "kappa must be at least 1")
    require(d_max_ghost >= 1, "d_max_ghost must be at least 1")
    require(d_min_ghost >= 0, "d_min_ghost must be non-negative")
    require(lambda_ghost >= 0, "lambda_ghost must be non-negative")
    d_max_healed = kappa * d_max_ghost + 2 * kappa
    case1 = (lambda_ghost**2) * d_min_ghost / (8.0 * (d_max_healed**2))
    case2 = 1.0 / (2.0 * (d_max_healed**2))
    return min(case1, case2)
