"""Laplacian spectrum and the algebraic connectivity ``lambda_2`` (Section 4.2).

The paper's Theorem 2(4) lower-bounds the second-smallest eigenvalue of the
(combinatorial) Laplacian of the healed graph ``G_t`` in terms of the ghost
graph ``G'_t``::

    lambda(G_t) >= min( Omega( lambda(G'_t)^2 d_min(G'_t) / (kappa^2 d_max(G'_t)^2) ),
                        Omega( 1 / (kappa d_max(G'_t))^2 ) )

:func:`theorem2_lambda_lower_bound` evaluates the explicit constants used in
the proof (via Cheeger's inequality and the degree inequality h/d_max <= phi
<= h/d_min) so the benchmark can compare measured ``lambda(G_t)`` against the
concrete bound rather than an opaque Omega().
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.util.validation import require


def laplacian_matrix(graph: nx.Graph) -> np.ndarray:
    """Return the dense combinatorial Laplacian ``L = D - A`` of ``graph``."""
    require(graph.number_of_nodes() >= 1, "graph must be non-empty")
    return nx.laplacian_matrix(graph).toarray().astype(float)


def laplacian_spectrum(graph: nx.Graph) -> np.ndarray:
    """Return the sorted eigenvalues of the combinatorial Laplacian."""
    matrix = laplacian_matrix(graph)
    eigenvalues = np.linalg.eigvalsh(matrix)
    return np.sort(eigenvalues)


def algebraic_connectivity(graph: nx.Graph, sparse_threshold: int = 400) -> float:
    """Return ``lambda_2`` of the combinatorial Laplacian of ``graph``.

    For graphs larger than ``sparse_threshold`` nodes a sparse Lanczos solver
    is used; smaller graphs go through a dense eigendecomposition which is
    both faster for small n and numerically exact.

    A disconnected graph has ``lambda_2 == 0`` (returned exactly as ``0.0``).
    """
    n = graph.number_of_nodes()
    require(n >= 2, "algebraic connectivity needs at least 2 nodes")
    if not nx.is_connected(graph):
        return 0.0
    if n <= sparse_threshold:
        spectrum = laplacian_spectrum(graph)
        return float(max(spectrum[1], 0.0))
    laplacian = nx.laplacian_matrix(graph).astype(float)
    try:
        eigenvalues = scipy.sparse.linalg.eigsh(
            laplacian, k=2, sigma=0, which="LM", return_eigenvectors=False
        )
        return float(max(np.sort(eigenvalues)[-1], 0.0))
    except (scipy.sparse.linalg.ArpackNoConvergence, RuntimeError):
        spectrum = np.linalg.eigvalsh(laplacian.toarray())
        return float(max(np.sort(spectrum)[1], 0.0))


def normalized_laplacian_second_eigenvalue(graph: nx.Graph) -> float:
    """Return ``lambda_2`` of the *normalized* Laplacian of ``graph``.

    This is the eigenvalue appearing in the Cheeger inequality for
    conductance (Theorem 1 of the paper).
    """
    n = graph.number_of_nodes()
    require(n >= 2, "normalized spectrum needs at least 2 nodes")
    if not nx.is_connected(graph):
        return 0.0
    spectrum = np.sort(nx.normalized_laplacian_spectrum(graph).real)
    return float(max(spectrum[1], 0.0))


def spectral_gap(graph: nx.Graph) -> float:
    """Return the spectral gap ``1 - mu_2`` of the lazy random-walk matrix.

    ``mu_2`` is the second-largest eigenvalue of ``(I + D^{-1} A) / 2``.  The
    gap is half the normalized-Laplacian ``lambda_2``, so we compute it that
    way for numerical robustness.
    """
    return normalized_laplacian_second_eigenvalue(graph) / 2.0


def theorem2_lambda_lower_bound(
    lambda_ghost: float,
    d_min_ghost: int,
    d_max_ghost: int,
    kappa: int,
) -> float:
    """Evaluate the explicit Theorem 2(4) lower bound on ``lambda(G_t)``.

    Following the proof in Section 4.2 with its explicit constants:

    * Case 1 (``h(G_t) >= h(G'_t)``):
      ``lambda(G_t) >= lambda(G'_t)^2 d_min(G'_t) / (8 kappa^2 d_max(G'_t)^2)``
      — the ``1/8`` and the degree bound ``d_max(G_t) <= kappa d_max(G'_t) + 2 kappa``
      are rolled into the formula.
    * Case 2 (``h(G_t) >= 1``):
      ``lambda(G_t) >= 1 / (2 (kappa d_max(G'_t) + 2 kappa)^2)``.

    The theorem guarantees ``lambda(G_t)`` is at least the *minimum* of the two
    cases, so this function returns that minimum.
    """
    require(kappa >= 1, "kappa must be at least 1")
    require(d_max_ghost >= 1, "d_max_ghost must be at least 1")
    require(d_min_ghost >= 0, "d_min_ghost must be non-negative")
    require(lambda_ghost >= 0, "lambda_ghost must be non-negative")
    d_max_healed = kappa * d_max_ghost + 2 * kappa
    case1 = (lambda_ghost**2) * d_min_ghost / (8.0 * (d_max_healed**2))
    case2 = 1.0 / (2.0 * (d_max_healed**2))
    return min(case1, case2)
