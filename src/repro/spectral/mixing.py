"""Mixing-time estimates from the spectral gap.

Section 1.1 of the paper motivates the Cheeger constant through mixing time:
a constant-degree expander mixes in ``O(log n)`` steps while the two-cliques
graph (same edge expansion, conductance ``O(1/n)``) mixes only in polynomial
time.  This module provides the standard spectral estimates used by the
benchmark that reproduces that example.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.util.validation import require


def lazy_walk_matrix(graph: nx.Graph) -> np.ndarray:
    """Return the lazy random-walk matrix ``W = (I + D^{-1} A) / 2``.

    The lazy walk is aperiodic by construction, so its mixing behaviour is
    governed purely by the second-largest eigenvalue.
    """
    require(graph.number_of_nodes() >= 1, "graph must be non-empty")
    nodes = list(graph.nodes())
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    walk = np.zeros((n, n), dtype=float)
    for node in nodes:
        i = index[node]
        degree = graph.degree(node)
        walk[i, i] += 0.5
        if degree == 0:
            walk[i, i] += 0.5
            continue
        for neighbor in graph.neighbors(node):
            walk[i, index[neighbor]] += 0.5 / degree
    return walk


def spectral_mixing_time(graph: nx.Graph, epsilon: float = 0.25) -> float:
    """Return the relaxation-time-based mixing time estimate ``t_mix(epsilon)``.

    Uses the standard bound ``t_mix <= t_rel * ln(1 / (epsilon * pi_min))``
    where ``t_rel = 1 / gap`` and ``gap`` is the absolute spectral gap of the
    lazy walk.  Returns ``inf`` for disconnected graphs.
    """
    require(0 < epsilon < 1, "epsilon must be in (0, 1)")
    n = graph.number_of_nodes()
    require(n >= 2, "mixing time needs at least 2 nodes")
    if not nx.is_connected(graph):
        return float("inf")
    walk = lazy_walk_matrix(graph)
    # The lazy walk is reversible w.r.t. the degree-proportional stationary
    # distribution; symmetrise to get real eigenvalues.
    degrees = np.array([max(graph.degree(node), 1) for node in graph.nodes()], dtype=float)
    d_sqrt = np.sqrt(degrees)
    symmetric = (walk * d_sqrt[:, None]) / d_sqrt[None, :]
    eigenvalues = np.sort(np.linalg.eigvalsh((symmetric + symmetric.T) / 2.0))
    second_largest = eigenvalues[-2]
    gap = 1.0 - second_largest
    if gap <= 0:
        return float("inf")
    total_degree = degrees.sum()
    pi_min = degrees.min() / total_degree
    return (1.0 / gap) * math.log(1.0 / (epsilon * pi_min))


def mixing_time_bound_from_lambda(lambda_normalized: float, n: int, epsilon: float = 0.25) -> float:
    """Return the mixing-time upper bound implied by the normalized ``lambda_2``.

    For the lazy walk, ``gap >= lambda_normalized / 2``; together with
    ``pi_min >= 1 / (2m) >= 1/n^2`` this gives the familiar
    ``t_mix = O(log(n) / lambda)`` shape that the paper's discussion uses.
    """
    require(n >= 2, "n must be at least 2")
    require(0 < epsilon < 1, "epsilon must be in (0, 1)")
    if lambda_normalized <= 0:
        return float("inf")
    gap = lambda_normalized / 2.0
    return (1.0 / gap) * math.log(n * n / epsilon)
