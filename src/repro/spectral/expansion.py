"""Edge expansion ``h(G)`` (Section 1.1, "Edge Expansion").

The paper defines, for an undirected graph ``G = (V, E)`` and ``S`` a subset
of ``V`` with ``|S| <= |V| / 2``::

    h(G) = min_{|S| <= |V|/2}  |E(S, S-bar)| / |S|

Exact computation requires examining exponentially many cuts, so this module
offers three levels of fidelity:

* :func:`edge_expansion` — exact for graphs with at most ``exact_limit``
  nodes (default 22, ~2^21 cuts via the vectorized Gray-code kernel in
  :mod:`repro.perf.kernels`), otherwise falls back to the approximation below.
* :func:`edge_expansion_bounds` — certified lower/upper bounds from the
  spectral sweep cut plus sampled random cuts; always cheap.
* :func:`edge_expansion_of_cut` — the expansion of one explicit cut, used by
  the invariant checkers that track the *same* cut across healing steps.

The pre-vectorization brute force survives as
:func:`exact_minimum_cut_reference`; the equivalence tests pin the fast
kernel to it on every graph family up to 12 nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.perf.kernels import MAX_EXACT_NODES, exact_minimum_expansion_cut
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require

#: Graphs up to this many nodes are solved by exact enumeration by default.
#: The vectorized Gray-code kernel makes 22 nodes (~2^21 cuts) cost roughly
#: what the old per-subset Python rescan paid for 18.
DEFAULT_EXACT_LIMIT = 22


@dataclass(frozen=True)
class ExpansionResult:
    """Result of a minimum-expansion-cut search."""

    value: float
    cut: frozenset[NodeId]
    exact: bool


def edge_expansion_of_cut(graph: nx.Graph, cut: Iterable[NodeId]) -> float:
    """Return ``|E(S, S-bar)| / |S|`` for the explicit cut ``S = cut``.

    A set/frozenset ``cut`` is used as-is (no copy), and only the edges
    incident to ``S`` are examined — O(vol(S)) instead of the O(m) full-graph
    rescan the invariant checkers' per-step loops used to pay.

    Raises
    ------
    ValueError
        If the cut is empty or contains every node of the graph.
    """
    members = cut if isinstance(cut, (set, frozenset)) else set(cut)
    require(bool(members), "cut must be non-empty")
    require(len(members) < graph.number_of_nodes(), "cut must be a strict subset of V")
    return crossing_edges_of_cut(graph, members) / len(members)


def crossing_edges_of_cut(graph: nx.Graph, members: set[NodeId] | frozenset[NodeId]) -> int:
    """Return ``|E(S, S-bar)|`` scanning only edges incident to ``S``.

    ``graph.edges(members)`` yields each incident edge once, member endpoint
    first, so internal edges are skipped by the membership test on the second
    endpoint alone.
    """
    return sum(1 for _, v in graph.edges(members) if v not in members)


def _exact_minimum_cut(graph: nx.Graph) -> ExpansionResult:
    """Exact minimum expansion cut via the vectorized Gray-code kernel."""
    value, cut = exact_minimum_expansion_cut(graph)
    return ExpansionResult(value, cut, exact=True)


def exact_minimum_cut_reference(graph: nx.Graph) -> ExpansionResult:
    """Brute-force minimum expansion cut over all subsets of size <= n/2.

    The pre-vectorization implementation, kept verbatim as the ground truth
    for the fast kernel's equivalence tests — O(2^n * m) Python-level work,
    do not use on graphs beyond ~16 nodes.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    best_value = float("inf")
    best_cut: frozenset[NodeId] = frozenset()
    # Enumerate subsets by size; |S| ranges over 1 .. floor(n/2).
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            members = set(subset)
            crossing = sum(
                1 for u, v in graph.edges() if (u in members) != (v in members)
            )
            value = crossing / size
            if value < best_value:
                best_value = value
                best_cut = frozenset(members)
                if best_value == 0.0:
                    return ExpansionResult(0.0, best_cut, exact=True)
    return ExpansionResult(best_value, best_cut, exact=True)


def _fiedler_sweep_cut(graph: nx.Graph) -> list[frozenset[NodeId]]:
    """Return the candidate sweep cuts ordered by the Fiedler vector.

    The classic spectral-partitioning heuristic: sort vertices by their value
    in the eigenvector associated with ``lambda_2`` and consider every prefix
    of size at most ``n/2`` as a candidate cut.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 3 or graph.number_of_edges() == 0:
        return [frozenset(nodes[: max(1, n // 2)])]
    try:
        fiedler = nx.fiedler_vector(graph, method="tracemin_lu")
    except (nx.NetworkXError, np.linalg.LinAlgError):
        # Disconnected or numerically degenerate graph: fall back to component cut.
        components = list(nx.connected_components(graph))
        if len(components) > 1:
            smallest = min(components, key=len)
            return [frozenset(smallest)]
        return [frozenset(nodes[: max(1, n // 2)])]
    order = [node for _, node in sorted(zip(fiedler, nodes), key=lambda pair: pair[0])]
    cuts = []
    for size in range(1, n // 2 + 1):
        cuts.append(frozenset(order[:size]))
    return cuts


def _sampled_cuts(graph: nx.Graph, rng: SeededRng, samples: int) -> list[frozenset[NodeId]]:
    """Return random candidate cuts (uniform sizes, uniform membership)."""
    nodes = list(graph.nodes())
    n = len(nodes)
    cuts = []
    for _ in range(samples):
        size = rng.randint(1, max(1, n // 2))
        cuts.append(frozenset(rng.sample(nodes, size)))
    return cuts


def minimum_expansion_cut(
    graph: nx.Graph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    samples: int = 64,
    seed: int = 0,
) -> ExpansionResult:
    """Return the (approximate) minimum expansion cut of ``graph``.

    For graphs with at most ``exact_limit`` nodes the result is exact.  For
    larger graphs the returned value is an *upper bound* on ``h(G)`` obtained
    from the best of the Fiedler sweep cuts, singleton cuts and ``samples``
    random cuts (``exact`` is ``False`` in that case).
    """
    n = graph.number_of_nodes()
    require(n >= 2, "edge expansion needs at least 2 nodes")
    if n <= exact_limit:
        if n <= MAX_EXACT_NODES:
            return _exact_minimum_cut(graph)
        # Caller explicitly asked for exactness beyond the vectorized kernel's
        # cap: honour it with the (very slow) brute force rather than raising.
        return exact_minimum_cut_reference(graph)

    candidates: list[frozenset[NodeId]] = []
    candidates.extend(_fiedler_sweep_cut(graph))
    # Singleton cuts catch pendant / low-degree vertices exactly.
    candidates.extend(frozenset([node]) for node in graph.nodes())
    candidates.extend(_sampled_cuts(graph, SeededRng(seed), samples))

    best_value = float("inf")
    best_cut: frozenset[NodeId] = frozenset()
    for cut in candidates:
        if not cut or len(cut) > n // 2:
            continue
        value = edge_expansion_of_cut(graph, cut)
        if value < best_value:
            best_value = value
            best_cut = cut
    return ExpansionResult(best_value, best_cut, exact=False)


def edge_expansion(
    graph: nx.Graph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    samples: int = 64,
    seed: int = 0,
) -> float:
    """Return ``h(G)`` (exact for small graphs, best-found upper bound otherwise).

    A disconnected graph has expansion ``0``.  A single-node or empty graph
    raises :class:`repro.util.validation.ValidationError`.
    """
    if graph.number_of_nodes() >= 2 and not nx.is_connected(graph):
        return 0.0
    return minimum_expansion_cut(graph, exact_limit=exact_limit, samples=samples, seed=seed).value


def edge_expansion_bounds(graph: nx.Graph, samples: int = 64, seed: int = 0) -> tuple[float, float]:
    """Return certified ``(lower, upper)`` bounds on ``h(G)`` without enumeration.

    * The upper bound is the best cut found by the spectral sweep + sampling
      (identical to the large-graph path of :func:`edge_expansion`).
    * The lower bound comes from the Cheeger inequality applied to the
      normalized Laplacian: ``h(G) >= d_min * lambda_2(normalized) / 2``.
      (For the empty or disconnected graph both bounds are 0.)
    """
    n = graph.number_of_nodes()
    if n < 2 or not nx.is_connected(graph):
        return (0.0, 0.0)
    upper = minimum_expansion_cut(graph, exact_limit=0, samples=samples, seed=seed).value
    degrees = [degree for _, degree in graph.degree()]
    d_min = min(degrees)
    try:
        lambda_norm = sorted(nx.normalized_laplacian_spectrum(graph))[1].real
    except (np.linalg.LinAlgError, nx.NetworkXError):
        lambda_norm = 0.0
    # phi >= lambda_norm / 2 and h >= d_min * phi.
    lower = max(0.0, d_min * lambda_norm / 2.0)
    # Numerical noise can push the spectral lower bound a hair above the
    # combinatorial upper bound; clamp to keep the interval well-formed.
    lower = min(lower, upper)
    return (lower, upper)
