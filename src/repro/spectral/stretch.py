"""Network stretch (success metric 3 of the model, Figure 1).

Stretch compares distances in the healed graph ``G_t`` against the
insertions-only ghost graph ``G'_t``::

    stretch = max_{x, y in G_t}  dist(x, y, G_t) / dist(x, y, G'_t)

Only node pairs present in *both* graphs (i.e. surviving, non-deleted nodes)
are compared, and pairs disconnected in the ghost graph are skipped: the
ghost graph can be disconnected even when the healed graph is connected
(healing edges do not exist in ``G'_t``), and the paper's guarantee is only
about pairs whose ghost distance is finite.

Performance: the pairs are sampled *first* and BFS runs only from the sampled
sources (one ``nx.single_source_shortest_path_length`` per distinct source in
each graph), so a sampled measurement costs O(k * (n + m)) instead of the
all-pairs O(n * (n + m)) the original implementation paid before discarding
most of the distances.  The original all-pairs formulation is kept as
:func:`stretch_against_ghost_reference`; the equivalence tests assert the two
produce bit-identical summaries under a fixed seed.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require


@dataclass(frozen=True)
class StretchSummary:
    """Aggregate stretch statistics for a (healed, ghost) graph pair."""

    max_stretch: float
    average_stretch: float
    pairs_compared: int
    pairs_skipped_disconnected: int

    @property
    def log_n_ratio(self) -> float:
        """``max_stretch / log2(n)`` — the quantity Theorem 2(2) bounds by O(1).

        Returns ``inf`` when fewer than 2 nodes were compared.
        """
        if self.pairs_compared == 0:
            return float("inf")
        return self.max_stretch / max(1.0, math.log2(max(2, self.pairs_compared)))


def _distances_from_sources(
    graph: nx.Graph, sources: Iterable[NodeId]
) -> dict[NodeId, dict[NodeId, int]]:
    """Run one BFS per distinct source present in ``graph``."""
    distances: dict[NodeId, dict[NodeId, int]] = {}
    for source in sources:
        if source in distances or source not in graph:
            continue
        distances[source] = nx.single_source_shortest_path_length(graph, source)
    return distances


def pairwise_stretch(
    healed: nx.Graph,
    ghost: nx.Graph,
    pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
) -> dict[tuple[NodeId, NodeId], float]:
    """Return the stretch of each comparable node pair.

    Parameters
    ----------
    healed:
        The current graph ``G_t`` (after healing).
    ghost:
        The insertions-only graph ``G'_t``.
    pairs:
        Optional explicit pairs to evaluate.  When omitted, all pairs of nodes
        present in both graphs are evaluated.

    Distances come from one BFS per distinct *source* node, so the cost is
    proportional to the number of distinct sources, not to n.  Pairs
    disconnected in the ghost graph are omitted from the result.  Pairs
    disconnected in the healed graph but connected in the ghost graph are
    reported with stretch ``inf`` (a healing failure).
    """
    if pairs is None:
        common = sorted(set(healed.nodes()) & set(ghost.nodes()))
        pairs = [
            (common[i], common[j])
            for i in range(len(common))
            for j in range(i + 1, len(common))
        ]
    else:
        pairs = list(pairs)
    sources = {u for u, _ in pairs}
    healed_dist = _distances_from_sources(healed, sources)
    ghost_dist = _distances_from_sources(ghost, sources)
    result: dict[tuple[NodeId, NodeId], float] = {}
    for u, v in pairs:
        if u not in ghost_dist or v not in ghost_dist[u]:
            continue
        d_ghost = ghost_dist[u][v]
        if d_ghost == 0:
            continue
        d_healed = healed_dist.get(u, {}).get(v)
        if d_healed is None:
            result[(u, v)] = float("inf")
        else:
            result[(u, v)] = d_healed / d_ghost
    return result


def _sample_pair_indices(total: int, k: int, rng: SeededRng) -> list[int]:
    """Sample ``k`` distinct indices of the implicit ``(i < j)`` pair list.

    ``rng.sample`` draws depend only on the population *length*, so sampling
    ``range(total)`` selects exactly the positions the original implementation
    picked when it materialized the full O(n^2) pair list — the sampled pair
    set (and its order) is bit-identical under a fixed seed.
    """
    return rng.sample(range(total), k)


def _unrank_pairs(indices: Iterable[int], common: list[NodeId]) -> list[tuple[NodeId, NodeId]]:
    """Map linear indices back to ``(common[i], common[j])`` pairs, ``i < j``."""
    count = len(common)
    # prefix[i] = number of pairs whose first element precedes common[i].
    prefix = [0] * count
    for i in range(1, count):
        prefix[i] = prefix[i - 1] + (count - i)
    pairs = []
    for index in indices:
        i = bisect_right(prefix, index) - 1
        j = i + 1 + (index - prefix[i])
        pairs.append((common[i], common[j]))
    return pairs


def stretch_against_ghost(
    healed: nx.Graph,
    ghost: nx.Graph,
    sample_pairs: int | None = None,
    seed: int = 0,
) -> StretchSummary:
    """Return aggregate stretch statistics of ``healed`` against ``ghost``.

    ``sample_pairs`` bounds the number of node pairs examined (uniform random
    sample); ``None`` means all pairs.  Sampling happens *before* any
    shortest-path work: only the sampled sources are BFS'd, so the cost is
    O(min(sample_pairs, n) * (n + m)) rather than all-pairs.
    """
    common = sorted(set(healed.nodes()) & set(ghost.nodes()))
    require(len(common) >= 2, "need at least two common nodes to measure stretch")
    total = len(common) * (len(common) - 1) // 2
    if sample_pairs is not None and sample_pairs < total:
        rng = SeededRng(seed)
        indices = _sample_pair_indices(total, sample_pairs, rng)
        pairs = _unrank_pairs(indices, common)
    else:
        pairs = [
            (common[i], common[j])
            for i in range(len(common))
            for j in range(i + 1, len(common))
        ]

    stretches = pairwise_stretch(healed, ghost, pairs)
    return _summarize(stretches, len(pairs))


def _summarize(
    stretches: dict[tuple[NodeId, NodeId], float], pairs_examined: int
) -> StretchSummary:
    skipped = pairs_examined - len(stretches)
    if not stretches:
        return StretchSummary(
            max_stretch=0.0,
            average_stretch=0.0,
            pairs_compared=0,
            pairs_skipped_disconnected=skipped,
        )
    values = list(stretches.values())
    finite = [value for value in values if math.isfinite(value)]
    max_value = max(values)
    avg_value = sum(finite) / len(finite) if finite else float("inf")
    return StretchSummary(
        max_stretch=max_value,
        average_stretch=avg_value,
        pairs_compared=len(stretches),
        pairs_skipped_disconnected=skipped,
    )


def pairwise_stretch_reference(
    healed: nx.Graph,
    ghost: nx.Graph,
    pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
) -> dict[tuple[NodeId, NodeId], float]:
    """The original all-pairs formulation of :func:`pairwise_stretch`.

    Materializes ``nx.all_pairs_shortest_path_length`` for *both* graphs even
    when only a handful of pairs is needed — kept solely as ground truth for
    the equivalence tests.
    """
    common = sorted(set(healed.nodes()) & set(ghost.nodes()))
    if pairs is None:
        pairs = [
            (common[i], common[j])
            for i in range(len(common))
            for j in range(i + 1, len(common))
        ]
    healed_dist = dict(nx.all_pairs_shortest_path_length(healed))
    ghost_dist = dict(nx.all_pairs_shortest_path_length(ghost))
    result: dict[tuple[NodeId, NodeId], float] = {}
    for u, v in pairs:
        if u not in ghost_dist or v not in ghost_dist.get(u, {}):
            continue
        d_ghost = ghost_dist[u][v]
        if d_ghost == 0:
            continue
        d_healed = healed_dist.get(u, {}).get(v)
        if d_healed is None:
            result[(u, v)] = float("inf")
        else:
            result[(u, v)] = d_healed / d_ghost
    return result


def stretch_against_ghost_reference(
    healed: nx.Graph,
    ghost: nx.Graph,
    sample_pairs: int | None = None,
    seed: int = 0,
) -> StretchSummary:
    """The original (all-pairs + materialized pair list) stretch measurement.

    Kept as ground truth: under a fixed seed it samples exactly the same pairs
    as :func:`stretch_against_ghost` and must return an identical summary.
    """
    common = sorted(set(healed.nodes()) & set(ghost.nodes()))
    require(len(common) >= 2, "need at least two common nodes to measure stretch")
    all_pairs = [
        (common[i], common[j])
        for i in range(len(common))
        for j in range(i + 1, len(common))
    ]
    if sample_pairs is not None and sample_pairs < len(all_pairs):
        rng = SeededRng(seed)
        pairs = rng.sample(all_pairs, sample_pairs)
    else:
        pairs = all_pairs
    stretches = pairwise_stretch_reference(healed, ghost, pairs)
    return _summarize(stretches, len(pairs))


def max_stretch(healed: nx.Graph, ghost: nx.Graph, sample_pairs: int | None = None, seed: int = 0) -> float:
    """Return the maximum pairwise stretch (Theorem 2(2)'s left-hand side)."""
    return stretch_against_ghost(healed, ghost, sample_pairs=sample_pairs, seed=seed).max_stretch


def average_stretch(healed: nx.Graph, ghost: nx.Graph, sample_pairs: int | None = None, seed: int = 0) -> float:
    """Return the average pairwise stretch over comparable pairs."""
    return stretch_against_ghost(healed, ghost, sample_pairs=sample_pairs, seed=seed).average_stretch
