"""DistributedXheal: the protocol-level implementation with measured costs.

The healing *decisions* are exactly those of :class:`repro.core.Xheal` (the
LOCAL model allows an elected leader to compute the new expander locally and
unbounded message sizes, so decision-equivalence is faithful to Section 5).
What this class adds is the *realisation* of every repair through explicit
protocol phases executed on a :class:`~repro.distributed.network.SynchronousNetwork`:

* deletion notices to the ex-neighbours of the deleted node,
* leader-election tournaments inside newly formed clouds,
* per-edge cloud-assignment messages from the leader,
* vice-leader state replication,
* free-node queries/replies to cloud leaders,
* incremental H-graph maintenance (cycle splice / reconnect messages) when a
  cloud is repaired rather than rebuilt,
* BFS collection + broadcast when clouds must be merged.

The measured per-deletion round and message counts (Figure 1's success
metrics 4 and 5) feed benchmark E6, which compares them against Lemma 5's
lower bound and Theorem 5's ``O(kappa log n · A(p))`` upper bound.

Unlike the centralized healer, cloud expanders here are maintained
*incrementally* as Law-Siu H-graphs (the paper's construction), so repairing
a cloud after a member deletion costs O(kappa) messages rather than a
rebuild.
"""

from __future__ import annotations

import math

from repro.core.clouds import Cloud
from repro.core.colors import EdgeColor
from repro.core.events import RepairReport
from repro.core.xheal import Xheal, XhealConfig
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import RepairStats, SynchronousNetwork
from repro.expanders.construction import build_clique_edges, hamilton_cycle_count
from repro.scenarios.registry import register_healer
from repro.expanders.hgraph import HGraph
from repro.util.ids import NodeId


@register_healer("distributed-xheal")
class DistributedXheal(Xheal):
    """Xheal with an explicit LOCAL-model protocol simulation and real cost accounting."""

    name = "xheal-distributed"

    def __init__(self, config: XhealConfig | None = None, kappa: int | None = None, seed: int = 0):
        super().__init__(config=config, kappa=kappa, seed=seed)
        self.network = SynchronousNetwork()
        self.repair_history: list[RepairStats] = []
        #: Per-cloud incremental H-graph (only for clouds large enough to use one).
        self._cloud_hgraphs: dict[int, HGraph] = {}
        #: Per-cloud (leader, vice_leader) as known by the protocol layer.
        self._cloud_leaders: dict[int, tuple[NodeId, NodeId | None]] = {}

    # ------------------------------------------------------------------ lifecycle

    def _after_initialize(self) -> None:
        super()._after_initialize()
        self.network = SynchronousNetwork()
        self.repair_history = []
        self._cloud_hgraphs = {}
        self._cloud_leaders = {}
        for node in self._graph.nodes():
            self.network.add_processor(node)
        self._sync_processor_topology()

    def _after_insertion(self, node: NodeId, neighbors: list[NodeId], report: RepairReport) -> None:
        # Insertion requires no healing work; the new processor just appears
        # with its adversary-chosen edges and the neighbourhood tables refresh
        # (the O(1)-round NoN pre-processing of the model).
        self.network.add_processor(node)
        self._sync_processor_topology()

    def handle_deletion(self, node: NodeId) -> RepairReport:
        timestep = self._timestep + 1
        neighbors = sorted(self._graph.neighbors(node)) if node in self._graph else []
        stats = self.network.begin_repair(timestep, node)
        self.network.remove_processor(node)
        # The model informs every ex-neighbour of the deletion (Figure 1).
        if neighbors:
            stats.note_phase("deletion_notice")
            for first in neighbors:
                if first in self.network:
                    for second in self.network.processor(first).neighbors:
                        if second == node and first in self.network:
                            pass
            # One notification message reaches each surviving ex-neighbour.
            survivors = [neighbor for neighbor in neighbors if neighbor in self.network]
            if survivors:
                origin = survivors[0]
                for neighbor in survivors:
                    if neighbor != origin:
                        self.network.post(
                            Message(origin, neighbor, MessageKind.DELETION_NOTICE, {"deleted": node})
                        )
                self.network.run_round()

        report = super().handle_deletion(node)

        self._sync_processor_topology()
        finished = self.network.end_repair()
        self.repair_history.append(finished)
        # Replace the analytical estimates with the measured protocol costs.
        report.messages = finished.messages
        report.rounds = finished.rounds
        return report

    # ------------------------------------------------------------------ protocol phases

    def _phase_leader_election(self, members: list[NodeId]) -> NodeId | None:
        """Elect a leader among ``members`` with a pairwise tournament (O(log m) rounds)."""
        survivors = sorted(node for node in members if node in self.network)
        if not survivors:
            return None
        if len(survivors) == 1:
            return survivors[0]
        stats = self.network._current_stats
        if stats is not None:
            stats.note_phase("leader_election")
        while len(survivors) > 1:
            next_round: list[NodeId] = []
            for i in range(0, len(survivors) - 1, 2):
                first, second = survivors[i], survivors[i + 1]
                self.network.post(Message(first, second, MessageKind.ELECTION_CHALLENGE))
                self.network.post(Message(second, first, MessageKind.ELECTION_ACK))
                winner = first if self._rng.coin() else second
                next_round.append(winner)
            if len(survivors) % 2 == 1:
                next_round.append(survivors[-1])
            self.network.run_round()
            survivors = next_round
        return survivors[0]

    def _phase_install_cloud(self, cloud: Cloud, leader: NodeId | None) -> None:
        """Leader announces itself, informs every edge endpoint, and syncs a vice-leader."""
        members = sorted(node for node in cloud.members if node in self.network)
        if leader is None or leader not in self.network or not members:
            return
        stats = self.network._current_stats
        if stats is not None:
            stats.note_phase(f"install_cloud_{cloud.cloud_id}")
        for member in members:
            if member != leader:
                self.network.post(
                    Message(leader, member, MessageKind.LEADER_ANNOUNCE, {"cloud": cloud.cloud_id})
                )
        self.network.run_round()
        # One assignment message per edge endpoint: O(kappa * |members|) total.
        posted = False
        for u, v in sorted(cloud.edges):
            for endpoint, other in ((u, v), (v, u)):
                if endpoint in self.network and endpoint != leader:
                    self.network.post(
                        Message(
                            leader, endpoint, MessageKind.CLOUD_ASSIGNMENT,
                            {"cloud": cloud.cloud_id, "peer": other},
                        )
                    )
                    posted = True
        vice = next((member for member in members if member != leader), None)
        if vice is not None:
            self.network.post(
                Message(leader, vice, MessageKind.VICE_LEADER_SYNC, {"cloud": cloud.cloud_id})
            )
            posted = True
        if posted:
            self.network.run_round()
        self._cloud_leaders[cloud.cloud_id] = (leader, vice)
        self._update_cloud_views(cloud, leader, vice)

    def _phase_incremental_repair(self, cloud: Cloud, changed_edges: int) -> None:
        """Account the O(kappa) cycle-reconnect messages of an in-place cloud repair."""
        leader, vice = self._cloud_leaders.get(cloud.cloud_id, (None, None))
        members = sorted(node for node in cloud.members if node in self.network)
        if not members:
            return
        stats = self.network._current_stats
        if stats is not None:
            stats.note_phase(f"repair_cloud_{cloud.cloud_id}")
        if leader is None or leader not in self.network:
            # The leader itself was deleted: the vice-leader promotes a new
            # random leader and informs the cloud (O(|C|) messages, O(1) rounds).
            new_leader = self._rng.choice(members)
            announcer = vice if vice is not None and vice in self.network else new_leader
            for member in members:
                if member != announcer:
                    self.network.post(
                        Message(announcer, member, MessageKind.LEADER_ANNOUNCE, {"cloud": cloud.cloud_id})
                    )
            self.network.run_round()
            vice = next((member for member in members if member != new_leader), None)
            leader = new_leader
            self._cloud_leaders[cloud.cloud_id] = (leader, vice)
        posted = False
        pairs = min(changed_edges, 2 * hamilton_cycle_count(self.kappa) * 2)
        for index in range(max(1, pairs)):
            sender = members[index % len(members)]
            receiver = members[(index + 1) % len(members)]
            if sender != receiver:
                self.network.post(
                    Message(sender, receiver, MessageKind.CYCLE_RECONNECT, {"cloud": cloud.cloud_id})
                )
                posted = True
        # The affected members report their new free/non-free status to the leader.
        if leader in self.network:
            reporter = members[0]
            if reporter != leader:
                self.network.post(
                    Message(reporter, leader, MessageKind.FREE_STATUS_UPDATE, {"cloud": cloud.cloud_id})
                )
                posted = True
        if posted:
            self.network.run_round()
        self._update_cloud_views(cloud, leader, vice)

    def _phase_free_node_queries(self, cloud_ids: list[int]) -> None:
        """One query + one reply per involved cloud leader (O(j) messages, O(1) rounds)."""
        stats = self.network._current_stats
        if stats is not None:
            stats.note_phase("free_node_query")
        posted = False
        for cloud_id in cloud_ids:
            leader, _ = self._cloud_leaders.get(cloud_id, (None, None))
            if leader is None or leader not in self.network:
                continue
            requester = None
            if cloud_id in self.registry:
                members = sorted(
                    node for node in self.registry.get(cloud_id).members if node in self.network
                )
                requester = members[0] if members else None
            if requester is None or requester == leader:
                continue
            self.network.post(
                Message(requester, leader, MessageKind.FREE_NODE_QUERY, {"cloud": cloud_id})
            )
            self.network.post(
                Message(leader, requester, MessageKind.FREE_NODE_REPLY, {"cloud": cloud_id})
            )
            posted = True
        if posted:
            self.network.run_round()

    def _phase_merge(self, merged: Cloud, source_sizes: list[int]) -> None:
        """BFS collection + broadcast for a cloud merge (O(log n) rounds, O(kappa·M·log n) msgs)."""
        members = sorted(node for node in merged.members if node in self.network)
        if not members:
            return
        stats = self.network._current_stats
        if stats is not None:
            stats.note_phase(f"merge_{merged.cloud_id}")
        leader = self._phase_leader_election(members)
        if leader is None:
            return
        # BFS over the healed graph restricted to the merged members: token
        # flooding out, address reports converging back.
        member_set = set(members)
        depth = 0
        frontier = {leader}
        visited = {leader}
        while frontier:
            next_frontier: set[NodeId] = set()
            posted = False
            for node in frontier:
                if node not in self._graph:
                    continue
                for neighbor in self._graph.neighbors(node):
                    if neighbor in member_set and neighbor not in visited and neighbor in self.network:
                        self.network.post(
                            Message(node, neighbor, MessageKind.BFS_TOKEN, {"cloud": merged.cloud_id})
                        )
                        self.network.post(
                            Message(neighbor, node, MessageKind.BFS_REPORT, {"cloud": merged.cloud_id})
                        )
                        next_frontier.add(neighbor)
                        posted = True
            visited |= next_frontier
            if posted:
                self.network.run_round()
                depth += 1
            frontier = next_frontier
        self._phase_install_cloud(merged, leader)

    # ------------------------------------------------------------------ decision hooks

    def _desired_cloud_edges(self, cloud: Cloud) -> set[tuple[NodeId, NodeId]]:
        """Incrementally maintained H-graph edges (clique below the kappa threshold)."""
        members = sorted(node for node in cloud.members if node in self._graph)
        if len(members) <= self.kappa + 1 or len(members) < 4:
            self._cloud_hgraphs.pop(cloud.cloud_id, None)
            return build_clique_edges(members)
        hgraph = self._cloud_hgraphs.get(cloud.cloud_id)
        d = hamilton_cycle_count(self.kappa)
        if hgraph is None or hgraph.d != d or len(hgraph) < 3:
            hgraph = HGraph(members, d=d, rng=self._rng.child("hgraph", cloud.cloud_id))
            self._cloud_hgraphs[cloud.cloud_id] = hgraph
            return hgraph.simple_edges()
        current = set(members)
        existing = hgraph.nodes()
        for node in sorted(existing - current):
            if len(hgraph) > 3:
                hgraph.delete(node)
            else:
                hgraph = HGraph(members, d=d, rng=self._rng.child("hgraph", cloud.cloud_id, "rebuild"))
                self._cloud_hgraphs[cloud.cloud_id] = hgraph
                return hgraph.simple_edges()
        for node in sorted(current - hgraph.nodes()):
            hgraph.insert(node)
        return hgraph.simple_edges()

    def _rebuild_cloud_edges(self, cloud: Cloud, report: RepairReport) -> None:
        known_cloud = cloud.cloud_id in self._cloud_leaders
        edges_before = len(cloud.edges)
        super()._rebuild_cloud_edges(cloud, report)
        changed = abs(len(cloud.edges) - edges_before) + 1
        if not known_cloud:
            leader = self._phase_leader_election(sorted(cloud.members))
            self._phase_install_cloud(cloud, leader)
        else:
            self._phase_incremental_repair(cloud, changed_edges=changed)

    def _assign_free_nodes(self, cloud_ids: list[int], report: RepairReport):
        self._phase_free_node_queries(cloud_ids)
        return super()._assign_free_nodes(cloud_ids, report)

    def _merge_primary_clouds(self, cloud_ids: list[int], report: RepairReport) -> Cloud:
        source_sizes = [
            self.registry.get(cloud_id).size() for cloud_id in cloud_ids if cloud_id in self.registry
        ]
        for cloud_id in cloud_ids:
            self._cloud_hgraphs.pop(cloud_id, None)
            self._cloud_leaders.pop(cloud_id, None)
        merged = super()._merge_primary_clouds(cloud_ids, report)
        self._phase_merge(merged, source_sizes)
        return merged

    def _dissolve_cloud(self, cloud: Cloud, report: RepairReport) -> None:
        self._cloud_hgraphs.pop(cloud.cloud_id, None)
        self._cloud_leaders.pop(cloud.cloud_id, None)
        super()._dissolve_cloud(cloud, report)

    # ------------------------------------------------------------------ local-state sync

    def _sync_processor_topology(self) -> None:
        """Refresh neighbour and NoN tables from the healed graph.

        The information content of these tables is exactly what the counted
        protocol messages carried (cloud assignments name the new neighbours);
        the refresh itself is bookkeeping, not extra communication.
        """
        for node in self._graph.nodes():
            if node not in self.network:
                self.network.add_processor(node)
            processor = self.network.processor(node)
            processor.neighbors = set(self._graph.neighbors(node))
        for node in self._graph.nodes():
            processor = self.network.processor(node)
            processor.non_table = {
                neighbor: set(self._graph.neighbors(neighbor))
                for neighbor in processor.neighbors
            }

    def _update_cloud_views(self, cloud: Cloud, leader: NodeId | None, vice: NodeId | None) -> None:
        """Install the cloud's leader/membership knowledge into the processors' views."""
        kind = "primary" if cloud.is_primary else "secondary"
        for member in cloud.members:
            if member not in self.network:
                continue
            view = self.network.processor(member).cloud_view(cloud.cloud_id, kind)
            view.leader = leader
            view.vice_leader = vice
            view.is_leader = member == leader
            view.cloud_edges = {
                other for u, v in cloud.edges for other in (u, v) if member in (u, v) and other != member
            }
            if view.is_leader:
                view.members = set(cloud.members)
                view.free_members = {
                    node for node in cloud.members if self.registry.is_free(node)
                }

    # ------------------------------------------------------------------ measured summaries

    def measured_costs(self) -> list[RepairStats]:
        """Return the per-deletion measured repair statistics."""
        return list(self.repair_history)

    def max_rounds(self) -> int:
        """Return the worst-case rounds over all repairs so far (0 if none)."""
        if not self.repair_history:
            return 0
        return max(stats.rounds for stats in self.repair_history)

    def log_n_round_ratio(self) -> float:
        """Return max rounds divided by log2(n) — the Theorem 5 recovery-time shape."""
        n = max(2, self._graph.number_of_nodes())
        return self.max_rounds() / max(1.0, math.log2(n))
