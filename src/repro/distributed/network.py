"""The synchronous round engine.

Messages queued by processors during a round are delivered at the round
boundary; the engine counts rounds and messages globally and per repair
(:class:`RepairStats`), which is exactly the paper's recovery-time and
communication-complexity metrics (Figure 1, success metrics 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.messages import Message
from repro.distributed.node import Processor
from repro.util.ids import NodeId
from repro.util.validation import require


@dataclass
class RepairStats:
    """Per-repair accounting: how many rounds and messages one deletion cost."""

    timestep: int
    deleted_node: NodeId
    rounds: int = 0
    messages: int = 0
    phases: list[str] = field(default_factory=list)

    def note_phase(self, name: str) -> None:
        """Record that a protocol phase ran during this repair."""
        self.phases.append(name)


class SynchronousNetwork:
    """Holds all processors and advances synchronous communication rounds."""

    def __init__(self) -> None:
        self.processors: dict[NodeId, Processor] = {}
        self.total_rounds = 0
        self.total_messages = 0
        self._current_stats: RepairStats | None = None

    # -- membership -----------------------------------------------------------

    def add_processor(self, node_id: NodeId) -> Processor:
        """Create (or return) the processor for ``node_id``."""
        if node_id not in self.processors:
            self.processors[node_id] = Processor(node_id=node_id)
        return self.processors[node_id]

    def remove_processor(self, node_id: NodeId) -> None:
        """Remove a processor (the adversary deleted the node)."""
        self.processors.pop(node_id, None)

    def processor(self, node_id: NodeId) -> Processor:
        """Return the processor for ``node_id`` (raising if unknown)."""
        require(node_id in self.processors, f"unknown processor {node_id}")
        return self.processors[node_id]

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self.processors

    def __len__(self) -> int:
        return len(self.processors)

    # -- repair-scoped accounting ------------------------------------------------

    def begin_repair(self, timestep: int, deleted_node: NodeId) -> RepairStats:
        """Start accounting a new repair; returns the stats object being filled."""
        self._current_stats = RepairStats(timestep=timestep, deleted_node=deleted_node)
        return self._current_stats

    def end_repair(self) -> RepairStats:
        """Finish accounting the current repair and return its stats."""
        require(self._current_stats is not None, "end_repair() without begin_repair()")
        stats, self._current_stats = self._current_stats, None
        return stats

    # -- message passing ------------------------------------------------------------

    def post(self, message: Message) -> None:
        """Queue ``message`` from its sender (it is delivered at the next round boundary)."""
        sender = self.processor(message.sender)
        sender.send(message)

    def run_round(self) -> int:
        """Deliver all queued messages simultaneously; returns how many were delivered.

        A round is counted even if no messages were queued only when the
        caller asks for it explicitly via :meth:`charge_rounds` — silent
        rounds would otherwise inflate the recovery-time metric.
        """
        deliveries: list[Message] = []
        for processor in self.processors.values():
            if processor.outbox:
                deliveries.extend(processor.outbox)
                processor.outbox = []
        delivered = 0
        for message in deliveries:
            if message.receiver in self.processors:
                self.processors[message.receiver].receive(message)
            delivered += 1
        self.total_messages += delivered
        self.total_rounds += 1
        if self._current_stats is not None:
            self._current_stats.messages += delivered
            self._current_stats.rounds += 1
        return delivered

    def charge_rounds(self, count: int) -> None:
        """Account ``count`` communication-free rounds (e.g. synchronisation waits)."""
        require(count >= 0, "count must be non-negative")
        self.total_rounds += count
        if self._current_stats is not None:
            self._current_stats.rounds += count

    def flush(self, max_rounds: int = 1000) -> int:
        """Run rounds until no messages remain in flight; returns rounds used."""
        used = 0
        while any(processor.outbox for processor in self.processors.values()):
            require(used < max_rounds, "message flood: flush exceeded max_rounds")
            self.run_round()
            used += 1
        return used
