"""Message types exchanged by processors in the simulated LOCAL model.

The LOCAL model allows arbitrarily large messages per edge per round, so a
message here is a small structured object; what the benchmarks count is the
*number* of messages (Theorem 5's communication complexity metric), not their
size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.util.ids import NodeId


class MessageKind(enum.Enum):
    """Protocol message kinds used by the distributed Xheal implementation."""

    #: Sent by the model itself: neighbours learn of an adjacent deletion.
    DELETION_NOTICE = "deletion_notice"
    #: Leader-election tournament: a candidate contacts its current rival.
    ELECTION_CHALLENGE = "election_challenge"
    #: Leader-election tournament: the surviving candidate's acknowledgement.
    ELECTION_ACK = "election_ack"
    #: Winner announcement to all cloud members.
    LEADER_ANNOUNCE = "leader_announce"
    #: Leader informs a node of its expander edges inside a cloud.
    CLOUD_ASSIGNMENT = "cloud_assignment"
    #: Leader designates its vice-leader (state replication).
    VICE_LEADER_SYNC = "vice_leader_sync"
    #: A node asks a cloud leader for a free node.
    FREE_NODE_QUERY = "free_node_query"
    #: The leader's reply to a free-node query.
    FREE_NODE_REPLY = "free_node_reply"
    #: A node informs its cloud leader that it is no longer free.
    FREE_STATUS_UPDATE = "free_status_update"
    #: H-graph DELETE: reconnect predecessor and successor on a cycle.
    CYCLE_RECONNECT = "cycle_reconnect"
    #: H-graph INSERT: splice a node into a cycle next to the receiver.
    CYCLE_SPLICE = "cycle_splice"
    #: BFS construction during a cloud merge.
    BFS_TOKEN = "bfs_token"
    #: BFS convergecast of member addresses back to the merge leader.
    BFS_REPORT = "bfs_report"
    #: Leader broadcast of the merged cloud's structure.
    MERGE_BROADCAST = "merge_broadcast"


@dataclass(frozen=True)
class Message:
    """One message from ``sender`` to ``receiver``.

    ``payload`` carries protocol-specific details (cloud id, edge lists,
    candidate ids); it is never inspected by the accounting layer.
    """

    sender: NodeId
    receiver: NodeId
    kind: MessageKind
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.sender}->{self.receiver}, {self.kind.value})"
