"""Distributed implementation of Xheal in the synchronous LOCAL model (Section 5).

The paper's model (Figure 1) is the synchronous LOCAL message-passing model:
processors communicate with their immediate neighbours in rounds, messages
are never lost, message size is unbounded, and local computation is free.
This subpackage simulates that model in-process:

* :mod:`repro.distributed.messages` — message types exchanged by processors.
* :mod:`repro.distributed.node` — per-processor local state: neighbour lists,
  neighbour-of-neighbour (NoN) addresses, and per-cloud knowledge (leader,
  vice-leader, free-node lists at the leader).
* :mod:`repro.distributed.network` — the synchronous round engine with
  message and round accounting per repair.
* :mod:`repro.distributed.protocol` — :class:`DistributedXheal`, which takes
  the same healing decisions as the centralized :class:`repro.core.Xheal`
  (the LOCAL model allows the elected leader to compute the expander locally)
  while realising every repair through explicit protocol phases — leader
  election tournaments, cloud broadcasts, free-node queries, H-graph
  insert/delete updates, and BFS-based cloud merges — whose messages and
  rounds are measured, not estimated.

Benchmark E6 uses the measured counts to verify Theorem 5's ``O(log n)``
rounds per deletion and ``O(kappa log n · A(p))`` amortised messages.
"""

from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import RepairStats, SynchronousNetwork
from repro.distributed.node import CloudView, Processor
from repro.distributed.protocol import DistributedXheal

__all__ = [
    "Message",
    "MessageKind",
    "RepairStats",
    "SynchronousNetwork",
    "CloudView",
    "Processor",
    "DistributedXheal",
]
