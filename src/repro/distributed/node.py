"""Per-processor local state.

Each node of the network is a processor that starts knowing only its
neighbours (Figure 1) plus, after the O(1)-round pre-processing the paper
allows, the addresses of its neighbours' neighbours (NoN).  During healing it
additionally learns, per expander cloud it belongs to, the cloud's colour,
its leader and vice-leader, and — if it *is* the leader — the full member and
free-node lists (the invariants (a)-(d) of Theorem 5's proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.messages import Message
from repro.util.ids import NodeId


@dataclass
class CloudView:
    """What one processor knows about one cloud it belongs to."""

    cloud_id: int
    kind: str
    leader: NodeId | None = None
    vice_leader: NodeId | None = None
    is_leader: bool = False
    #: Leader-only state: all member addresses (invariant (c) in the paper).
    members: set[NodeId] = field(default_factory=set)
    #: Leader-only state: currently free members of this cloud.
    free_members: set[NodeId] = field(default_factory=set)
    #: This processor's expander edges inside the cloud.
    cloud_edges: set[NodeId] = field(default_factory=set)


@dataclass
class Processor:
    """The local state of one network node."""

    node_id: NodeId
    neighbors: set[NodeId] = field(default_factory=set)
    #: Neighbour-of-neighbour table: neighbour -> that neighbour's neighbours.
    non_table: dict[NodeId, set[NodeId]] = field(default_factory=dict)
    clouds: dict[int, CloudView] = field(default_factory=dict)
    inbox: list[Message] = field(default_factory=list)
    outbox: list[Message] = field(default_factory=list)
    messages_sent: int = 0
    messages_received: int = 0

    def send(self, message: Message) -> None:
        """Queue a message for delivery at the end of the current round."""
        self.outbox.append(message)
        self.messages_sent += 1

    def receive(self, message: Message) -> None:
        """Accept a delivered message into the inbox."""
        self.inbox.append(message)
        self.messages_received += 1

    def drain_inbox(self) -> list[Message]:
        """Return and clear the inbox (processed once per round)."""
        messages, self.inbox = self.inbox, []
        return messages

    # -- cloud views ------------------------------------------------------------

    def cloud_view(self, cloud_id: int, kind: str = "primary") -> CloudView:
        """Return (creating if necessary) this processor's view of a cloud."""
        if cloud_id not in self.clouds:
            self.clouds[cloud_id] = CloudView(cloud_id=cloud_id, kind=kind)
        return self.clouds[cloud_id]

    def forget_cloud(self, cloud_id: int) -> None:
        """Drop all local state about a dissolved cloud."""
        self.clouds.pop(cloud_id, None)

    def known_addresses(self) -> set[NodeId]:
        """Return every address this processor can name (locality check helper).

        A processor may only ever be asked to contact nodes it knows about:
        its neighbours, their neighbours (NoN), leaders of clouds it belongs
        to, and members of clouds it leads.
        """
        known = {self.node_id} | set(self.neighbors)
        for neighbor_set in self.non_table.values():
            known |= neighbor_set
        for view in self.clouds.values():
            known |= {address for address in (view.leader, view.vice_leader) if address is not None}
            known |= view.members
            known |= view.cloud_edges
        return known
