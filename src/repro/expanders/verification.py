"""Empirical verification of the expander guarantee (Theorem 4 of the paper).

Theorem 4 (Friedman; Law-Siu) states that a random n-node 2d-regular H-graph
has edge expansion ``Omega(d)`` with probability at least ``1 - O(n^{-p})``.
The helpers here measure that claim: :func:`check_expander` certifies a single
graph, and :func:`empirical_expansion_profile` estimates the success
probability and the expansion constant over many random constructions —
exactly what benchmark E8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.expanders.hgraph import HGraph
from repro.spectral.expansion import edge_expansion
from repro.spectral.laplacian import algebraic_connectivity, normalized_laplacian_second_eigenvalue
from repro.util.rng import SeededRng
from repro.util.validation import require


@dataclass(frozen=True)
class ExpanderCheck:
    """Verdict on whether a graph meets an expansion threshold."""

    is_expander: bool
    edge_expansion: float
    algebraic_connectivity: float
    normalized_lambda2: float
    threshold: float


def check_expander(graph: nx.Graph, threshold: float = 1.0, exact_limit: int = 18, seed: int = 0) -> ExpanderCheck:
    """Check whether ``graph`` has edge expansion at least ``threshold``.

    The expansion value is exact for graphs of at most ``exact_limit`` nodes
    and a best-found upper bound above that, so ``is_expander == False`` on a
    large graph means "a cut below the threshold was found" (a sound
    refutation), while ``is_expander == True`` means "no such cut was found".
    """
    require(threshold >= 0, "threshold must be non-negative")
    if graph.number_of_nodes() < 2:
        return ExpanderCheck(False, 0.0, 0.0, 0.0, threshold)
    expansion = edge_expansion(graph, exact_limit=exact_limit, seed=seed)
    lambda2 = algebraic_connectivity(graph)
    normalized = normalized_laplacian_second_eigenvalue(graph)
    return ExpanderCheck(
        is_expander=expansion >= threshold,
        edge_expansion=expansion,
        algebraic_connectivity=lambda2,
        normalized_lambda2=normalized,
        threshold=threshold,
    )


@dataclass(frozen=True)
class ExpansionProfile:
    """Aggregate statistics over repeated random H-graph constructions."""

    n: int
    d: int
    trials: int
    threshold: float
    success_fraction: float
    min_expansion: float
    mean_expansion: float
    mean_lambda2: float


def empirical_expansion_profile(
    n: int,
    d: int,
    trials: int = 20,
    threshold: float | None = None,
    base_seed: int = 0,
    exact_limit: int = 16,
) -> ExpansionProfile:
    """Estimate how often a random 2d-regular H-graph on ``n`` nodes is an expander.

    Parameters
    ----------
    threshold:
        Expansion threshold counted as "success".  Defaults to ``d / 2``,
        a concrete stand-in for the ``Omega(d)`` of Theorem 4.
    """
    require(n >= 3, "n must be at least 3")
    require(trials >= 1, "trials must be at least 1")
    if threshold is None:
        threshold = d / 2.0
    expansions: list[float] = []
    lambdas: list[float] = []
    successes = 0
    for trial in range(trials):
        rng = SeededRng(base_seed).child("hgraph-profile", n, d, trial)
        hgraph = HGraph(range(n), d=d, rng=rng)
        graph = hgraph.to_graph()
        check = check_expander(graph, threshold=threshold, exact_limit=exact_limit, seed=trial)
        expansions.append(check.edge_expansion)
        lambdas.append(check.algebraic_connectivity)
        if check.is_expander:
            successes += 1
    return ExpansionProfile(
        n=n,
        d=d,
        trials=trials,
        threshold=threshold,
        success_fraction=successes / trials,
        min_expansion=min(expansions),
        mean_expansion=sum(expansions) / len(expansions),
        mean_lambda2=sum(lambdas) / len(lambdas),
    )
