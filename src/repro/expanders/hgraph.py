"""Law-Siu H-graphs: unions of Hamilton cycles (Section 5 of the paper).

An *H-graph* is a 2d-regular multigraph whose edge set is the union of d
Hamilton cycles over the same vertex set.  The paper (following Law & Siu,
INFOCOM 2003) uses H-graphs because they support fully incremental
maintenance:

* ``INSERT(u)`` — splice ``u`` into each cycle ``i`` between a uniformly
  random node ``v_i`` and its successor,
* ``DELETE(u)`` — remove ``u`` from every cycle and reconnect its
  predecessor and successor,

and because a *random* H-graph is an expander with edge expansion
``Omega(d)`` with probability ``1 - O(n^{-p})`` (Theorem 4).  Theorem 3 states
the class is closed under these operations: starting from a random H-graph
and applying any sequence of INSERT/DELETE keeps the graph a random H-graph.

The implementation below maintains the d cycles explicitly as successor /
predecessor maps, exactly mirroring the ``nbr(u)_{-i}, nbr(u)_{i}`` labels
the paper describes, and projects the multigraph onto a simple
:class:`networkx.Graph` on demand (the paper notes the simple projection
retains the w.h.p. guarantee for large enough d).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require


class HGraphInvariantError(RuntimeError):
    """Raised when an internal Hamilton-cycle invariant is violated."""


class _HamiltonCycle:
    """A single Hamilton cycle stored as successor/predecessor maps."""

    def __init__(self, nodes: list[NodeId]):
        require(len(nodes) >= 3, "a Hamilton cycle needs at least 3 nodes")
        self.successor: dict[NodeId, NodeId] = {}
        self.predecessor: dict[NodeId, NodeId] = {}
        for i, node in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            self.successor[node] = nxt
            self.predecessor[nxt] = node

    def __len__(self) -> int:
        return len(self.successor)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.successor

    def nodes(self) -> list[NodeId]:
        """Return the cycle's nodes in traversal order starting from an arbitrary node."""
        if not self.successor:
            return []
        start = next(iter(self.successor))
        order = [start]
        current = self.successor[start]
        while current != start:
            order.append(current)
            current = self.successor[current]
        return order

    def insert_after(self, anchor: NodeId, new_node: NodeId) -> None:
        """Splice ``new_node`` between ``anchor`` and ``successor(anchor)``."""
        require(anchor in self.successor, f"anchor {anchor} not in cycle")
        require(new_node not in self.successor, f"node {new_node} already in cycle")
        after = self.successor[anchor]
        self.successor[anchor] = new_node
        self.successor[new_node] = after
        self.predecessor[after] = new_node
        self.predecessor[new_node] = anchor

    def delete(self, node: NodeId) -> None:
        """Remove ``node`` and reconnect its predecessor and successor."""
        require(node in self.successor, f"node {node} not in cycle")
        require(len(self.successor) > 3, "cannot shrink a Hamilton cycle below 3 nodes")
        before = self.predecessor[node]
        after = self.successor[node]
        del self.successor[node]
        del self.predecessor[node]
        self.successor[before] = after
        self.predecessor[after] = before

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Yield the cycle's edges (each once, as ordered pairs along the cycle)."""
        for node, nxt in self.successor.items():
            yield (node, nxt)

    def validate(self) -> None:
        """Check the successor/predecessor maps describe one single cycle."""
        if len(self.successor) != len(self.predecessor):
            raise HGraphInvariantError("successor/predecessor maps have different sizes")
        for node, nxt in self.successor.items():
            if self.predecessor.get(nxt) != node:
                raise HGraphInvariantError(f"predecessor of {nxt} is not {node}")
        visited = self.nodes()
        if len(visited) != len(self.successor):
            raise HGraphInvariantError(
                f"cycle traversal visited {len(visited)} of {len(self.successor)} nodes"
            )


class HGraph:
    """A 2d-regular H-graph: the union of ``d`` Hamilton cycles.

    Parameters
    ----------
    nodes:
        The initial vertex set; at least 3 nodes are required (the paper
        starts the construction at 3 nodes, where the H-graph is unique).
    d:
        The number of Hamilton cycles.  The resulting multigraph is
        ``2d``-regular; the simple projection has degree at most ``2d``.
    rng:
        Seeded randomness source.  Each cycle is an independent uniformly
        random Hamilton cycle, which is exactly the Law-Siu distribution.
    rebuild_at_half_loss:
        When ``True`` (the paper's recommendation at the end of Section 5),
        the structure remembers its size at construction/last rebuild and
        :meth:`should_rebuild` reports when at least half of the nodes have
        been deleted since then, so callers can re-randomise the cycles and
        restore the w.h.p. guarantee degraded by the union bound.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        d: int = 2,
        rng: SeededRng | None = None,
        rebuild_at_half_loss: bool = True,
    ):
        node_list = list(dict.fromkeys(nodes))
        require(d >= 1, "d (number of Hamilton cycles) must be at least 1")
        require(len(node_list) >= 3, "an H-graph needs at least 3 nodes")
        self.d = d
        self._rng = rng if rng is not None else SeededRng(0)
        self.rebuild_at_half_loss = rebuild_at_half_loss
        self._cycles: list[_HamiltonCycle] = []
        self._nodes: set[NodeId] = set(node_list)
        self._build_cycles(node_list)
        self._size_at_last_rebuild = len(node_list)
        self._deletions_since_rebuild = 0

    # -- construction -------------------------------------------------------

    def _build_cycles(self, node_list: list[NodeId]) -> None:
        self._cycles = []
        for _ in range(self.d):
            permutation = self._rng.shuffled_copy(node_list)
            self._cycles.append(_HamiltonCycle(permutation))

    def rebuild(self) -> None:
        """Re-randomise all cycles over the current vertex set.

        Restores the "random H-graph" distribution after many deletions, as
        the paper suggests doing once a cloud has lost half its nodes.
        """
        self._build_cycles(sorted(self._nodes))
        self._size_at_last_rebuild = len(self._nodes)
        self._deletions_since_rebuild = 0

    def should_rebuild(self) -> bool:
        """Return whether the half-loss rebuild policy asks for a rebuild now."""
        if not self.rebuild_at_half_loss:
            return False
        return self._deletions_since_rebuild * 2 >= self._size_at_last_rebuild

    # -- incremental maintenance -------------------------------------------

    def insert(self, node: NodeId) -> None:
        """``INSERT(u)``: splice ``node`` into each cycle at a random position."""
        require(node not in self._nodes, f"node {node} already present")
        for cycle in self._cycles:
            anchor = self._rng.choice(sorted(cycle.successor))
            cycle.insert_after(anchor, node)
        self._nodes.add(node)

    def delete(self, node: NodeId) -> None:
        """``DELETE(u)``: remove ``node`` from every cycle, reconnecting around it.

        The H-graph cannot shrink below 3 nodes; callers (the cloud layer)
        switch to a clique representation below that size.
        """
        require(node in self._nodes, f"node {node} not present")
        require(len(self._nodes) > 3, "an H-graph cannot shrink below 3 nodes")
        for cycle in self._cycles:
            cycle.delete(node)
        self._nodes.remove(node)
        self._deletions_since_rebuild += 1
        if self.should_rebuild():
            self.rebuild()

    # -- views ---------------------------------------------------------------

    def nodes(self) -> set[NodeId]:
        """Return the current vertex set."""
        return set(self._nodes)

    def multigraph_edges(self) -> list[tuple[NodeId, NodeId]]:
        """Return all cycle edges with multiplicity (the 2d-regular multigraph)."""
        edges: list[tuple[NodeId, NodeId]] = []
        for cycle in self._cycles:
            edges.extend(cycle.edges())
        return edges

    def simple_edges(self) -> set[tuple[NodeId, NodeId]]:
        """Return the simple-graph projection of the H-graph's edges.

        Each unordered pair appears once; self-loops (possible only in the
        degenerate 3-node multigraph cases) are dropped.
        """
        edges: set[tuple[NodeId, NodeId]] = set()
        for u, v in self.multigraph_edges():
            if u == v:
                continue
            edges.add((min(u, v), max(u, v)))
        return edges

    def to_graph(self) -> nx.Graph:
        """Return the simple-graph projection as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self.simple_edges())
        return graph

    def neighbor_labels(self, node: NodeId) -> dict[int, tuple[NodeId, NodeId]]:
        """Return ``{cycle_index: (predecessor, successor)}`` for ``node``.

        Mirrors the paper's ``nbr(u)_{-i}, nbr(u)_{i}`` addressing: these are
        exactly the per-cycle links a processor would store locally.
        """
        require(node in self._nodes, f"node {node} not present")
        labels: dict[int, tuple[NodeId, NodeId]] = {}
        for i, cycle in enumerate(self._cycles, start=1):
            labels[i] = (cycle.predecessor[node], cycle.successor[node])
        return labels

    def degree_bound(self) -> int:
        """Return the maximum possible simple degree, ``2 d``."""
        return 2 * self.d

    def validate(self) -> None:
        """Check all internal invariants; raise :class:`HGraphInvariantError` on failure."""
        for cycle in self._cycles:
            cycle.validate()
            if set(cycle.successor) != self._nodes:
                raise HGraphInvariantError("cycle vertex set differs from H-graph vertex set")
        if len(self._cycles) != self.d:
            raise HGraphInvariantError(f"expected {self.d} cycles, found {len(self._cycles)}")

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HGraph(n={len(self._nodes)}, d={self.d})"
