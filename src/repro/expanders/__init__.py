"""Distributed expander construction (Section 5 of the paper).

Xheal builds its primary and secondary clouds out of kappa-regular expanders.
The paper uses the randomized construction of Law and Siu [INFOCOM 2003]:
an *H-graph* is a 2d-regular multigraph formed as the union of d Hamilton
cycles.  A random H-graph is an expander with high probability (Friedman /
Law-Siu, Theorem 4 of the paper), and the class is closed under the simple
incremental ``INSERT`` / ``DELETE`` operations (Theorem 3), which is what
makes the cloud maintenance cheap.

This subpackage provides:

* :class:`~repro.expanders.hgraph.HGraph` — the Hamilton-cycle data structure
  with O(1)-work incremental insert/delete and projection to a simple graph.
* :func:`~repro.expanders.construction.build_expander_edges` — the "make a
  kappa-regular expander or a clique if too few nodes" helper Algorithm 3.2
  (MakeCloud) relies on.
* :mod:`~repro.expanders.verification` — empirical verification helpers for
  the w.h.p. expansion guarantee.
"""

from repro.expanders.hgraph import HGraph, HGraphInvariantError
from repro.expanders.construction import (
    build_clique_edges,
    build_expander_edges,
    expander_or_clique,
)
from repro.expanders.verification import (
    ExpanderCheck,
    check_expander,
    empirical_expansion_profile,
)

__all__ = [
    "HGraph",
    "HGraphInvariantError",
    "build_clique_edges",
    "build_expander_edges",
    "expander_or_clique",
    "ExpanderCheck",
    "check_expander",
    "empirical_expansion_profile",
]
