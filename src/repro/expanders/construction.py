"""Cloud edge-set construction: ``MakeCloud`` (Algorithm 3.2 of the paper).

Algorithm 3.2 is::

    if |V| <= kappa + 1:  make a clique among V
    else:                 make a kappa-regular expander among V

The expander is realised as a Law-Siu H-graph with ``d = ceil(kappa / 2)``
Hamilton cycles, so the (simple) degree of every node inside the cloud is at
most ``kappa`` (rounded up to the next even number when kappa is odd).  The
helpers below return *edge sets* rather than mutating a graph so the cloud
layer can decide which edges are new, which already existed (and must only be
recoloured, never duplicated) and which old edges to retire.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.expanders.hgraph import HGraph
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require


def build_clique_edges(nodes: Iterable[NodeId]) -> set[tuple[NodeId, NodeId]]:
    """Return the edge set of the complete graph over ``nodes``.

    Used when the cloud is too small for a kappa-regular expander (the paper:
    "If the number of neighbors is less than kappa, then a clique is
    constructed among these nodes").  Zero or one node yields no edges.
    """
    unique = sorted(set(nodes))
    edges: set[tuple[NodeId, NodeId]] = set()
    for i in range(len(unique)):
        for j in range(i + 1, len(unique)):
            edges.add((unique[i], unique[j]))
    return edges


def hamilton_cycle_count(kappa: int) -> int:
    """Return the number of Hamilton cycles needed for a degree-``kappa`` H-graph."""
    require(kappa >= 2, "kappa must be at least 2")
    return max(1, math.ceil(kappa / 2))


def build_expander_edges(
    nodes: Sequence[NodeId],
    kappa: int,
    rng: SeededRng,
) -> set[tuple[NodeId, NodeId]]:
    """Return the edge set of a (simple) kappa-regular random expander over ``nodes``.

    The construction is the Law-Siu H-graph with ``ceil(kappa/2)`` Hamilton
    cycles.  Requires at least ``kappa + 2`` nodes; callers below that size
    should use :func:`build_clique_edges` (see :func:`expander_or_clique`).
    """
    unique = sorted(set(nodes))
    require(len(unique) >= 3, "an expander needs at least 3 nodes")
    d = hamilton_cycle_count(kappa)
    hgraph = HGraph(unique, d=d, rng=rng, rebuild_at_half_loss=False)
    return hgraph.simple_edges()


def expander_or_clique(
    nodes: Sequence[NodeId],
    kappa: int,
    rng: SeededRng,
) -> set[tuple[NodeId, NodeId]]:
    """Return ``MakeCloud``'s edge set: clique for small sets, expander otherwise.

    The threshold follows Algorithm 3.2: with ``|V| <= kappa + 1`` nodes a
    clique already has degree at most ``kappa`` and expansion at least 1, so
    the clique is both cheaper and at least as good.
    """
    unique = sorted(set(nodes))
    if len(unique) <= 1:
        return set()
    if len(unique) <= kappa + 1 or len(unique) < 3:
        return build_clique_edges(unique)
    return build_expander_edges(unique, kappa, rng)
