"""Lightweight argument validation helpers.

The public API of the library validates its inputs eagerly and raises
:class:`ValidationError` with an explicit message rather than failing deep
inside a simulation with an obscure networkx error.
"""

from __future__ import annotations


class ValidationError(ValueError):
    """Raised when a public API receives an invalid argument."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}")


def require_in(value, options, name: str) -> None:
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        raise ValidationError(f"{name} must be one of {sorted(options)!r}, got {value!r}")
