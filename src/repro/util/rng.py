"""Seeded randomness helpers.

All randomness in the library flows through :class:`SeededRng` so that every
simulation, adversary and expander construction is reproducible from a single
integer seed.  The adversary in the paper's model is *oblivious* to the random
choices made by the healing algorithm; keeping separate derived streams for
the adversary and the healer (via :func:`derive_seed`) models that cleanly.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across runs and Python versions (it uses SHA-256
    rather than ``hash()``, which is salted per-process).
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRng:
    """A thin, explicit wrapper around :class:`random.Random`.

    The wrapper exists for three reasons: it documents which operations the
    library actually needs, it gives a single place to add statistics or
    logging, and it allows deriving independent child streams.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def child(self, *labels: object) -> "SeededRng":
        """Return an independent stream derived from this one and ``labels``."""
        return SeededRng(derive_seed(self.seed, *labels))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(population, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a new list containing ``items`` in shuffled order."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    def shuffled_copy(self, items: Iterable[T]) -> list[T]:
        """Alias of :meth:`shuffle` accepting any iterable."""
        return self.shuffle(list(items))

    def permutation(self, n: int) -> list[int]:
        """Return a uniformly random permutation of ``range(n)``."""
        return self.shuffle(list(range(n)))

    def coin(self, probability: float = 0.5) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def getstate(self):
        """Expose the underlying generator state (for checkpointing)."""
        return self._random.getstate()

    def setstate(self, state) -> None:
        """Restore a previously captured generator state."""
        self._random.setstate(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed})"
