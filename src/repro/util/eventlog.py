"""Structured event log for simulation runs.

Every insertion, deletion and repair action is appended to an
:class:`EventLog` so that experiments can be replayed, audited and turned into
the figure traces the paper illustrates (Figures 1-6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(enum.Enum):
    """Kinds of events recorded during a simulation."""

    INSERT = "insert"
    DELETE = "delete"
    EDGE_ADDED = "edge_added"
    EDGE_REMOVED = "edge_removed"
    EDGE_RECOLORED = "edge_recolored"
    CLOUD_CREATED = "cloud_created"
    CLOUD_REPAIRED = "cloud_repaired"
    CLOUD_MERGED = "cloud_merged"
    SECONDARY_CREATED = "secondary_created"
    SECONDARY_REPAIRED = "secondary_repaired"
    LEADER_ELECTED = "leader_elected"
    MESSAGE_SENT = "message_sent"
    ROUND_COMPLETED = "round_completed"
    NOTE = "note"


@dataclass(frozen=True)
class Event:
    """A single timestamped event.

    Attributes
    ----------
    timestep:
        The adversarial timestep (t in the paper) during which the event
        happened.  Pre-processing events use timestep ``0``.
    kind:
        The :class:`EventKind` of the event.
    payload:
        Arbitrary JSON-serialisable detail (node ids, cloud colours, counts).
    """

    timestep: int
    kind: EventKind
    payload: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only log of :class:`Event` objects."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, timestep: int, kind: EventKind, **payload: Any) -> Event:
        """Append and return a new event."""
        event = Event(timestep=timestep, kind=kind, payload=dict(payload))
        self._events.append(event)
        return event

    def events(self, kind: EventKind | None = None, timestep: int | None = None) -> list[Event]:
        """Return events optionally filtered by kind and/or timestep."""
        selected = self._events
        if kind is not None:
            selected = [event for event in selected if event.kind is kind]
        if timestep is not None:
            selected = [event for event in selected if event.timestep == timestep]
        return list(selected)

    def count(self, kind: EventKind | None = None) -> int:
        """Return the number of events (of ``kind`` if given)."""
        if kind is None:
            return len(self._events)
        return sum(1 for event in self._events if event.kind is kind)

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]
