"""Shared utilities for the Xheal reproduction.

This subpackage deliberately keeps zero dependencies on the rest of the
library so that every other subpackage can import it freely.
"""

from repro.util.ids import IdAllocator, NodeId
from repro.util.rng import SeededRng, derive_seed
from repro.util.graphutils import (
    connected_components_count,
    copy_graph,
    ensure_simple,
    induced_degree,
    is_simple,
    neighbors_of,
    safe_remove_node,
)
from repro.util.validation import (
    ValidationError,
    require,
    require_non_negative,
    require_positive,
    require_probability,
)
from repro.util.eventlog import Event, EventKind, EventLog

__all__ = [
    "IdAllocator",
    "NodeId",
    "SeededRng",
    "derive_seed",
    "connected_components_count",
    "copy_graph",
    "ensure_simple",
    "induced_degree",
    "is_simple",
    "neighbors_of",
    "safe_remove_node",
    "ValidationError",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "Event",
    "EventKind",
    "EventLog",
]
