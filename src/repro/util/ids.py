"""Node identifier management.

Every node in the simulated network carries a unique integer identifier.  The
paper assumes "every node gets a unique ID whenever it is inserted to the
network" (Section 3) and uses the ID of a deleted node as the colour of the
expander cloud built in its place.  The :class:`IdAllocator` below is the
single source of such identifiers for a simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

NodeId = int
"""Type alias used throughout the library for node identifiers."""


@dataclass
class IdAllocator:
    """Monotonically increasing allocator for :data:`NodeId` values.

    Parameters
    ----------
    next_id:
        The first identifier that will be handed out.  When a simulation is
        seeded with an existing graph the allocator should start above the
        largest identifier already in use (see :meth:`from_existing`).
    """

    next_id: NodeId = 0
    _allocated: set[NodeId] = field(default_factory=set, repr=False)

    @classmethod
    def from_existing(cls, existing: Iterable[NodeId]) -> "IdAllocator":
        """Create an allocator that will never collide with ``existing`` ids."""
        existing = set(existing)
        start = max(existing) + 1 if existing else 0
        allocator = cls(next_id=start)
        allocator._allocated.update(existing)
        return allocator

    def allocate(self) -> NodeId:
        """Return a fresh, never-before-seen identifier."""
        value = self.next_id
        self.next_id += 1
        self._allocated.add(value)
        return value

    def allocate_many(self, count: int) -> list[NodeId]:
        """Return ``count`` fresh identifiers."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.allocate() for _ in range(count)]

    def reserve(self, node_id: NodeId) -> None:
        """Mark ``node_id`` as used (e.g. ids present in an initial graph)."""
        self._allocated.add(node_id)
        if node_id >= self.next_id:
            self.next_id = node_id + 1

    def is_allocated(self, node_id: NodeId) -> bool:
        """Return whether ``node_id`` has ever been handed out or reserved."""
        return node_id in self._allocated

    def __contains__(self, node_id: NodeId) -> bool:
        return self.is_allocated(node_id)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._allocated))

    def __len__(self) -> int:
        return len(self._allocated)
