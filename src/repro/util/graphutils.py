"""Small graph helpers shared across the library.

All graphs in the library are undirected simple :class:`networkx.Graph`
instances whose nodes are :data:`repro.util.ids.NodeId` integers.  Edge
attributes carry healing metadata (colour, cloud membership); these helpers
are agnostic to attributes.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.util.ids import NodeId


def copy_graph(graph: nx.Graph) -> nx.Graph:
    """Return a deep-enough copy of ``graph`` (nodes, edges, attributes)."""
    return graph.copy()


def is_simple(graph: nx.Graph) -> bool:
    """Return whether ``graph`` has no self-loops (nx.Graph cannot hold multi-edges)."""
    return nx.number_of_selfloops(graph) == 0


def ensure_simple(graph: nx.Graph) -> None:
    """Raise :class:`ValueError` if ``graph`` contains self-loops."""
    loops = list(nx.selfloop_edges(graph))
    if loops:
        raise ValueError(f"graph contains {len(loops)} self-loop(s), e.g. {loops[0]}")


def neighbors_of(graph: nx.Graph, node: NodeId) -> list[NodeId]:
    """Return the sorted list of neighbours of ``node``."""
    return sorted(graph.neighbors(node))


def induced_degree(graph: nx.Graph, node: NodeId, subset: Iterable[NodeId]) -> int:
    """Return the number of neighbours of ``node`` inside ``subset``.

    A set/frozenset ``subset`` is used as-is so per-step callers can pass a
    precomputed membership set without paying a rebuild per call.
    """
    members = subset if isinstance(subset, (set, frozenset)) else set(subset)
    return sum(1 for neighbor in graph.neighbors(node) if neighbor in members)


def safe_remove_node(graph: nx.Graph, node: NodeId) -> list[tuple[NodeId, NodeId]]:
    """Remove ``node`` and return the list of edges that were removed with it.

    Returns an empty list when the node is not present (removal is a no-op).
    """
    if node not in graph:
        return []
    removed = [(node, neighbor) for neighbor in graph.neighbors(node)]
    graph.remove_node(node)
    return removed


def connected_components_count(graph: nx.Graph) -> int:
    """Return the number of connected components (0 for the empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return nx.number_connected_components(graph)


def add_edge_if_absent(graph: nx.Graph, u: NodeId, v: NodeId, **attrs) -> bool:
    """Add edge ``(u, v)`` unless it already exists or is a self-loop.

    Returns ``True`` if a new edge was added.  Mirrors the paper's rule that
    Xheal never creates multi-edges: if the expander construction mandates an
    edge that already exists, the existing edge is merely re-used.
    """
    if u == v:
        return False
    if graph.has_edge(u, v):
        return False
    graph.add_edge(u, v, **attrs)
    return True


def degree_map(graph: nx.Graph) -> dict[NodeId, int]:
    """Return ``{node: degree}`` for all nodes of ``graph``."""
    return dict(graph.degree())


def max_degree(graph: nx.Graph) -> int:
    """Return the maximum degree of ``graph`` (0 for the empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree())


def min_degree(graph: nx.Graph) -> int:
    """Return the minimum degree of ``graph`` (0 for the empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return min(degree for _, degree in graph.degree())
