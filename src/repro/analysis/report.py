"""Aggregate reports over streamed sweep directories.

:func:`generate_report` turns a directory of JSONL run artifacts (as written
by ``run_scenarios(..., stream_to=...)`` or ``repro sweep --stream-to``,
plain or gzip-compressed) into

* a markdown report — one per-point summary table, one aggregate table per
  *varying axis* (any dotted spec field that takes more than one value across
  the directory), replicate-group statistics when the directory carries
  ``[rep=N]`` replicate points, and optionally per-point timeline tables,
* ``summary.csv`` — per-point summary rows plus their axis assignment,
* ``replicates.csv`` — per-base-point mean/std/min/max (and, with
  ``ci=True``, a deterministic bootstrap 95% confidence interval) over each
  replicate group, and
* ``timeline.csv`` — every recorded timeline row in long format.

The reader is memory-bounded: artifacts are consumed one line at a time via
:func:`~repro.scenarios.artifacts.iter_artifact` (which sniffs gzip, so
compressed and uncompressed directories report identically), timeline rows
are appended to the CSV as they are read, and only the small per-point
summary rows (plus a compact per-point series for the markdown timeline
section) are retained — a thousand-point sweep directory never gets loaded
into memory at once.

Axes are *inferred*, not configured: the spec line of every artifact is
flattened to dotted keys (``healer_kwargs.kappa``) and any key that varies is
an axis.  This keeps the report honest for hand-assembled directories, not
just ones produced by a single :class:`~repro.scenarios.sweep.SweepSpec`.
(When replicate groups are present, ``seed`` is exempt: per-replicate seeds
are the replication mechanism, not a parameter axis.)

Degraded directories — ones whose ``failures.jsonl`` ledger (or finalized
manifest's ``failed`` section) quarantined points after exhausting their
retries — still report: the available artifacts aggregate normally and a
"Failed points" table lists what is missing, instead of the reader refusing
the whole directory.

:class:`ReportWatcher` / :func:`watch_report` are the live view: they tail a
still-running stream directory's ``index.jsonl`` incrementally — verifying
each new entry with the same artifact-hash machinery resume uses, reading
each artifact exactly once — and rewrite the report on every refresh.  A
watch snapshot equals a one-shot :func:`generate_report` over the same
partial directory, and the final refresh (once ``MANIFEST.json`` lands) is
byte-identical to the one-shot report of the finished sweep.
"""

from __future__ import annotations

import csv
import json
import math
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.scenarios.artifacts import iter_artifact
from repro.scenarios.spec import canonical_fingerprint
from repro.scenarios.stream import (
    FAILURES_NAME,
    MANIFEST_NAME,
    ROUNDS_NAME,
    index_paths,
    is_index_name,
    iter_index_entries,
    read_rounds,
)
from repro.scenarios.sweep import flatten_dotted, split_replicate
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Compact per-point series shown in the markdown timeline section:
#: column header -> extractor over one timeline row.
_TIMELINE_COLUMNS = {
    "step": lambda row: row.get("timestep"),
    "degree_ratio": lambda row: row.get("worst_degree_ratio"),
    "h(healed)": lambda row: row.get("healed", {}).get("edge_expansion"),
    "h(ghost)": lambda row: row.get("ghost", {}).get("edge_expansion"),
    "lambda(healed)": lambda row: row.get("healed", {}).get("algebraic_connectivity"),
}

#: Bootstrap resamples behind the ``ci`` column (seeded, so deterministic).
_CI_RESAMPLES = 200
_CI_ALPHA = 0.05


def scan_artifact_paths(directory: str | Path, allow_empty: bool = False) -> list[Path]:
    """Return the directory's artifact files in canonical point order.

    When the directory carries a ``MANIFEST.json`` (a finalized streamed
    sweep), its entry order — the sweep's submission order — wins; otherwise
    every ``*.jsonl`` / ``*.jsonl.gz`` except the stream index (legacy or
    any ``index-<worker>.jsonl`` shard of it) and the failure/round ledgers
    is taken in sorted-name order.  ``allow_empty=True`` permits a
    directory with no artifacts at all (a degraded sweep whose every point
    was quarantined still deserves a report of its failures).
    """
    directory = Path(directory)
    require(directory.is_dir(), f"not a sweep directory: {directory}")
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        entries = json.loads(manifest.read_text(encoding="utf-8"))["entries"]
        return [directory / entry["artifact"] for entry in entries]
    # Dotted names are the stream writer's crash leftovers (.tmp-*): a
    # killed sweep may leave a partial temp artifact next to the real ones.
    paths = sorted(
        path
        for pattern in ("*.jsonl", "*.jsonl.gz")
        for path in directory.glob(pattern)
        if not is_index_name(path.name)
        and path.name != FAILURES_NAME
        and path.name != ROUNDS_NAME
        and not path.name.startswith(".")
    )
    require(
        bool(paths) or allow_empty,
        f"no run artifacts (*.jsonl / *.jsonl.gz) in {directory}",
    )
    return paths


def read_failed_points(directory: str | Path) -> list[dict]:
    """Return the directory's quarantined points, most authoritative first.

    A finalized directory's ``MANIFEST.json`` ``failed`` section is the
    verdict (it already excludes points that later succeeded); a still-
    running or crashed directory falls back to the ``failures.jsonl``
    ledger, last line per fingerprint winning.  Callers reading artifacts
    should additionally drop entries whose fingerprint they saw succeed.
    """
    directory = Path(directory)
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        return list(json.loads(manifest.read_text(encoding="utf-8")).get("failed", []))
    entries: dict[str, dict] = {}
    for entry in iter_index_entries(directory / FAILURES_NAME):
        fingerprint = entry.get("fingerprint")
        if isinstance(fingerprint, str) and fingerprint:
            entries[fingerprint] = entry
    return sorted(
        entries.values(),
        key=lambda entry: (
            not isinstance(entry.get("index"), int),
            entry.get("index") if isinstance(entry.get("index"), int) else 0,
            str(entry.get("label")),
        ),
    )


def _cell(value) -> str:
    """Render one markdown/CSV cell deterministically."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _markdown_table(rows: list[dict], columns: list[str]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(column)) for column in columns) + " |")
    return "\n".join(lines)


def _sort_key(value):
    """Order mixed-type axis values deterministically (numbers, then text)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value, "")
    return (1, 0, str(value))


@dataclass
class PointSummary:
    """One artifact's contribution to the aggregate report."""

    label: str
    artifact: str
    spec_flat: dict
    summary: dict
    fingerprint: str = ""
    timeline: list = field(default_factory=list)  # compact markdown series
    # Raw timeline rows, kept only by the watcher (collect_rows=True) so
    # each artifact is read once yet timeline.csv can be rewritten on every
    # refresh; one-shot reports stream rows straight to CSV instead.
    raw_timeline: list = field(default_factory=list)
    csv_label: str = ""


@dataclass
class SweepReport:
    """The aggregated view of a sweep directory."""

    directory: Path
    points: list
    axes: dict  # dotted spec key -> sorted distinct values
    markdown: str
    written: list = field(default_factory=list)  # files written by out_dir
    failed: list = field(default_factory=list)  # quarantined-point entries


def _read_point(
    path: Path,
    timeline_writer,
    include_timeline: bool,
    collect_rows: bool = False,
) -> PointSummary:
    """Single-pass read of one artifact (timeline rows streamed straight out)."""
    spec_data: dict | None = None
    summary: dict | None = None
    compact: list[dict] = []
    raw: list[dict] = []
    for kind, data in iter_artifact(path):
        if kind == "spec":
            spec_data = data
        elif kind == "summary":
            summary = data
        elif kind == "timeline":
            if timeline_writer is not None:
                timeline_writer.write_row(_csv_label(path, spec_data), data)
            if collect_rows:
                raw.append(data)
            if include_timeline:
                compact.append(
                    {name: pick(data) for name, pick in _TIMELINE_COLUMNS.items()}
                )
    require(spec_data is not None, f"artifact {path} has no 'spec' line")
    require(summary is not None, f"artifact {path} has no 'summary' line")
    label = spec_data.get("name") or (
        f"{spec_data.get('healer')}@{spec_data.get('topology')}"
        f"/{spec_data.get('adversary')}"
    )
    return PointSummary(
        label=label,
        artifact=path.name,
        spec_flat=flatten_dotted(spec_data),
        summary=dict(summary),
        fingerprint=canonical_fingerprint(spec_data),
        timeline=compact,
        raw_timeline=raw,
        csv_label=_csv_label(path, spec_data),
    )


def _csv_label(artifact: Path, spec_data: dict | None) -> str:
    """The label ``timeline.csv`` rows carry for one artifact."""
    return (spec_data or {}).get("name") or artifact.stem


class _TimelineCsv:
    """Streams timeline rows to ``timeline.csv`` as artifacts are read."""

    def __init__(self, path: Path):
        self._handle = path.open("w", encoding="utf-8", newline="")
        self._writer: csv.DictWriter | None = None
        self.path = path
        self.rows = 0

    def write_row(self, label: str, row: dict) -> None:
        flat = {"label": label, **flatten_dotted(row)}
        if self._writer is None:
            self._writer = csv.DictWriter(self._handle, fieldnames=list(flat))
            self._writer.writeheader()
        self._writer.writerow({key: _cell(flat.get(key)) for key in self._writer.fieldnames})
        self.rows += 1

    def close(self) -> None:
        self._handle.close()


def detect_axes(points: list) -> dict:
    """Return ``dotted spec key -> sorted distinct values`` for varying keys.

    ``name`` always varies (sweep expansion bakes the assignment into it) and
    is never an axis.  A key that only *some* points carry (hand-assembled
    directories mixing kwargs shapes) varies too — the axis table then gets
    an explicit ``(missing)`` group so its point counts still sum to the
    directory total.
    """
    values: dict[str, list] = {}
    for point in points:
        for key, value in point.spec_flat.items():
            bucket = values.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
    return {
        key: sorted(distinct, key=_sort_key)
        for key, distinct in sorted(values.items())
        if key != "name"
        and (
            len(distinct) > 1
            or any(key not in point.spec_flat for point in points)
        )
    }


def _aggregate(points: list) -> dict:
    """Aggregate summary columns over ``points`` (means; bools as ok-counts)."""
    row: dict = {"points": len(points)}
    columns: dict[str, list] = {}
    for point in points:
        for key, value in point.summary.items():
            columns.setdefault(key, []).append(value)
    for key, column in columns.items():
        if all(isinstance(value, bool) for value in column):
            row[f"{key} ok"] = f"{sum(column)}/{len(column)}"
        elif all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in column
        ):
            row[f"{key} mean"] = float(sum(column)) / len(column)
    return row


def _axis_section(key: str, values: list, points: list) -> str:
    """Render the aggregate table for one axis.

    Every point lands in exactly one row: points without the key at all get
    the trailing ``(missing)`` group rather than silently vanishing.
    """
    rows = []
    for value in values:
        group = [
            point
            for point in points
            if key in point.spec_flat and point.spec_flat[key] == value
        ]
        rows.append({key: value, **_aggregate(group)})
    absent = [point for point in points if key not in point.spec_flat]
    if absent:
        rows.append({key: "(missing)", **_aggregate(absent)})
    columns = [key]
    for row in rows:
        columns.extend(column for column in row if column not in columns)
    return f"## Axis: `{key}`\n\n{_markdown_table(rows, columns)}"


# -- replicate aggregation ----------------------------------------------------


def replicate_groups(points: list) -> dict:
    """Return ``base label -> [points]`` for every replicate group of size > 1.

    Membership is the ``[rep=N]`` marker :meth:`SweepSpec.expand` bakes into
    point names (``repro.scenarios.sweep.split_replicate``); unmarked points
    are single-shot and never grouped.
    """
    groups: dict[str, list] = {}
    for point in points:
        base, rep = split_replicate(point.label)
        if rep is not None:
            groups.setdefault(base, []).append(point)
    return {base: members for base, members in groups.items() if len(members) > 1}


def bootstrap_ci(values: list, *seed_labels) -> tuple[float, float]:
    """Deterministic bootstrap 95% CI of the mean of ``values``.

    Seeded from the group/metric labels via :func:`derive_seed` (pure-Python
    ``random.Random``), so goldens and watch/one-shot differentials are
    byte-stable across platforms and runs.  The labels pass through as
    *separate* ``derive_seed`` arguments rather than being joined into one
    string: a joined label made ``("a:b", "c")`` and ``("a", "b:c")``
    collide, so a base point named with a colon could share its resample
    stream with a different (point, metric) pair — identical value columns
    under different labels must draw independent resamples.
    """
    rng = random.Random(derive_seed(0, "report-ci", *seed_labels))
    size = len(values)
    means = sorted(
        sum(rng.choices(values, k=size)) / size for _ in range(_CI_RESAMPLES)
    )
    cut = int(_CI_RESAMPLES * _CI_ALPHA / 2)
    return means[cut], means[_CI_RESAMPLES - 1 - cut]


def _replicate_stats(base: str, members: list, ci: bool) -> list[dict]:
    """Per-metric aggregation rows for one replicate group."""
    columns: dict[str, list] = {}
    for member in members:
        for key, value in member.summary.items():
            columns.setdefault(key, []).append(value)
    rows: list[dict] = []
    for key, column in columns.items():
        if all(isinstance(value, bool) for value in column):
            rows.append({"metric": key, "mean": f"{sum(column)}/{len(column)} ok"})
            continue
        if not all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in column
        ):
            continue
        mean = float(sum(column)) / len(column)
        spread = math.sqrt(
            sum((value - mean) ** 2 for value in column) / (len(column) - 1)
        )
        row = {
            "metric": key,
            "mean": mean,
            "std": spread,
            "min": min(column),
            "max": max(column),
        }
        if ci:
            low, high = bootstrap_ci(list(column), base, key)
            row["ci95"] = f"[{_cell(low)}, {_cell(high)}]"
        rows.append(row)
    return rows


def _replicate_section(groups: dict, ci: bool) -> str:
    """Render the per-base-point replicate statistics section."""
    columns = ["metric", "mean", "std", "min", "max"] + (["ci95"] if ci else [])
    parts = [
        "## Replicates",
        "Per base point, aggregated over its `[rep=N]` replicates"
        + (" (ci95: seeded bootstrap of the mean)." if ci else "."),
    ]
    for base in sorted(groups):
        members = groups[base]
        parts.append(
            f"### {base} ({len(members)} replicates)\n\n"
            + _markdown_table(_replicate_stats(base, members, ci), columns)
        )
    return "\n\n".join(parts)


# -- adaptive schedule --------------------------------------------------------


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _adaptive_section(rounds: list) -> str:
    """Render the per-round decision table replayed from ``rounds.jsonl``.

    The ledger carries no timing data — every cell below is a pure function
    of recorded summary rows — so this section is byte-identical between an
    interrupted-and-resumed adaptive sweep and an uninterrupted one.
    """
    parts = [
        "## Adaptive schedule",
        "Replayed from `rounds.jsonl`; every decision is a pure function of\n"
        "the recorded summary rows (never wall-clock), so resumed runs render\n"
        "this table identically.",
    ]
    mode = rounds[0].get("mode")
    if mode == "halving":
        final = rounds[-1]
        goal = "minimized" if final.get("minimize", True) else "maximized"
        parts.append(
            f"Successive halving over `{final.get('axis')}` by "
            f"`{final.get('objective')}` ({goal})."
        )
        rows = []
        for entry in rounds:
            budget = entry.get("budget", {})
            scores = entry.get("scores", [])
            best = None
            if scores and all(_is_number(score.get("score")) for score in scores):
                sign = 1 if entry.get("minimize", True) else -1
                order = sorted(
                    range(len(scores)),
                    key=lambda i: (sign * scores[i]["score"], i),
                )
                best = scores[order[0]].get("arm")
            rows.append(
                {
                    "round": entry.get("round"),
                    "replicates": budget.get("replicates"),
                    "timesteps": budget.get("timesteps"),
                    "arms": ", ".join(_cell(score.get("arm")) for score in scores),
                    "best": best,
                    "survivors": ", ".join(
                        _cell(arm) for arm in entry.get("survivors", [])
                    ),
                }
            )
        parts.append(
            _markdown_table(
                rows,
                ["round", "replicates", "timesteps", "arms", "best", "survivors"],
            )
        )
    else:
        final = rounds[-1]
        parts.append(
            f"Replicate stopping on `{final.get('metric')}` at target CI "
            f"half-width {_cell(final.get('target_half_width'))}."
        )
        rows = []
        for entry in rounds:
            decisions = entry.get("decisions", [])
            statuses = [decision.get("status") for decision in decisions]
            halves = [
                decision.get("half_width")
                for decision in decisions
                if _is_number(decision.get("half_width"))
            ]
            rows.append(
                {
                    "round": entry.get("round"),
                    "active": len(decisions),
                    "converged": statuses.count("converged"),
                    "exhausted": statuses.count("exhausted"),
                    "continuing": statuses.count("continue"),
                    "max half-width": max(halves) if halves else None,
                }
            )
        parts.append(
            _markdown_table(
                rows,
                ["round", "active", "converged", "exhausted", "continuing", "max half-width"],
            )
        )
    return "\n\n".join(parts)


# -- rendering ----------------------------------------------------------------


def _summary_columns(points: list) -> list[str]:
    columns = ["point"]
    for point in points:
        for key in point.summary:
            if key not in columns:
                columns.append(key)
    return columns


def _failed_section(failed: list) -> str:
    """Render the quarantined-point table for a degraded directory."""
    rows = [
        {
            "point": entry.get("label") or str(entry.get("fingerprint", ""))[:12],
            "attempts": entry.get("attempts"),
            "error": entry.get("error"),
        }
        for entry in failed
    ]
    return (
        "## Failed points\n\n"
        "Quarantined after exhausting retries; their artifacts are absent from\n"
        "the tables above.  Re-offer them with "
        "`repro sweep <spec> --resume <dir> --retry-failed`.\n\n"
        + _markdown_table(rows, ["point", "attempts", "error"])
    )


def _render(
    directory: Path, points: list, include_timeline: bool, ci: bool, failed=(), rounds=()
):
    """Compose the markdown document; return ``(axes, groups, markdown)``.

    ``failed`` is the directory's quarantined-point entries; a failure-free
    directory renders byte-identically to the pre-failure format (no extra
    bullet, no section).  ``rounds`` is the adaptive-round ledger; a
    non-adaptive directory likewise renders exactly as before.
    """
    axes = detect_axes(points)
    groups = replicate_groups(points)
    if groups:
        # Per-replicate derived seeds are the replication mechanism, not a
        # swept parameter — a one-row-per-seed axis table would be noise.
        axes.pop("seed", None)
    summary_columns = _summary_columns(points)
    point_rows = [{"point": point.label, **point.summary} for point in points]
    bullets = [
        f"- points: {len(points)}",
        f"- varying axes: "
        + (", ".join(f"`{key}`" for key in axes) if axes else "(none)"),
    ]
    if failed:
        bullets.append(f"- failed points: {len(failed)}")
    sections = [
        f"# Sweep report: {directory.name}",
        "\n".join(bullets),
        f"## Points\n\n{_markdown_table(point_rows, summary_columns)}",
    ]
    if failed:
        sections.append(_failed_section(list(failed)))
    for key, values in axes.items():
        sections.append(_axis_section(key, values, points))
    if rounds:
        sections.append(_adaptive_section(list(rounds)))
    if groups:
        sections.append(_replicate_section(groups, ci))
    if include_timeline and any(point.timeline for point in points):
        timeline_parts = ["## Timelines"]
        for point in points:
            if point.timeline:
                timeline_parts.append(
                    f"### {point.label}\n\n"
                    + _markdown_table(point.timeline, list(_TIMELINE_COLUMNS))
                )
        sections.append("\n\n".join(timeline_parts))
    return axes, groups, "\n\n".join(sections) + "\n"


def _write_tables(out_dir: Path, points: list, axes: dict, groups: dict, ci: bool, markdown: str):
    """Write ``report.md`` / ``summary.csv`` / ``replicates.csv``; return paths."""
    written: list[Path] = []
    report_path = out_dir / "report.md"
    report_path.write_text(markdown, encoding="utf-8")
    written.append(report_path)

    summary_columns = _summary_columns(points)
    summary_path = out_dir / "summary.csv"
    axis_columns = list(axes)
    with summary_path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        # Axis columns are namespaced (spec.healer, spec.timesteps) so
        # they never collide with summary columns of the same name.
        writer.writerow(
            ["point", *(f"spec.{key}" for key in axis_columns), *summary_columns[1:]]
        )
        for point in points:
            writer.writerow(
                [point.label]
                + [_cell(point.spec_flat.get(key)) for key in axis_columns]
                + [_cell(point.summary.get(key)) for key in summary_columns[1:]]
            )
    written.append(summary_path)

    if groups:
        replicates_path = out_dir / "replicates.csv"
        with replicates_path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            header = ["point", "replicates", "metric", "mean", "std", "min", "max"]
            if ci:
                header += ["ci95"]
            writer.writerow(header)
            for base in sorted(groups):
                members = groups[base]
                for row in _replicate_stats(base, members, ci):
                    line = [base, len(members)] + [
                        _cell(row.get(column))
                        for column in ("metric", "mean", "std", "min", "max")
                    ]
                    if ci:
                        line.append(_cell(row.get("ci95")))
                    writer.writerow(line)
        written.append(replicates_path)
    return written


def generate_report(
    directory: str | Path,
    out_dir: str | Path | None = None,
    include_timeline: bool = True,
    ci: bool = False,
) -> SweepReport:
    """Aggregate a sweep directory into a :class:`SweepReport`.

    When ``out_dir`` is given, ``report.md``, ``summary.csv``,
    ``replicates.csv`` (if the directory has replicate groups) and (if any
    timeline rows exist) ``timeline.csv`` are written there; the markdown is
    always available on the returned report.  ``ci=True`` adds the
    deterministic bootstrap confidence-interval column to the replicate
    aggregation.
    """
    directory = Path(directory)
    failed_all = read_failed_points(directory)
    paths = scan_artifact_paths(directory, allow_empty=bool(failed_all))
    timeline_writer = None
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        timeline_writer = _TimelineCsv(out_dir / "timeline.csv")
    try:
        points = [_read_point(path, timeline_writer, include_timeline) for path in paths]
    finally:
        if timeline_writer is not None:
            timeline_writer.close()
    # A point that failed on one attempt but later succeeded has an artifact;
    # its ledger lines are history, not a verdict.
    succeeded = {point.fingerprint for point in points}
    failed = [entry for entry in failed_all if entry.get("fingerprint") not in succeeded]
    axes, groups, markdown = _render(
        directory, points, include_timeline, ci, failed, read_rounds(directory)
    )

    written: list[Path] = []
    if out_dir is not None:
        written = _write_tables(out_dir, points, axes, groups, ci, markdown)
        if timeline_writer.rows:
            written.append(timeline_writer.path)
        else:
            timeline_writer.path.unlink()
    return SweepReport(
        directory=directory,
        points=points,
        axes=axes,
        markdown=markdown,
        written=written,
        failed=failed,
    )


# -- live watch ---------------------------------------------------------------


class ReportWatcher:
    """Incrementally tail a live stream directory, rebuilding the report.

    Each refresh reads only the index bytes appended since the last one —
    across the legacy ``index.jsonl`` *and* every ``index-<worker>.jsonl``
    shard, discovering shard files that appear mid-run (a fleet worker's
    first completion) as it goes; torn tails are carried per file to the
    next refresh, exactly like the resume scan.  Every new entry's artifact
    is verified with the same
    hash/fingerprint machinery resume uses
    (:meth:`~repro.scenarios.stream.SweepStream.completed`'s per-entry
    check), reads each verified artifact once, and re-renders.  Snapshots
    therefore match a one-shot :func:`generate_report` of the same partial
    directory, and once ``MANIFEST.json`` appears the final output is
    byte-identical to the one-shot report of the finished sweep.
    """

    def __init__(
        self,
        directory: str | Path,
        out_dir: str | Path | None = None,
        include_timeline: bool = True,
        ci: bool = False,
    ):
        from repro.scenarios.stream import SweepStream

        self.directory = Path(directory)
        require(self.directory.is_dir(), f"not a sweep directory: {self.directory}")
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.include_timeline = include_timeline
        self.ci = ci
        self.complete = False
        self._stream = SweepStream(self.directory)
        self._offsets: dict[str, int] = {}  # index filename -> consumed bytes
        self._retry: list[dict] = []
        self._cache: dict[str, PointSummary] = {}  # artifact name -> point

    def _new_index_entries(self) -> list[dict]:
        """Return the entries appended to any index file since the last refresh.

        Files are visited in the deterministic merge order
        (:func:`~repro.scenarios.stream.index_paths`), each with its own byte
        offset, so a directory written by many shard writers tails exactly
        like a single-writer one.
        """
        entries: list[dict] = []
        for index_path in index_paths(self.directory):
            offset = self._offsets.get(index_path.name, 0)
            with index_path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            # Only consume whole lines; a torn tail write stays unconsumed
            # and is re-read (hopefully completed) on the next refresh.
            cut = chunk.rfind(b"\n")
            if cut < 0:
                continue
            self._offsets[index_path.name] = offset + cut + 1
            for line in chunk[: cut + 1].splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and entry.get("artifact"):
                    entries.append(entry)
        return entries

    def _ingest(self, path: Path) -> None:
        self._cache[path.name] = _read_point(
            path, None, self.include_timeline, collect_rows=True
        )

    def refresh(self):
        """Pick up new index lines and re-render; return the new report.

        Returns ``None`` while the directory has no verified points yet.
        Sets :attr:`complete` once ``MANIFEST.json`` exists and every
        manifest entry has been read — the sweep is finished and the report
        final.
        """
        pending, self._retry = self._retry + self._new_index_entries(), []
        for entry in pending:
            name = str(entry.get("artifact"))
            if name in self._cache:
                continue
            if not self._stream._artifact_matches(entry):
                # Recorded but not (yet) verifiable — e.g. a resume is about
                # to overwrite a tampered artifact.  Try again next refresh.
                self._retry.append(entry)
                continue
            self._ingest(self.directory / name)

        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.is_file():
            manifest_entries = json.loads(manifest_path.read_text(encoding="utf-8"))[
                "entries"
            ]
            order = [entry["artifact"] for entry in manifest_entries]
            # A manifest can list points this watcher never saw land (they
            # were recorded before it attached); read the stragglers now —
            # through the same verification every indexed entry gets (the
            # manifest entry carries the sha256/fingerprint pair too).
            for entry in manifest_entries:
                name = entry["artifact"]
                if name not in self._cache and self._stream._artifact_matches(entry):
                    self._ingest(self.directory / name)
            names = [name for name in order if name in self._cache]
            self.complete = len(names) == len(order)
        else:
            names = sorted(self._cache)
        failed_all = read_failed_points(self.directory)
        if not names and not failed_all:
            return None
        points = [self._cache[name] for name in names]
        succeeded = {point.fingerprint for point in points}
        failed = [
            entry for entry in failed_all if entry.get("fingerprint") not in succeeded
        ]
        axes, groups, markdown = _render(
            self.directory,
            points,
            self.include_timeline,
            self.ci,
            failed,
            read_rounds(self.directory),
        )
        written: list[Path] = []
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            written = _write_tables(self.out_dir, points, axes, groups, self.ci, markdown)
            timeline_writer = _TimelineCsv(self.out_dir / "timeline.csv")
            try:
                for point in points:
                    for row in point.raw_timeline:
                        timeline_writer.write_row(point.csv_label, row)
            finally:
                timeline_writer.close()
            if timeline_writer.rows:
                written.append(timeline_writer.path)
            else:
                timeline_writer.path.unlink()
        return SweepReport(
            directory=self.directory,
            points=points,
            axes=axes,
            markdown=markdown,
            written=written,
            failed=failed,
        )


def watch_report(
    directory: str | Path,
    out_dir: str | Path | None = None,
    interval: float = 2.0,
    max_refreshes: int | None = None,
    include_timeline: bool = True,
    ci: bool = False,
    sleep=time.sleep,
    on_refresh=None,
):
    """Tail ``directory`` until its sweep completes; return the final report.

    Refreshes every ``interval`` seconds.  Stops when the stream's
    ``MANIFEST.json`` appears and every point has been read (the sweep
    finished), or after ``max_refreshes`` refreshes (mainly for tests and
    CI smoke — an abandoned sweep never completes).  ``on_refresh(watcher,
    report)`` fires after every refresh; ``report`` is ``None`` until the
    first point lands.
    """
    watcher = ReportWatcher(directory, out_dir=out_dir, include_timeline=include_timeline, ci=ci)
    refreshes = 0
    while True:
        report = watcher.refresh()
        refreshes += 1
        if on_refresh is not None:
            on_refresh(watcher, report)
        if watcher.complete or (max_refreshes is not None and refreshes >= max_refreshes):
            return report
        sleep(interval)
