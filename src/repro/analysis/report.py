"""Aggregate reports over streamed sweep directories.

:func:`generate_report` turns a directory of JSONL run artifacts (as written
by ``run_scenarios(..., stream_to=...)`` or ``repro sweep --stream-to``) into

* a markdown report — one per-point summary table, one aggregate table per
  *varying axis* (any dotted spec field that takes more than one value across
  the directory), and optionally per-point timeline tables,
* ``summary.csv`` — per-point summary rows plus their axis assignment, and
* ``timeline.csv`` — every recorded timeline row in long format.

The reader is memory-bounded: artifacts are consumed one line at a time via
:func:`~repro.scenarios.artifacts.iter_artifact`, timeline rows are appended
to the CSV as they are read, and only the small per-point summary rows (plus
a compact per-point series for the markdown timeline section) are retained —
a thousand-point sweep directory never gets loaded into memory at once.

Axes are *inferred*, not configured: the spec line of every artifact is
flattened to dotted keys (``healer_kwargs.kappa``) and any key that varies is
an axis.  This keeps the report honest for hand-assembled directories, not
just ones produced by a single :class:`~repro.scenarios.sweep.SweepSpec`.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from repro.scenarios.artifacts import iter_artifact
from repro.scenarios.stream import INDEX_NAME, MANIFEST_NAME
from repro.util.validation import require

#: Compact per-point series shown in the markdown timeline section:
#: column header -> extractor over one timeline row.
_TIMELINE_COLUMNS = {
    "step": lambda row: row.get("timestep"),
    "degree_ratio": lambda row: row.get("worst_degree_ratio"),
    "h(healed)": lambda row: row.get("healed", {}).get("edge_expansion"),
    "h(ghost)": lambda row: row.get("ghost", {}).get("edge_expansion"),
    "lambda(healed)": lambda row: row.get("healed", {}).get("algebraic_connectivity"),
}


def flatten_dotted(mapping: dict, prefix: str = "") -> dict:
    """Flatten nested dicts to dotted keys; non-dict values pass through."""
    flat: dict = {}
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_dotted(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def scan_artifact_paths(directory: str | Path) -> list[Path]:
    """Return the directory's artifact files in canonical point order.

    When the directory carries a ``MANIFEST.json`` (a finalized streamed
    sweep), its entry order — the sweep's submission order — wins; otherwise
    every ``*.jsonl`` except the stream index is taken in sorted-name order.
    """
    import json

    directory = Path(directory)
    require(directory.is_dir(), f"not a sweep directory: {directory}")
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        entries = json.loads(manifest.read_text(encoding="utf-8"))["entries"]
        return [directory / entry["artifact"] for entry in entries]
    # Dotted names are the stream writer's crash leftovers (.tmp-*): a
    # killed sweep may leave a partial temp artifact next to the real ones.
    paths = sorted(
        path
        for path in directory.glob("*.jsonl")
        if path.name != INDEX_NAME and not path.name.startswith(".")
    )
    require(bool(paths), f"no run artifacts (*.jsonl) in {directory}")
    return paths


def _cell(value) -> str:
    """Render one markdown/CSV cell deterministically."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _markdown_table(rows: list[dict], columns: list[str]) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(column)) for column in columns) + " |")
    return "\n".join(lines)


def _sort_key(value):
    """Order mixed-type axis values deterministically (numbers, then text)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value, "")
    return (1, 0, str(value))


@dataclass
class PointSummary:
    """One artifact's contribution to the aggregate report."""

    label: str
    artifact: str
    spec_flat: dict
    summary: dict
    timeline: list = field(default_factory=list)  # compact markdown series


@dataclass
class SweepReport:
    """The aggregated view of a sweep directory."""

    directory: Path
    points: list
    axes: dict  # dotted spec key -> sorted distinct values
    markdown: str
    written: list = field(default_factory=list)  # files written by out_dir


def _read_point(path: Path, timeline_writer, include_timeline: bool) -> PointSummary:
    """Single-pass read of one artifact (timeline rows streamed straight out)."""
    spec_data: dict | None = None
    summary: dict | None = None
    compact: list[dict] = []
    for kind, data in iter_artifact(path):
        if kind == "spec":
            spec_data = data
        elif kind == "summary":
            summary = data
        elif kind == "timeline":
            if timeline_writer is not None:
                timeline_writer.write_row(path, spec_data, data)
            if include_timeline:
                compact.append(
                    {name: pick(data) for name, pick in _TIMELINE_COLUMNS.items()}
                )
    require(spec_data is not None, f"artifact {path} has no 'spec' line")
    require(summary is not None, f"artifact {path} has no 'summary' line")
    label = spec_data.get("name") or (
        f"{spec_data.get('healer')}@{spec_data.get('topology')}"
        f"/{spec_data.get('adversary')}"
    )
    return PointSummary(
        label=label,
        artifact=path.name,
        spec_flat=flatten_dotted(spec_data),
        summary=dict(summary),
        timeline=compact,
    )


class _TimelineCsv:
    """Streams timeline rows to ``timeline.csv`` as artifacts are read."""

    def __init__(self, path: Path):
        self._handle = path.open("w", encoding="utf-8", newline="")
        self._writer: csv.DictWriter | None = None
        self.path = path
        self.rows = 0

    def write_row(self, artifact: Path, spec_data: dict | None, row: dict) -> None:
        label = (spec_data or {}).get("name") or artifact.stem
        flat = {"label": label, **flatten_dotted(row)}
        if self._writer is None:
            self._writer = csv.DictWriter(self._handle, fieldnames=list(flat))
            self._writer.writeheader()
        self._writer.writerow({key: _cell(flat.get(key)) for key in self._writer.fieldnames})
        self.rows += 1

    def close(self) -> None:
        self._handle.close()


def detect_axes(points: list) -> dict:
    """Return ``dotted spec key -> sorted distinct values`` for varying keys.

    ``name`` always varies (sweep expansion bakes the assignment into it) and
    is never an axis.  A key that only *some* points carry (hand-assembled
    directories mixing kwargs shapes) varies too — the axis table then gets
    an explicit ``(missing)`` group so its point counts still sum to the
    directory total.
    """
    values: dict[str, list] = {}
    for point in points:
        for key, value in point.spec_flat.items():
            bucket = values.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
    return {
        key: sorted(distinct, key=_sort_key)
        for key, distinct in sorted(values.items())
        if key != "name"
        and (
            len(distinct) > 1
            or any(key not in point.spec_flat for point in points)
        )
    }


def _aggregate(points: list) -> dict:
    """Aggregate summary columns over ``points`` (means; bools as ok-counts)."""
    row: dict = {"points": len(points)}
    columns: dict[str, list] = {}
    for point in points:
        for key, value in point.summary.items():
            columns.setdefault(key, []).append(value)
    for key, column in columns.items():
        if all(isinstance(value, bool) for value in column):
            row[f"{key} ok"] = f"{sum(column)}/{len(column)}"
        elif all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in column
        ):
            row[f"{key} mean"] = float(sum(column)) / len(column)
    return row


def _axis_section(key: str, values: list, points: list) -> str:
    """Render the aggregate table for one axis.

    Every point lands in exactly one row: points without the key at all get
    the trailing ``(missing)`` group rather than silently vanishing.
    """
    rows = []
    for value in values:
        group = [
            point
            for point in points
            if key in point.spec_flat and point.spec_flat[key] == value
        ]
        rows.append({key: value, **_aggregate(group)})
    absent = [point for point in points if key not in point.spec_flat]
    if absent:
        rows.append({key: "(missing)", **_aggregate(absent)})
    columns = [key]
    for row in rows:
        columns.extend(column for column in row if column not in columns)
    return f"## Axis: `{key}`\n\n{_markdown_table(rows, columns)}"


def generate_report(
    directory: str | Path,
    out_dir: str | Path | None = None,
    include_timeline: bool = True,
) -> SweepReport:
    """Aggregate a sweep directory into a :class:`SweepReport`.

    When ``out_dir`` is given, ``report.md``, ``summary.csv`` and (if any
    timeline rows exist) ``timeline.csv`` are written there; the markdown is
    always available on the returned report.
    """
    directory = Path(directory)
    paths = scan_artifact_paths(directory)
    written: list[Path] = []
    timeline_writer = None
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        timeline_writer = _TimelineCsv(out_dir / "timeline.csv")
    try:
        points = [_read_point(path, timeline_writer, include_timeline) for path in paths]
    finally:
        if timeline_writer is not None:
            timeline_writer.close()
    axes = detect_axes(points)

    summary_columns = ["point"]
    for point in points:
        for key in point.summary:
            if key not in summary_columns:
                summary_columns.append(key)
    point_rows = [{"point": point.label, **point.summary} for point in points]

    sections = [
        f"# Sweep report: {directory.name}",
        "\n".join(
            [
                f"- points: {len(points)}",
                f"- varying axes: "
                + (", ".join(f"`{key}`" for key in axes) if axes else "(none)"),
            ]
        ),
        f"## Points\n\n{_markdown_table(point_rows, summary_columns)}",
    ]
    for key, values in axes.items():
        sections.append(_axis_section(key, values, points))
    if include_timeline and any(point.timeline for point in points):
        timeline_parts = ["## Timelines"]
        for point in points:
            if point.timeline:
                timeline_parts.append(
                    f"### {point.label}\n\n"
                    + _markdown_table(point.timeline, list(_TIMELINE_COLUMNS))
                )
        sections.append("\n\n".join(timeline_parts))
    markdown = "\n\n".join(sections) + "\n"

    if out_dir is not None:
        report_path = out_dir / "report.md"
        report_path.write_text(markdown, encoding="utf-8")
        written.append(report_path)
        summary_path = out_dir / "summary.csv"
        axis_columns = list(axes)
        with summary_path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            # Axis columns are namespaced (spec.healer, spec.timesteps) so
            # they never collide with summary columns of the same name.
            writer.writerow(
                ["point", *(f"spec.{key}" for key in axis_columns), *summary_columns[1:]]
            )
            for point in points:
                writer.writerow(
                    [point.label]
                    + [_cell(point.spec_flat.get(key)) for key in axis_columns]
                    + [_cell(point.summary.get(key)) for key in summary_columns[1:]]
                )
        written.append(summary_path)
        if timeline_writer is not None and timeline_writer.rows:
            written.append(timeline_writer.path)
        elif timeline_writer is not None:
            timeline_writer.path.unlink()
    return SweepReport(
        directory=directory, points=points, axes=axes, markdown=markdown, written=written
    )
