"""Cheap per-timestep trackers used during long experiment runs.

Spectral quantities are expensive to recompute after every adversarial event,
so the harness records them on a cadence through :class:`MetricTimeline`,
while :class:`DegreeRatioTracker` keeps the (cheap) degree-ratio invariant up
to date after every single event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from repro.core.ghost import GhostGraph
from repro.spectral.metrics import GraphMetrics, snapshot_metrics
from repro.util.ids import NodeId

if TYPE_CHECKING:
    from repro.perf.engine import MetricsEngine


class DegreeRatioTracker:
    """Tracks the per-node degree ratio ``degree(G_t) / degree(G'_t)`` incrementally."""

    def __init__(self, kappa: int):
        self.kappa = kappa
        self.max_ratio_seen = 0.0
        self.max_additive_violation = 0.0
        self.worst_node: NodeId | None = None

    def observe(self, healed: nx.Graph, ghost: GhostGraph) -> float:
        """Record the current worst degree ratio; return it."""
        worst = 0.0
        for node in healed.nodes():
            ghost_degree = ghost.degree(node)
            ratio = healed.degree(node) / max(1, ghost_degree)
            excess = healed.degree(node) - (self.kappa * ghost_degree + 2 * self.kappa)
            if ratio > worst:
                worst = ratio
            if ratio > self.max_ratio_seen:
                self.max_ratio_seen = ratio
                self.worst_node = node
            if excess > self.max_additive_violation:
                self.max_additive_violation = excess
        return worst

    @property
    def bound_respected(self) -> bool:
        """Return whether the Theorem 2(1) bound has held at every observation."""
        return self.max_additive_violation <= 0


@dataclass(frozen=True)
class TimelineEntry:
    """One recorded point of a metric timeline."""

    timestep: int
    healed: GraphMetrics
    ghost: GraphMetrics
    worst_degree_ratio: float


@dataclass
class MetricTimeline:
    """A time series of :class:`~repro.spectral.metrics.GraphMetrics` snapshots.

    When an ``engine`` is attached, snapshots are routed through its
    version-keyed cache (the engine's fidelity configuration wins over the
    ``exact_limit`` / ``stretch_sample_pairs`` fields, which the harness keeps
    in sync anyway); without one the original stand-alone path is used.
    """

    exact_limit: int = 16
    stretch_sample_pairs: int | None = 100
    entries: list[TimelineEntry] = field(default_factory=list)
    engine: "MetricsEngine | None" = None

    def record(
        self,
        timestep: int,
        healed: nx.Graph,
        ghost: GhostGraph,
        worst_degree_ratio: float,
        healed_version: int | None = None,
    ) -> TimelineEntry:
        """Snapshot both graphs and append a timeline entry."""
        ghost_alive = ghost.alive_subgraph()
        if self.engine is not None:
            healed_metrics = self.engine.snapshot(
                healed,
                ghost=ghost_alive,
                version=healed_version,
                ghost_version=ghost.version,
                label="healed",
            )
            ghost_metrics = self.engine.snapshot(
                ghost_alive, version=ghost.version, label="ghost_alive"
            )
        else:
            healed_metrics = snapshot_metrics(
                healed,
                ghost=ghost_alive,
                exact_limit=self.exact_limit,
                stretch_sample_pairs=self.stretch_sample_pairs,
            )
            ghost_metrics = snapshot_metrics(
                ghost_alive, exact_limit=self.exact_limit, stretch_sample_pairs=None
            )
        entry = TimelineEntry(
            timestep=timestep,
            healed=healed_metrics,
            ghost=ghost_metrics,
            worst_degree_ratio=worst_degree_ratio,
        )
        self.entries.append(entry)
        return entry

    def series(self, field_name: str, side: str = "healed") -> list[float]:
        """Return the time series of one metric field (``side`` is healed/ghost)."""
        values: list[float] = []
        for entry in self.entries:
            metrics = entry.healed if side == "healed" else entry.ghost
            values.append(getattr(metrics, field_name))
        return values

    def final(self) -> TimelineEntry | None:
        """Return the last recorded entry (None when empty)."""
        return self.entries[-1] if self.entries else None
