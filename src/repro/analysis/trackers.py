"""Cheap per-timestep trackers used during long experiment runs.

Spectral quantities are expensive to recompute after every adversarial event,
so the harness records them on a cadence through :class:`MetricTimeline`,
while :class:`DegreeRatioTracker` keeps the (cheap) degree-ratio invariant up
to date after every single event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import networkx as nx
import numpy as np

from repro.core.ghost import GhostGraph
from repro.spectral.metrics import GraphMetrics, snapshot_metrics
from repro.util.ids import NodeId

if TYPE_CHECKING:
    from repro.core.edgestore import EdgeStore
    from repro.perf.engine import MetricsEngine


class DegreeRatioTracker:
    """Tracks the per-node degree ratio ``degree(G_t) / degree(G'_t)`` incrementally.

    Two observation paths with identical results:

    * :meth:`observe` — the reference Python scan over an ``nx.Graph``.
    * :meth:`observe_store` — a vectorized pass over an
      :class:`~repro.core.edgestore.EdgeStore`'s degree columns, paired with
      a slot-aligned ghost-degree array the harness keeps current via
      :meth:`record_insertion` (deletions never change ghost degrees, so
      insertions are the only deltas).  ``argmax`` over slot order equals the
      reference scan's first-improvement tie-breaking because node slots are
      assigned in insertion order and never reused.
    """

    def __init__(self, kappa: int):
        self.kappa = kappa
        self.max_ratio_seen = 0.0
        self.max_additive_violation = 0.0
        self.worst_node: NodeId | None = None
        self._store: "EdgeStore | None" = None
        self._ghost: GhostGraph | None = None
        self._ghost_deg = np.zeros(0, dtype=np.int64)

    def observe(self, healed: nx.Graph, ghost: GhostGraph) -> float:
        """Record the current worst degree ratio; return it."""
        worst = 0.0
        for node in healed.nodes():
            ghost_degree = ghost.degree(node)
            ratio = healed.degree(node) / max(1, ghost_degree)
            excess = healed.degree(node) - (self.kappa * ghost_degree + 2 * self.kappa)
            if ratio > worst:
                worst = ratio
            if ratio > self.max_ratio_seen:
                self.max_ratio_seen = ratio
                self.worst_node = node
            if excess > self.max_additive_violation:
                self.max_additive_violation = excess
        return worst

    # -- vectorized path over an EdgeStore ------------------------------------

    def attach_store(self, store: "EdgeStore", ghost: GhostGraph) -> None:
        """Bind the tracker to a healer's store and seed the ghost-degree array."""
        self._store = store
        self._ghost = ghost
        self._ghost_deg = np.zeros(max(16, store.node_high_water * 2), dtype=np.int64)
        for node in store.nodes():
            self._ghost_deg[store.slot_of(node)] = ghost.degree(node)

    def record_insertion(self, node: NodeId, neighbors: Iterable[NodeId]) -> None:
        """Refresh ghost degrees after an insertion was applied to ghost+healer."""
        store, ghost = self._store, self._ghost
        assert store is not None and ghost is not None, "attach_store() first"
        high = store.node_high_water
        if high > len(self._ghost_deg):
            grown = np.zeros(max(high, len(self._ghost_deg) * 2), dtype=np.int64)
            grown[: len(self._ghost_deg)] = self._ghost_deg
            self._ghost_deg = grown
        self._ghost_deg[store.slot_of(node)] = ghost.degree(node)
        for neighbor in set(neighbors):
            if neighbor in store:
                self._ghost_deg[store.slot_of(neighbor)] = ghost.degree(neighbor)

    def observe_store(self) -> float:
        """Vectorized :meth:`observe` over the attached store; same results."""
        store = self._store
        assert store is not None, "attach_store() first"
        node_ids, alive, healed_deg = store.node_columns()
        if not len(node_ids) or not alive.any():
            return 0.0
        ghost_deg = self._ghost_deg[: len(node_ids)]
        ratio = healed_deg / np.maximum(ghost_deg, 1)
        ratio = np.where(alive, ratio, -1.0)
        at = int(ratio.argmax())
        worst = float(ratio[at])
        if worst > self.max_ratio_seen:
            self.max_ratio_seen = worst
            self.worst_node = int(node_ids[at])
        excess = healed_deg - (self.kappa * ghost_deg + 2 * self.kappa)
        worst_excess = int(excess[alive].max())
        if worst_excess > self.max_additive_violation:
            self.max_additive_violation = worst_excess
        return worst

    @property
    def bound_respected(self) -> bool:
        """Return whether the Theorem 2(1) bound has held at every observation."""
        return self.max_additive_violation <= 0


@dataclass(frozen=True)
class TimelineEntry:
    """One recorded point of a metric timeline."""

    timestep: int
    healed: GraphMetrics
    ghost: GraphMetrics
    worst_degree_ratio: float


@dataclass
class MetricTimeline:
    """A time series of :class:`~repro.spectral.metrics.GraphMetrics` snapshots.

    When an ``engine`` is attached, snapshots are routed through its
    version-keyed cache (the engine's fidelity configuration wins over the
    ``exact_limit`` / ``stretch_sample_pairs`` fields, which the harness keeps
    in sync anyway); without one the original stand-alone path is used.
    """

    exact_limit: int = 16
    stretch_sample_pairs: int | None = 100
    entries: list[TimelineEntry] = field(default_factory=list)
    engine: "MetricsEngine | None" = None

    def record(
        self,
        timestep: int,
        healed: nx.Graph,
        ghost: GhostGraph,
        worst_degree_ratio: float,
        healed_version: int | None = None,
    ) -> TimelineEntry:
        """Snapshot both graphs and append a timeline entry."""
        ghost_alive = ghost.alive_subgraph()
        if self.engine is not None:
            healed_metrics = self.engine.snapshot(
                healed,
                ghost=ghost_alive,
                version=healed_version,
                ghost_version=ghost.version,
                label="healed",
            )
            ghost_metrics = self.engine.snapshot(
                ghost_alive, version=ghost.version, label="ghost_alive"
            )
        else:
            healed_metrics = snapshot_metrics(
                healed,
                ghost=ghost_alive,
                exact_limit=self.exact_limit,
                stretch_sample_pairs=self.stretch_sample_pairs,
            )
            ghost_metrics = snapshot_metrics(
                ghost_alive, exact_limit=self.exact_limit, stretch_sample_pairs=None
            )
        entry = TimelineEntry(
            timestep=timestep,
            healed=healed_metrics,
            ghost=ghost_metrics,
            worst_degree_ratio=worst_degree_ratio,
        )
        self.entries.append(entry)
        return entry

    def series(self, field_name: str, side: str = "healed") -> list[float]:
        """Return the time series of one metric field (``side`` is healed/ghost)."""
        values: list[float] = []
        for entry in self.entries:
            metrics = entry.healed if side == "healed" else entry.ghost
            values.append(getattr(metrics, field_name))
        return values

    def final(self) -> TimelineEntry | None:
        """Return the last recorded entry (None when empty)."""
        return self.entries[-1] if self.entries else None
