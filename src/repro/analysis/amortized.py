"""Amortised complexity accounting (Lemma 5 and Theorem 5 of the paper).

Lemma 5: any healing algorithm needs ``Theta(deg(v))`` messages to repair the
deletion of ``v`` (where ``deg(v)`` is v's black degree), so over ``p``
deletions the amortised cost is ``A(p) = (1/p) * sum_i Theta(deg(v_i))`` and
no algorithm can do better.

Theorem 5: Xheal's repairs take ``O(log n)`` rounds each and the amortised
message complexity over ``p`` deletions is ``O(kappa * log n * A(p))``.

The :class:`CostLedger` accumulates per-deletion costs (either the estimated
costs produced by the centralized healer or the measured counts of the
distributed simulator) together with the black degrees needed for ``A(p)``,
and summarises them against both bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.ids import NodeId
from repro.util.validation import require


def lemma5_lower_bound(black_degrees: list[int]) -> float:
    """Return ``A(p)``, the amortised per-deletion message lower bound of Lemma 5."""
    if not black_degrees:
        return 0.0
    return sum(max(1, degree) for degree in black_degrees) / len(black_degrees)


def theorem5_upper_bound(black_degrees: list[int], kappa: int, n: int) -> float:
    """Return the amortised Theorem 5 upper bound ``kappa * log2(n) * A(p)``."""
    require(kappa >= 1, "kappa must be at least 1")
    require(n >= 2, "n must be at least 2")
    return kappa * math.log2(n) * lemma5_lower_bound(black_degrees)


@dataclass(frozen=True)
class AmortizedCostSummary:
    """Summary of a run's deletion costs versus the paper's bounds."""

    deletions: int
    total_messages: int
    amortized_messages: float
    lower_bound: float
    upper_bound: float
    max_rounds: int
    mean_rounds: float
    overhead_vs_lower_bound: float

    @property
    def within_upper_bound(self) -> bool:
        """Return whether the measured amortised cost is within the Theorem 5 bound."""
        return self.amortized_messages <= self.upper_bound + 1e-9


@dataclass
class CostLedger:
    """Accumulates per-deletion repair costs during a run."""

    kappa: int = 4
    _messages: list[int] = field(default_factory=list)
    _rounds: list[int] = field(default_factory=list)
    _black_degrees: list[int] = field(default_factory=list)
    _network_sizes: list[int] = field(default_factory=list)

    def record_deletion(
        self,
        deleted: NodeId,
        black_degree: int,
        messages: int,
        rounds: int,
        network_size: int,
    ) -> None:
        """Record the repair cost of one deletion.

        ``black_degree`` is the deleted node's degree in ``G'_t`` (the
        quantity Lemma 5's lower bound is built from); ``network_size`` is the
        current number of nodes (Theorem 5's ``n``).
        """
        require(black_degree >= 0, "black_degree must be non-negative")
        require(messages >= 0, "messages must be non-negative")
        require(rounds >= 0, "rounds must be non-negative")
        self._messages.append(messages)
        self._rounds.append(rounds)
        self._black_degrees.append(black_degree)
        self._network_sizes.append(max(2, network_size))

    @property
    def deletions(self) -> int:
        """Return how many deletions have been recorded."""
        return len(self._messages)

    def summary(self) -> AmortizedCostSummary:
        """Summarise the recorded costs against the Lemma 5 / Theorem 5 bounds."""
        if not self._messages:
            return AmortizedCostSummary(0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0.0)
        total_messages = sum(self._messages)
        amortized = total_messages / len(self._messages)
        lower = lemma5_lower_bound(self._black_degrees)
        n = max(self._network_sizes)
        upper = theorem5_upper_bound(self._black_degrees, self.kappa, n)
        overhead = amortized / lower if lower > 0 else float("inf")
        return AmortizedCostSummary(
            deletions=len(self._messages),
            total_messages=total_messages,
            amortized_messages=amortized,
            lower_bound=lower,
            upper_bound=upper,
            max_rounds=max(self._rounds),
            mean_rounds=sum(self._rounds) / len(self._rounds),
            overhead_vs_lower_bound=overhead,
        )
