"""Analysis layer: invariant checkers and complexity accounting.

* :mod:`repro.analysis.invariants` — checks the four guarantees of Theorem 2
  (degree, stretch, expansion, algebraic connectivity) of a healed graph
  against its ghost graph, producing structured verdicts the tests and
  benchmarks assert on.
* :mod:`repro.analysis.amortized` — Lemma 5's lower bound ``A(p)`` and the
  amortised message/round accounting of Theorem 5.
* :mod:`repro.analysis.trackers` — per-timestep trackers that accumulate the
  Theorem 2 quantities cheaply during a long run (degree ratios every step,
  spectral quantities on a configurable cadence).
* :mod:`repro.analysis.report` — memory-bounded aggregation of streamed
  sweep directories into per-axis markdown/CSV reports (``repro report``).
"""

from repro.analysis.invariants import (
    DegreeInvariantResult,
    ExpansionInvariantResult,
    SpectralInvariantResult,
    StretchInvariantResult,
    Theorem2Verdict,
    check_degree_invariant,
    check_expansion_invariant,
    check_spectral_invariant,
    check_stretch_invariant,
    check_theorem2,
)
from repro.analysis.amortized import (
    AmortizedCostSummary,
    CostLedger,
    lemma5_lower_bound,
    theorem5_upper_bound,
)
from repro.analysis.trackers import DegreeRatioTracker, MetricTimeline, TimelineEntry

__all__ = [
    "DegreeInvariantResult",
    "ExpansionInvariantResult",
    "SpectralInvariantResult",
    "StretchInvariantResult",
    "Theorem2Verdict",
    "check_degree_invariant",
    "check_expansion_invariant",
    "check_spectral_invariant",
    "check_stretch_invariant",
    "check_theorem2",
    "AmortizedCostSummary",
    "CostLedger",
    "lemma5_lower_bound",
    "theorem5_upper_bound",
    "DegreeRatioTracker",
    "MetricTimeline",
    "TimelineEntry",
    # lazily loaded (see __getattr__) — the report module pulls in the
    # scenarios layer, which plain invariant checking should not:
    "SweepReport",
    "generate_report",
    "scan_artifact_paths",
]

_LAZY = {
    "SweepReport": "repro.analysis.report",
    "generate_report": "repro.analysis.report",
    "scan_artifact_paths": "repro.analysis.report",
}


def __getattr__(name: str):
    """Load the sweep-report module on demand (keeps import edges acyclic)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
