"""Analysis layer: invariant checkers and complexity accounting.

* :mod:`repro.analysis.invariants` — checks the four guarantees of Theorem 2
  (degree, stretch, expansion, algebraic connectivity) of a healed graph
  against its ghost graph, producing structured verdicts the tests and
  benchmarks assert on.
* :mod:`repro.analysis.amortized` — Lemma 5's lower bound ``A(p)`` and the
  amortised message/round accounting of Theorem 5.
* :mod:`repro.analysis.trackers` — per-timestep trackers that accumulate the
  Theorem 2 quantities cheaply during a long run (degree ratios every step,
  spectral quantities on a configurable cadence).
"""

from repro.analysis.invariants import (
    DegreeInvariantResult,
    ExpansionInvariantResult,
    SpectralInvariantResult,
    StretchInvariantResult,
    Theorem2Verdict,
    check_degree_invariant,
    check_expansion_invariant,
    check_spectral_invariant,
    check_stretch_invariant,
    check_theorem2,
)
from repro.analysis.amortized import (
    AmortizedCostSummary,
    CostLedger,
    lemma5_lower_bound,
    theorem5_upper_bound,
)
from repro.analysis.trackers import DegreeRatioTracker, MetricTimeline, TimelineEntry

__all__ = [
    "DegreeInvariantResult",
    "ExpansionInvariantResult",
    "SpectralInvariantResult",
    "StretchInvariantResult",
    "Theorem2Verdict",
    "check_degree_invariant",
    "check_expansion_invariant",
    "check_spectral_invariant",
    "check_stretch_invariant",
    "check_theorem2",
    "AmortizedCostSummary",
    "CostLedger",
    "lemma5_lower_bound",
    "theorem5_upper_bound",
    "DegreeRatioTracker",
    "MetricTimeline",
    "TimelineEntry",
]
