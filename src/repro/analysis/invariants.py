"""Theorem 2 invariant checkers.

Each checker compares the healed graph ``G_t`` with the ghost graph ``G'_t``
and returns a structured result with the measured quantity, the bound the
theorem promises, and a boolean verdict.  The experiment harness evaluates
them on a cadence; the property-based tests evaluate them after every single
adversarial event.

Every expensive checker accepts an optional
:class:`~repro.perf.engine.MetricsEngine` (plus the healed graph's version):
when given, expansion / lambda / stretch values are served from the engine's
version-keyed cache, so an invariant check right after a metric snapshot of
the same graph version costs nothing.  With an engine the engine's fidelity
configuration (exact limit, sample count, seed) wins over the per-call
``exact_limit`` / ``sample_pairs`` / ``seed`` arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.core.ghost import GhostGraph
from repro.spectral.expansion import DEFAULT_EXACT_LIMIT, edge_expansion
from repro.spectral.laplacian import algebraic_connectivity, theorem2_lambda_lower_bound
from repro.spectral.stretch import stretch_against_ghost
from repro.util.ids import NodeId

if TYPE_CHECKING:  # avoids a runtime import cycle: the engine imports nothing from here at import time
    from repro.perf.engine import MetricsEngine


@dataclass(frozen=True)
class DegreeInvariantResult:
    """Theorem 2(1): ``degree(x, G_t) <= kappa * degree(x, G'_t) + 2*kappa`` for all x."""

    holds: bool
    kappa: int
    worst_node: NodeId | None
    worst_degree: int
    worst_ghost_degree: int
    worst_ratio: float
    violations: tuple[NodeId, ...]


@dataclass(frozen=True)
class StretchInvariantResult:
    """Theorem 2(2): distances grow by at most ``c * log2(n)`` for a constant c."""

    holds: bool
    max_stretch: float
    log_n: float
    allowed_constant: float
    bound: float


@dataclass(frozen=True)
class ExpansionInvariantResult:
    """Theorem 2(3): ``h(G_t) >= min(alpha, h(G'_t))`` for a constant alpha >= 1."""

    holds: bool
    healed_expansion: float
    ghost_expansion: float
    alpha: float
    bound: float


@dataclass(frozen=True)
class SpectralInvariantResult:
    """Theorem 2(4): the explicit lower bound on ``lambda(G_t)``."""

    holds: bool
    healed_lambda: float
    ghost_lambda: float
    bound: float


@dataclass(frozen=True)
class Theorem2Verdict:
    """All four Theorem 2 checks bundled."""

    degree: DegreeInvariantResult
    stretch: StretchInvariantResult
    expansion: ExpansionInvariantResult
    spectral: SpectralInvariantResult
    connected: bool

    @property
    def all_hold(self) -> bool:
        """Return whether every guarantee (plus connectivity) holds."""
        return (
            self.connected
            and self.degree.holds
            and self.stretch.holds
            and self.expansion.holds
            and self.spectral.holds
        )


def check_degree_invariant(
    healed: nx.Graph, ghost: GhostGraph, kappa: int
) -> DegreeInvariantResult:
    """Check ``degree(x, G_t) <= kappa * degree(x, G'_t) + 2*kappa`` for every live node.

    The additive ``2*kappa`` term is exactly Lemma 3's allowance for one
    bridge duty plus one share.
    """
    violations: list[NodeId] = []
    worst_node: NodeId | None = None
    worst_ratio = 0.0
    worst_degree = 0
    worst_ghost = 0
    for node in healed.nodes():
        healed_degree = healed.degree(node)
        ghost_degree = ghost.degree(node)
        bound = kappa * ghost_degree + 2 * kappa
        ratio = healed_degree / max(1, ghost_degree)
        if healed_degree > bound:
            violations.append(node)
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst_node = node
            worst_degree = healed_degree
            worst_ghost = ghost_degree
    return DegreeInvariantResult(
        holds=not violations,
        kappa=kappa,
        worst_node=worst_node,
        worst_degree=worst_degree,
        worst_ghost_degree=worst_ghost,
        worst_ratio=worst_ratio,
        violations=tuple(violations),
    )


def check_stretch_invariant(
    healed: nx.Graph,
    ghost: GhostGraph,
    allowed_constant: float = 4.0,
    sample_pairs: int | None = 200,
    seed: int = 0,
    engine: "MetricsEngine | None" = None,
    healed_version: int | None = None,
) -> StretchInvariantResult:
    """Check that the maximum stretch is at most ``allowed_constant * log2(n)``.

    Theorem 2(2) is asymptotic (``O(log n)``); ``allowed_constant`` makes the
    bound concrete.  ``n`` is the number of nodes of ``G'_t`` as in the paper.
    """
    n = max(2, ghost.number_of_nodes())
    log_n = math.log2(n)
    bound = allowed_constant * max(1.0, log_n)
    common = set(healed.nodes()) & ghost.alive_nodes()
    if len(common) < 2:
        return StretchInvariantResult(True, 0.0, log_n, allowed_constant, bound)
    if engine is not None:
        summary = engine.stretch_summary(
            healed,
            ghost.alive_subgraph,
            healed_version=healed_version,
            ghost_version=ghost.version,
        )
        if summary is None:
            return StretchInvariantResult(True, 0.0, log_n, allowed_constant, bound)
    else:
        summary = stretch_against_ghost(
            healed, ghost.alive_subgraph(), sample_pairs=sample_pairs, seed=seed
        )
    return StretchInvariantResult(
        holds=summary.max_stretch <= bound,
        max_stretch=summary.max_stretch,
        log_n=log_n,
        allowed_constant=allowed_constant,
        bound=bound,
    )


def check_expansion_invariant(
    healed: nx.Graph,
    ghost: GhostGraph,
    alpha: float = 1.0,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    seed: int = 0,
    engine: "MetricsEngine | None" = None,
    healed_version: int | None = None,
) -> ExpansionInvariantResult:
    """Check ``h(G_t) >= min(alpha, h(G'_t))``.

    As in the paper, ``G'_t`` is the *full* insertions-only graph (deleted
    nodes included) — it is unchanged by deletions, so the guarantee says the
    healed graph's expansion never falls below what the network would have
    had with no deletions at all (capped at the constant ``alpha``).  A small
    numerical tolerance absorbs the approximation error of the large-graph
    expansion estimator.
    """
    ghost_full = ghost.graph
    if healed.number_of_nodes() < 2 or ghost_full.number_of_nodes() < 2:
        return ExpansionInvariantResult(True, 0.0, 0.0, alpha, 0.0)
    if engine is not None:
        healed_h = engine.edge_expansion(healed, version=healed_version, label="healed")
        # Keyed on graph_version: deletions never change the full ghost graph.
        ghost_h = engine.edge_expansion(
            ghost_full, version=ghost.graph_version, label="ghost_full"
        )
    else:
        healed_h = edge_expansion(healed, exact_limit=exact_limit, seed=seed)
        ghost_h = edge_expansion(ghost_full, exact_limit=exact_limit, seed=seed)
    bound = min(alpha, ghost_h)
    tolerance = 1e-9
    return ExpansionInvariantResult(
        holds=healed_h + tolerance >= bound,
        healed_expansion=healed_h,
        ghost_expansion=ghost_h,
        alpha=alpha,
        bound=bound,
    )


def check_spectral_invariant(
    healed: nx.Graph,
    ghost: GhostGraph,
    kappa: int,
    engine: "MetricsEngine | None" = None,
    healed_version: int | None = None,
) -> SpectralInvariantResult:
    """Check the explicit Theorem 2(4) lower bound on ``lambda(G_t)``.

    As with the expansion check, the reference graph is the full ``G'_t``
    (deleted nodes included), matching the statement of Theorem 2.
    """
    ghost_full = ghost.graph
    if healed.number_of_nodes() < 2 or ghost_full.number_of_nodes() < 2:
        return SpectralInvariantResult(True, 0.0, 0.0, 0.0)
    if engine is not None:
        healed_lambda = engine.algebraic_connectivity(
            healed, version=healed_version, label="healed"
        )
        ghost_lambda = engine.algebraic_connectivity(
            ghost_full, version=ghost.graph_version, label="ghost_full"
        )
    else:
        healed_lambda = algebraic_connectivity(healed)
        ghost_lambda = algebraic_connectivity(ghost_full)
    degrees = [degree for _, degree in ghost_full.degree()]
    d_min = max(1, min(degrees)) if degrees else 1
    d_max = max(1, max(degrees)) if degrees else 1
    bound = theorem2_lambda_lower_bound(ghost_lambda, d_min, d_max, kappa)
    tolerance = 1e-9
    return SpectralInvariantResult(
        holds=healed_lambda + tolerance >= bound,
        healed_lambda=healed_lambda,
        ghost_lambda=ghost_lambda,
        bound=bound,
    )


def check_theorem2(
    healed: nx.Graph,
    ghost: GhostGraph,
    kappa: int,
    alpha: float = 1.0,
    stretch_constant: float = 4.0,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    sample_pairs: int | None = 200,
    seed: int = 0,
    engine: "MetricsEngine | None" = None,
    healed_version: int | None = None,
) -> Theorem2Verdict:
    """Evaluate all four Theorem 2 guarantees plus connectivity.

    When ``engine`` (and ``healed_version``) are given, every expensive
    quantity is served from the engine's version-keyed cache — a verdict
    taken right after a snapshot of the same graph versions is free.
    """
    if engine is not None:
        connected = engine.connected(healed, version=healed_version, label="healed")
    else:
        connected = healed.number_of_nodes() <= 1 or nx.is_connected(healed)
    return Theorem2Verdict(
        degree=check_degree_invariant(healed, ghost, kappa),
        stretch=check_stretch_invariant(
            healed,
            ghost,
            allowed_constant=stretch_constant,
            sample_pairs=sample_pairs,
            seed=seed,
            engine=engine,
            healed_version=healed_version,
        ),
        expansion=check_expansion_invariant(
            healed,
            ghost,
            alpha=alpha,
            exact_limit=exact_limit,
            seed=seed,
            engine=engine,
            healed_version=healed_version,
        ),
        spectral=check_spectral_invariant(
            healed, ghost, kappa, engine=engine, healed_version=healed_version
        ),
        connected=connected,
    )
