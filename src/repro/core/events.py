"""Repair reports: the structured outcome of one healing step.

Every healer (Xheal and all baselines) returns a :class:`RepairReport` from
``handle_insertion`` / ``handle_deletion``.  The report carries enough detail
for the analysis layer to account the paper's complexity measures (Theorem 5
and Lemma 5) and for tests to assert on the algorithm's behaviour case by
case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.ids import NodeId


class RepairAction(enum.Enum):
    """Which branch of the algorithm a healing step took."""

    NONE = "none"
    INSERTION = "insertion"
    CASE_1_NEW_PRIMARY = "case1_new_primary"
    CASE_2_1_SECONDARY = "case2.1_secondary"
    CASE_2_1_MERGE = "case2.1_merge"
    CASE_2_2_FIX_SECONDARY = "case2.2_fix_secondary"
    CASE_2_2_MERGE = "case2.2_merge"
    BASELINE = "baseline"


@dataclass
class RepairReport:
    """What one healing step did.

    Attributes
    ----------
    timestep:
        The adversarial timestep the repair belongs to.
    deleted_node / inserted_node:
        The node the adversary removed / added this step (at most one is set).
    action:
        The main algorithm branch taken (several may apply in one step; the
        dominant one is recorded here and all are listed in ``actions``).
    edges_added / edges_removed:
        Edges the healer added to / removed from the live graph.
    edges_recolored:
        Edges whose colour changed without the edge itself changing.
    clouds_created / clouds_repaired / clouds_merged:
        Cloud identifiers touched in each way.
    free_nodes_shared:
        Nodes that were shared between primary clouds this step (each share
        contributes ``+kappa`` to that node's degree, see Lemma 3).
    messages:
        Estimated message count of the step under the paper's cost model
        (Theorem 5); the distributed simulator measures real counts instead.
    rounds:
        Estimated number of synchronous rounds of the step.
    """

    timestep: int = 0
    deleted_node: NodeId | None = None
    inserted_node: NodeId | None = None
    action: RepairAction = RepairAction.NONE
    actions: list[RepairAction] = field(default_factory=list)
    edges_added: list[tuple[NodeId, NodeId]] = field(default_factory=list)
    edges_removed: list[tuple[NodeId, NodeId]] = field(default_factory=list)
    edges_recolored: list[tuple[NodeId, NodeId]] = field(default_factory=list)
    clouds_created: list[int] = field(default_factory=list)
    clouds_repaired: list[int] = field(default_factory=list)
    clouds_merged: list[int] = field(default_factory=list)
    free_nodes_shared: list[NodeId] = field(default_factory=list)
    messages: int = 0
    rounds: int = 0

    def note_action(self, action: RepairAction) -> None:
        """Record ``action``; the first non-trivial action becomes the dominant one."""
        self.actions.append(action)
        if self.action in (RepairAction.NONE, RepairAction.INSERTION):
            self.action = action

    @property
    def total_edge_changes(self) -> int:
        """Total structural churn of the step (added + removed edges)."""
        return len(self.edges_added) + len(self.edges_removed)

    def merge_counts(self) -> dict[str, int]:
        """Return a flat count summary (useful for recorders and tests)."""
        return {
            "edges_added": len(self.edges_added),
            "edges_removed": len(self.edges_removed),
            "edges_recolored": len(self.edges_recolored),
            "clouds_created": len(self.clouds_created),
            "clouds_repaired": len(self.clouds_repaired),
            "clouds_merged": len(self.clouds_merged),
            "free_nodes_shared": len(self.free_nodes_shared),
            "messages": self.messages,
            "rounds": self.rounds,
        }
