"""The ghost graph ``G'_t`` (Section 2, "Success metrics").

``G'_t`` is "the graph, at timestep t, consisting solely of the original
nodes (from G_0) and insertions without regard to deletions and healings".
All of Theorem 2's guarantees are stated relative to this graph:

* degree increase is ``degree(v, G_t) / degree(v, G'_t)``,
* stretch is ``dist(x, y, G_t) / dist(x, y, G'_t)``,
* the expansion and spectral guarantees compare ``h(G_t)`` / ``lambda(G_t)``
  with ``h(G'_t)`` / ``lambda(G'_t)``.

The ghost graph only ever grows; deleted nodes remain in it (with their
edges), which is why comparisons against the healed graph restrict to nodes
alive in both.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.util.ids import NodeId
from repro.util.validation import require


class GhostGraph:
    """Monotonically growing record of original + adversarially inserted structure."""

    def __init__(self, initial_graph: nx.Graph | None = None):
        self._graph = nx.Graph()
        self._deleted: set[NodeId] = set()
        self._version = 0
        self._graph_version = 0
        if initial_graph is not None:
            self._graph.add_nodes_from(initial_graph.nodes())
            self._graph.add_edges_from(initial_graph.edges())
        # Ghost degrees are probed once per healed node per timestep by the
        # degree-ratio tracker; a plain dict keeps that O(1) instead of
        # building a NetworkX DegreeView per probe.
        self._degree: dict[NodeId, int] = {
            node: degree for node, degree in self._graph.degree()
        }

    # -- adversarial events ---------------------------------------------------

    def record_insertion(self, node: NodeId, neighbors: Iterable[NodeId]) -> None:
        """Record an adversarial insertion of ``node`` attached to ``neighbors``.

        The neighbours must already exist in the ghost graph (the adversary
        can only connect a new node to nodes currently in the system); they
        may however be nodes that were deleted later — insertion order is
        what matters, and the caller (the experiment harness) guarantees the
        adversary only names currently-alive nodes.
        """
        require(node not in self._graph, f"node {node} was already inserted")
        neighbor_list = list(neighbors)
        for neighbor in neighbor_list:
            require(neighbor in self._graph, f"insertion neighbor {neighbor} unknown to G'")
        self._version += 1
        self._graph_version += 1
        self._graph.add_node(node)
        for neighbor in neighbor_list:
            if neighbor != node:
                self._graph.add_edge(node, neighbor)
        self._degree[node] = self._graph.degree(node)
        for neighbor in set(neighbor_list):
            if neighbor != node:
                self._degree[neighbor] = self._graph.degree(neighbor)

    def record_deletion(self, node: NodeId) -> None:
        """Record that ``node`` was deleted (the ghost graph itself is unchanged).

        The version counter still advances: the *alive subgraph* view changes
        even though the full ghost graph does not.
        """
        require(node in self._graph, f"cannot delete unknown node {node}")
        self._version += 1
        self._deleted.add(node)

    # -- views -----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every recorded event.

        Plays the same cache-keying role as
        :attr:`repro.core.healer.SelfHealer.graph_version`: equal versions
        guarantee both the full ghost graph and its alive subgraph are
        unchanged.  Metrics of the *full* ghost graph should key on
        :attr:`graph_version` instead, which deletions do not touch.
        """
        return self._version

    @property
    def graph_version(self) -> int:
        """Counter bumped only when the full ghost graph ``G'_t`` changes.

        Deletions alter the alive view but never ``G'_t`` itself, so
        full-ghost metrics (Theorem 2's expansion/lambda reference values)
        keyed on this counter stay cached through deletion-heavy runs.
        """
        return self._graph_version

    @property
    def graph(self) -> nx.Graph:
        """The full ghost graph ``G'_t`` (including deleted nodes)."""
        return self._graph

    def degree(self, node: NodeId) -> int:
        """Return ``degree(node, G'_t)``; 0 if the node was never inserted."""
        return self._degree.get(node, 0)

    def deleted_nodes(self) -> set[NodeId]:
        """Return the set of nodes the adversary has deleted so far."""
        return set(self._deleted)

    def alive_nodes(self) -> set[NodeId]:
        """Return the nodes of ``G'_t`` that have not been deleted."""
        return set(self._graph.nodes()) - self._deleted

    def alive_subgraph(self) -> nx.Graph:
        """Return the subgraph of ``G'_t`` induced on the alive nodes.

        This is the natural comparison graph for pairwise-distance metrics
        (deleted nodes cannot be endpoints of a stretch measurement).
        """
        return self._graph.subgraph(self.alive_nodes()).copy()

    def number_of_nodes(self) -> int:
        """Return ``n``, the number of nodes of ``G'_t`` (deleted ones included)."""
        return self._graph.number_of_nodes()

    def copy(self) -> "GhostGraph":
        """Return an independent copy (used by what-if analyses)."""
        clone = GhostGraph()
        clone._graph = self._graph.copy()
        clone._deleted = set(self._deleted)
        clone._version = self._version
        clone._graph_version = self._graph_version
        clone._degree = dict(self._degree)
        return clone
