"""Edge colours (Section 3 of the paper).

Every edge of the network carries a colour:

* **black** — the edge was part of the original graph or was inserted by the
  adversary (``G'_t`` consists of exactly the black-origin edges).
* **primary** — the edge belongs to a primary expander cloud; the paper says
  "all primary colors are different shades of color red", i.e. each primary
  cloud has a unique colour tagged as primary.
* **secondary** — the edge belongs to a secondary expander cloud ("shades of
  orange").

The colour of a cloud is derived from the deleted node's identifier (the
paper: "the ID of the deleted node can be chosen as the color"), disambiguated
with a sequence number because several clouds can be created over the lifetime
of the network from repairs triggered by the same region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ColorKind(enum.Enum):
    """The three colour families used by Xheal."""

    BLACK = "black"
    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass(frozen=True)
class EdgeColor:
    """A concrete edge colour: a family plus a unique tag within the family.

    Black is the unique colour with ``tag == 0``; cloud colours use the cloud
    identifier as their tag, so two clouds never share a colour.
    """

    kind: ColorKind
    tag: int = 0

    @property
    def is_black(self) -> bool:
        """Return whether this is the black (non-cloud) colour."""
        return self.kind is ColorKind.BLACK

    @property
    def is_primary(self) -> bool:
        """Return whether this colour belongs to a primary cloud."""
        return self.kind is ColorKind.PRIMARY

    @property
    def is_secondary(self) -> bool:
        """Return whether this colour belongs to a secondary cloud."""
        return self.kind is ColorKind.SECONDARY

    def __str__(self) -> str:
        if self.is_black:
            return "black"
        family = "red" if self.is_primary else "orange"
        return f"{family}#{self.tag}"


#: The single shared black colour instance.
BLACK = EdgeColor(ColorKind.BLACK, 0)


def primary_color(cloud_id: int) -> EdgeColor:
    """Return the unique primary colour ("shade of red") for ``cloud_id``."""
    return EdgeColor(ColorKind.PRIMARY, cloud_id)


def secondary_color(cloud_id: int) -> EdgeColor:
    """Return the unique secondary colour ("shade of orange") for ``cloud_id``."""
    return EdgeColor(ColorKind.SECONDARY, cloud_id)
