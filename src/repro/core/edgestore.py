"""Struct-of-arrays storage for the healed graph (the data-oriented core).

The per-step cost of a simulation point used to be dominated by NetworkX's
per-edge attribute dictionaries: every claim/release of a cloud edge paid
several hash lookups and dict allocations, and every degree probe built a
``DegreeView``.  :class:`EdgeStore` replaces that with flat numpy columns —
endpoints, packed colour codes, ``was_black`` flags and owner ids live in
parallel arrays indexed by *edge slot*, while a plain dict-of-dicts adjacency
maps ``u -> {v: slot}``.

Two properties are load-bearing:

* **Iteration-order fidelity.**  The adjacency dict mirrors NetworkX's own
  insertion/removal semantics, so node iteration order — which feeds the
  Laplacian's row order and every order-sensitive tie-break in the metric
  kernels — is identical to what a live ``nx.Graph`` would have produced.
  :meth:`to_networkx` therefore materializes a graph whose metrics match the
  pre-rewrite implementation byte for byte (pinned by
  ``tests/test_harness_reference.py``).
* **Slot stability for vectorized consumers.**  Node slots are append-only
  (never reused), so
  :class:`~repro.analysis.trackers.DegreeRatioTracker` can keep a
  slot-aligned ghost-degree array and evaluate the Theorem-2(1) degree bound
  with three numpy expressions instead of a Python scan per timestep.

The store intentionally speaks a small ``nx.Graph``-compatible dialect
(``nodes() / neighbors() / degree() / edges(nbunch) / number_of_nodes()`` and
``in`` / ``len``): adversaries, the baselines and the distributed protocol
all drive it directly without materializing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx
import numpy as np

from repro.core.colors import BLACK, ColorKind, EdgeColor
from repro.util.ids import NodeId

#: Packed colour-kind codes (column ``_ekind``).
KIND_BLACK = 0
KIND_PRIMARY = 1
KIND_SECONDARY = 2

_KIND_TO_CODE = {
    ColorKind.BLACK: KIND_BLACK,
    ColorKind.PRIMARY: KIND_PRIMARY,
    ColorKind.SECONDARY: KIND_SECONDARY,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

#: ``_eowner0`` value meaning "no owner".
_NO_OWNER = -1

#: Shared EdgeColor instances so materialized graphs reuse (not reallocate)
#: colour objects; ``(KIND_BLACK, 0)`` maps to the module-level ``BLACK``
#: singleton, which tests compare with ``is``.
_COLOR_CACHE: dict[tuple[int, int], EdgeColor] = {(KIND_BLACK, 0): BLACK}


def _color_object(kind_code: int, tag: int) -> EdgeColor:
    color = _COLOR_CACHE.get((kind_code, tag))
    if color is None:
        color = EdgeColor(_CODE_TO_KIND[kind_code], tag)
        _COLOR_CACHE[(kind_code, tag)] = color
    return color


class EdgeStore:
    """A simple undirected graph with packed per-edge attribute columns."""

    __slots__ = (
        "_adj",
        "_node_slot",
        "_node_meta",
        "_node_ids",
        "_node_alive",
        "_deg",
        "_node_count",
        "_node_high",
        "_eu",
        "_ev",
        "_ekind",
        "_etag",
        "_ewas_black",
        "_eowner0",
        "_extra_owners",
        "_free_edge_slots",
        "_edge_high",
        "_edge_count",
    )

    def __init__(self) -> None:
        self._adj: dict[NodeId, dict[NodeId, int]] = {}
        # -- node columns (slots are append-only; see module docstring) ------
        self._node_slot: dict[NodeId, int] = {}
        self._node_meta: dict[NodeId, dict] = {}
        self._node_ids = np.zeros(16, dtype=np.int64)
        self._node_alive = np.zeros(16, dtype=bool)
        self._deg = np.zeros(16, dtype=np.int64)
        self._node_count = 0
        self._node_high = 0
        # -- edge columns (slots are recycled through a free list) -----------
        self._eu = np.zeros(32, dtype=np.int64)
        self._ev = np.zeros(32, dtype=np.int64)
        self._ekind = np.zeros(32, dtype=np.int8)
        self._etag = np.zeros(32, dtype=np.int64)
        self._ewas_black = np.zeros(32, dtype=bool)
        self._eowner0 = np.full(32, _NO_OWNER, dtype=np.int64)
        self._extra_owners: dict[int, set[int]] = {}
        self._free_edge_slots: list[int] = []
        self._edge_high = 0
        self._edge_count = 0

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` (a no-op when it already exists, like nx)."""
        if node in self._adj:
            return
        self._adj[node] = {}
        slot = self._node_high
        if slot >= len(self._node_ids):
            self._grow_nodes()
        self._node_high += 1
        self._node_count += 1
        self._node_slot[node] = slot
        self._node_ids[slot] = node
        self._node_alive[slot] = True
        self._deg[slot] = 0

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every incident edge."""
        neighbors = self._adj.pop(node)
        node_slot = self._node_slot.pop(node)
        self._node_meta.pop(node, None)
        for other, slot in neighbors.items():
            del self._adj[other][node]
            self._deg[self._node_slot[other]] -= 1
            self._drop_edge_slot(slot)
        self._deg[node_slot] = 0
        self._node_alive[node_slot] = False
        self._node_count -= 1

    def _grow_nodes(self) -> None:
        capacity = max(32, len(self._node_ids) * 2)
        for name in ("_node_ids", "_deg"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)
        old_alive = self._node_alive
        new_alive = np.zeros(capacity, dtype=bool)
        new_alive[: len(old_alive)] = old_alive
        self._node_alive = new_alive

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate nodes in insertion order (matches ``nx.Graph.nodes()``)."""
        return iter(self._adj)

    def has_node(self, node: NodeId) -> bool:
        return node in self._adj

    def number_of_nodes(self) -> int:
        return len(self._adj)

    # ----------------------------------------------------------- node metadata

    _EMPTY_META: dict = {}

    def set_node_data(self, node: NodeId, data: dict) -> None:
        """Attach an attribute dict to ``node`` (e.g. its failure domain).

        Metadata is pure annotation: it never influences adjacency, degree or
        the packed edge columns, and an empty ``data`` clears the entry so
        unannotated stores keep the zero-cost fast path in
        :meth:`to_networkx`.
        """
        if node not in self._adj:
            raise KeyError(node)
        if data:
            self._node_meta[node] = dict(data)
        else:
            self._node_meta.pop(node, None)

    def node_data(self, node: NodeId) -> dict:
        """Return ``node``'s attribute dict ({} when unannotated; don't mutate)."""
        if node not in self._adj:
            raise KeyError(node)
        return self._node_meta.get(node, self._EMPTY_META)

    def number_of_edges(self) -> int:
        return self._edge_count

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node`` (KeyError when absent, like nx)."""
        return len(self._adj[node])

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        return iter(self._adj[node])

    def edges(self, nbunch: Iterable[NodeId] | None = None) -> list[tuple[NodeId, NodeId]]:
        """Return edges (each once); with ``nbunch``, edges incident to it."""
        result: list[tuple[NodeId, NodeId]] = []
        if nbunch is None:
            visited: set[NodeId] = set()
            for u, nbrs in self._adj.items():
                for v in nbrs:
                    if v not in visited:
                        result.append((u, v))
                visited.add(u)
            return result
        seen_slots: set[int] = set()
        for u in nbunch:
            nbrs = self._adj.get(u)
            if nbrs is None:
                continue
            for v, slot in nbrs.items():
                if slot not in seen_slots:
                    seen_slots.add(slot)
                    result.append((u, v))
        return result

    # ------------------------------------------------------------------ edges

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edge_slot(self, u: NodeId, v: NodeId) -> int | None:
        """Return the edge's slot index, or ``None`` when absent (O(1))."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return None
        return nbrs.get(v)

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        color: EdgeColor = BLACK,
        was_black: bool = False,
        owners: Iterable[int] = (),
    ) -> int:
        """Add edge ``(u, v)`` with attributes; returns its slot.

        Endpoints are added implicitly when missing (nx semantics).  Adding
        an existing edge overwrites its attributes, also like nx.
        """
        if u not in self._adj:
            self.add_node(u)
        if v not in self._adj:
            self.add_node(v)
        slot = self._adj[u].get(v)
        if slot is None:
            if self._free_edge_slots:
                slot = self._free_edge_slots.pop()
            else:
                slot = self._edge_high
                if slot >= len(self._eu):
                    self._grow_edges()
                self._edge_high += 1
            self._adj[u][v] = slot
            self._adj[v][u] = slot
            self._eu[slot] = u
            self._ev[slot] = v
            self._deg[self._node_slot[u]] += 1
            self._deg[self._node_slot[v]] += 1
            self._edge_count += 1
        self._ekind[slot] = _KIND_TO_CODE[color.kind]
        self._etag[slot] = color.tag
        self._ewas_black[slot] = was_black
        owner_list = list(owners)
        self._eowner0[slot] = owner_list[0] if owner_list else _NO_OWNER
        if len(owner_list) > 1:
            self._extra_owners[slot] = set(owner_list[1:])
        else:
            self._extra_owners.pop(slot, None)
        return slot

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        slot = self._adj[u].pop(v)
        del self._adj[v][u]
        self._drop_edge_slot(slot)
        self._deg[self._node_slot[u]] -= 1
        self._deg[self._node_slot[v]] -= 1

    def _drop_edge_slot(self, slot: int) -> None:
        self._eowner0[slot] = _NO_OWNER
        self._extra_owners.pop(slot, None)
        self._free_edge_slots.append(slot)
        self._edge_count -= 1

    def _grow_edges(self) -> None:
        capacity = max(64, len(self._eu) * 2)
        for name in ("_eu", "_ev", "_ekind", "_etag"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)
        old_black = self._ewas_black
        new_black = np.zeros(capacity, dtype=bool)
        new_black[: len(old_black)] = old_black
        self._ewas_black = new_black
        old_owner = self._eowner0
        new_owner = np.full(capacity, _NO_OWNER, dtype=np.int64)
        new_owner[: len(old_owner)] = old_owner
        self._eowner0 = new_owner

    # ------------------------------------------------------- edge attributes

    def color(self, u: NodeId, v: NodeId) -> EdgeColor:
        slot = self._adj[u][v]
        return _color_object(int(self._ekind[slot]), int(self._etag[slot]))

    def color_of_slot(self, slot: int) -> EdgeColor:
        return _color_object(int(self._ekind[slot]), int(self._etag[slot]))

    def slot_color_is_black(self, slot: int) -> bool:
        return self._ekind[slot] == KIND_BLACK

    def slot_color_equals(self, slot: int, color: EdgeColor) -> bool:
        return (
            self._ekind[slot] == _KIND_TO_CODE[color.kind]
            and self._etag[slot] == color.tag
        )

    def set_slot_color(self, slot: int, color: EdgeColor) -> None:
        self._ekind[slot] = _KIND_TO_CODE[color.kind]
        self._etag[slot] = color.tag

    def slot_was_black(self, slot: int) -> bool:
        return bool(self._ewas_black[slot])

    def set_slot_was_black(self, slot: int, value: bool) -> None:
        self._ewas_black[slot] = value

    def was_black(self, u: NodeId, v: NodeId) -> bool:
        return bool(self._ewas_black[self._adj[u][v]])

    def owners_of_slot(self, slot: int) -> set[int]:
        """Return the owning cloud ids of an edge slot (a fresh set)."""
        first = int(self._eowner0[slot])
        if first == _NO_OWNER:
            return set()
        owners = {first}
        extra = self._extra_owners.get(slot)
        if extra:
            owners |= extra
        return owners

    def add_slot_owner(self, slot: int, cloud_id: int) -> None:
        first = int(self._eowner0[slot])
        if first == _NO_OWNER:
            self._eowner0[slot] = cloud_id
        elif first != cloud_id:
            extra = self._extra_owners.setdefault(slot, set())
            extra.add(cloud_id)

    def discard_slot_owner(self, slot: int, cloud_id: int) -> int:
        """Remove ``cloud_id`` from the slot's owners; return how many remain."""
        first = int(self._eowner0[slot])
        extra = self._extra_owners.get(slot)
        if first == cloud_id:
            if extra:
                self._eowner0[slot] = extra.pop()
                if not extra:
                    del self._extra_owners[slot]
            else:
                self._eowner0[slot] = _NO_OWNER
        elif extra is not None:
            extra.discard(cloud_id)
            if not extra:
                del self._extra_owners[slot]
        if self._eowner0[slot] == _NO_OWNER:
            return 0
        return 1 + len(self._extra_owners.get(slot, ()))

    # -------------------------------------------------- vectorized node views

    @property
    def node_high_water(self) -> int:
        """One past the highest node slot ever assigned (slots never shrink)."""
        return self._node_high

    def slot_of(self, node: NodeId) -> int:
        return self._node_slot[node]

    def node_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(ids, alive, degree)`` column views up to the high-water slot.

        Slot order equals node insertion order (append-only), which is what
        keeps vectorized argmax tie-breaking identical to a Python scan over
        ``nx.Graph.nodes()``.  The views alias live storage: read, don't write.
        """
        high = self._node_high
        return self._node_ids[:high], self._node_alive[:high], self._deg[:high]

    # --------------------------------------------------------- materializer

    def to_networkx(self) -> nx.Graph:
        """Materialize a snapshot ``nx.Graph`` with full edge attribute dicts.

        Node order is the store's (= the order a live nx graph would have);
        edge attributes use the shared :data:`~repro.core.colors.BLACK`
        singleton and plain Python bools, exactly as the pre-rewrite healer
        stored them.  The result is a snapshot: mutating it does not touch
        the store.
        """
        graph = nx.Graph()
        if self._node_meta:
            meta = self._node_meta
            graph.add_nodes_from(
                (node, meta[node]) if node in meta else node for node in self._adj
            )
        else:
            graph.add_nodes_from(self._adj)
        ekind = self._ekind
        etag = self._etag
        ewas_black = self._ewas_black
        add_edge = graph.add_edge
        visited: set[NodeId] = set()
        for u, nbrs in self._adj.items():
            for v, slot in nbrs.items():
                if v in visited:
                    continue
                add_edge(
                    u,
                    v,
                    color=_color_object(int(ekind[slot]), int(etag[slot])),
                    was_black=bool(ewas_black[slot]),
                    owners=self.owners_of_slot(slot),
                )
            visited.add(u)
        return graph
