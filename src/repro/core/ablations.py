"""Ablation variants of Xheal for the design-choice benchmarks.

DESIGN.md calls out two design choices worth quantifying:

* **secondary clouds + free nodes vs. always merging** — the free-node /
  secondary-cloud machinery exists purely to amortise the expensive
  cloud-merge operation.  :class:`XhealAlwaysMerge` disables it (every
  Case 2.x repair merges the affected primary clouds), so the message-cost
  benchmark can show the gap the amortisation buys.
* **expander clouds vs. clique clouds** — :class:`XhealCliqueClouds` replaces
  every expander cloud by a clique over the same nodes.  Cliques have perfect
  expansion but blow up node degrees (violating Theorem 2(1)), which the
  degree-bound benchmark demonstrates.
"""

from __future__ import annotations

from repro.core.clouds import Cloud
from repro.core.events import RepairReport
from repro.core.xheal import Xheal
from repro.scenarios.registry import register_healer
from repro.expanders.construction import build_clique_edges
from repro.util.ids import NodeId


@register_healer("xheal-always-merge")
class XhealAlwaysMerge(Xheal):
    """Xheal without secondary clouds: every multi-cloud repair merges the clouds.

    Functionally this healer still satisfies the expansion, stretch and degree
    guarantees (merging is the conservative fallback of the real algorithm);
    what it loses is the amortised message bound — every Case 2.x deletion now
    pays the full merge cost.
    """

    name = "xheal-always-merge"

    def _assign_free_nodes(
        self, cloud_ids: list[int], report: RepairReport
    ) -> dict[int, NodeId] | None:
        # Returning None is the "not enough free nodes" signal, which forces
        # _make_secondary into its merge branch unconditionally.
        return None


@register_healer("xheal-clique-clouds")
class XhealCliqueClouds(Xheal):
    """Xheal with clique clouds instead of kappa-regular expander clouds.

    A clique over the deleted node's neighbours gives expansion and stretch at
    least as good as the expander, but the degree of every member grows with
    the cloud size rather than being capped at kappa, so Theorem 2(1) fails.
    Used by the degree-bound ablation benchmark.
    """

    name = "xheal-clique-clouds"

    def _desired_cloud_edges(self, cloud: Cloud) -> set[tuple[NodeId, NodeId]]:
        members = sorted(node for node in cloud.members if node in self._graph)
        return build_clique_edges(members)
