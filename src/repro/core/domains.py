"""Failure-domain annotations: nodes grouped into racks / pods.

Real deployments do not lose nodes one at a time: a power feed, a top-of-rack
switch or a CXL memory pod takes a whole *failure domain* dark at once.  The
domain layer models that as plain node metadata — every node may carry a
``domain`` attribute (a string such as ``"rack03"``) — so the annotation

* is emitted by the datacenter topology generators
  (:func:`repro.harness.workloads.racked_clos_workload`,
  :func:`repro.harness.workloads.pod_mesh_workload`),
* survives the healer's :class:`~repro.core.edgestore.EdgeStore`
  round-trip (``initialize`` copies node attributes into the store,
  ``to_networkx`` re-emits them), and
* is readable by adversaries through the same graph dialect the hot loop
  uses (an :class:`~repro.core.edgestore.EdgeStore` or an ``nx.Graph``),
  which is what lets the ``domain-kill`` adversary target a whole rack
  without the harness materializing anything.

Nodes without a ``domain`` attribute (for example nodes the adversary
inserted mid-run) belong to no failure domain and are never the target of a
domain kill.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.util.ids import NodeId

#: The node-attribute key the whole pack agrees on.
DOMAIN_KEY = "domain"


def _node_data(graph, node) -> Mapping:
    """Return ``node``'s attribute mapping on an ``nx.Graph`` or an EdgeStore."""
    getter = getattr(graph, "node_data", None)
    if getter is not None:  # EdgeStore dialect
        return getter(node)
    return graph.nodes[node]


def node_domain(graph, node: NodeId) -> str | None:
    """Return the failure domain of ``node``, or ``None`` when unassigned."""
    return _node_data(graph, node).get(DOMAIN_KEY)


def assign_domain(graph, nodes: Iterable[NodeId], domain: str) -> None:
    """Label every node in ``nodes`` as belonging to ``domain`` (nx graphs)."""
    for node in nodes:
        graph.nodes[node][DOMAIN_KEY] = domain


def domain_members(graph) -> dict[str, list[NodeId]]:
    """Return ``domain -> sorted member nodes`` over the graph's labelled nodes.

    Only nodes currently in the graph count (a killed rack's members drop out
    as they are deleted), and unlabelled nodes are omitted entirely.  Domains
    are returned in sorted-name order so every consumer — the ``domain-kill``
    adversary's selection, tests, reports — sees one deterministic view.
    """
    members: dict[str, list[NodeId]] = {}
    for node in graph.nodes():
        domain = node_domain(graph, node)
        if domain is not None:
            members.setdefault(domain, []).append(node)
    return {domain: sorted(members[domain]) for domain in sorted(members)}


def list_domains(graph) -> list[str]:
    """Return the sorted names of the graph's non-empty failure domains."""
    return sorted(domain_members(graph))
