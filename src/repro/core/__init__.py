"""The paper's primary contribution: the Xheal self-healing algorithm.

The package is layered as follows:

* :mod:`repro.core.colors` — edge colours.  Original / adversarial edges are
  *black*; every expander cloud built by the healer gets its own colour
  (primary clouds are "shades of red", secondary clouds "shades of orange").
* :mod:`repro.core.clouds` — the primary / secondary expander clouds and the
  registry that tracks cloud membership, free nodes and bridge nodes.
* :mod:`repro.core.ghost` — the ghost graph ``G'_t`` (original nodes plus
  adversarial insertions, with neither deletions nor healing applied), the
  reference graph all of Theorem 2's guarantees compare against.
* :mod:`repro.core.healer` — the abstract self-healer interface shared by
  Xheal and every baseline in :mod:`repro.baselines`.
* :mod:`repro.core.events` — repair reports (what a single healing step did,
  with enough detail to account messages and rounds).
* :mod:`repro.core.xheal` — the Xheal algorithm (Algorithm 3.1-3.6).
"""

from repro.core.colors import BLACK, EdgeColor, ColorKind
from repro.core.clouds import Cloud, CloudKind, CloudRegistry
from repro.core.events import RepairAction, RepairReport
from repro.core.ghost import GhostGraph
from repro.core.healer import SelfHealer
from repro.core.xheal import Xheal, XhealConfig

__all__ = [
    "BLACK",
    "EdgeColor",
    "ColorKind",
    "Cloud",
    "CloudKind",
    "CloudRegistry",
    "RepairAction",
    "RepairReport",
    "GhostGraph",
    "SelfHealer",
    "Xheal",
    "XhealConfig",
]
