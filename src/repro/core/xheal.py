"""The Xheal self-healing algorithm (Algorithms 3.1-3.6 of the paper).

The healer reacts to every adversarial deletion according to the colour of
the edges that were lost:

* **Case 1** — all deleted edges were black: build a new *primary cloud* (a
  kappa-regular expander, or a clique when the neighbourhood is small) among
  the deleted node's neighbours.
* **Case 2.1** — the deleted colored edges were all primary: repair each
  affected primary cloud, then connect them (together with any black
  neighbours, treated as singleton primary clouds) through a new *secondary
  cloud* built on one free node per cloud; if there are not enough free
  nodes, merge all the affected primary clouds into a single primary cloud
  (the expensive, amortised operation).
* **Case 2.2** — some deleted edges were secondary (the deleted node was a
  bridge node): repair the primary clouds, repair the secondary cloud by
  promoting a new free node to bridge duty (or merge all of that secondary
  cloud's primary clouds if no free node exists anywhere among them), and
  connect the deleted node's remaining primary clouds and black neighbours
  with a new secondary cloud.

Implementation notes (documented deviations / clarifications):

* Cloud expanders are *re-randomised* whenever a cloud changes membership
  (rather than incrementally updated): both produce kappa-regular random
  expanders with the same guarantees; the incremental H-graph maintenance the
  paper uses for message efficiency lives in :mod:`repro.distributed`, which
  measures real message counts.
* Edges are never duplicated: if a cloud mandates an edge that already exists
  it is only (re)coloured, exactly as Section 3 prescribes.  Edges whose pair
  was originally black revert to black (rather than disappearing) when the
  owning cloud retires them, so the healed graph never loses a surviving
  ``G'_t`` edge.
* In Case 2.2 the paper builds the new secondary cloud over the primary
  clouds *not* connected by the damaged secondary cloud F.  To guarantee
  connectivity (claim 1 of the paper) the implementation also includes one
  "anchor" cloud from F's side (the deleted bridge's associated primary cloud,
  or the cloud produced by merging F's clouds), since the deleted node was
  the only guaranteed link between the two groups.
* When primary clouds are merged because free nodes ran out, bridge nodes of
  *other* (surviving) secondary clouds inside the merged clouds keep their
  secondary membership; the association is redirected to the merged cloud.
  This keeps every node's bridge duty unique and the degree accounting of
  Lemma 3 intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.clouds import Cloud, CloudKind, CloudRegistry
from repro.core.colors import BLACK, EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import register_healer
from repro.expanders.construction import expander_or_clique
from repro.util.eventlog import EventKind
from repro.util.ids import NodeId
from repro.util.validation import require


@dataclass(frozen=True)
class XhealConfig:
    """Tunable parameters of the Xheal healer.

    Attributes
    ----------
    kappa:
        Degree of the expander clouds (the paper's kappa).  Must be at least
        2; the default 4 gives 2 Hamilton cycles per cloud.
    seed:
        Base seed for the healer's private randomness (the adversary in the
        model is oblivious to it).
    """

    kappa: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.kappa >= 2, f"kappa must be at least 2, got {self.kappa}")


@register_healer("xheal")
class Xheal(SelfHealer):
    """The paper's self-healing algorithm."""

    name = "xheal"

    def __init__(self, config: XhealConfig | None = None, kappa: int | None = None, seed: int = 0):
        if config is None:
            config = XhealConfig(kappa=kappa if kappa is not None else 4, seed=seed)
        super().__init__(seed=config.seed)
        self.config = config
        self.kappa = config.kappa
        self.registry = CloudRegistry()

    def _after_initialize(self) -> None:
        self.registry = CloudRegistry()

    # ------------------------------------------------------------------ deletion

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        primary_ids = self.registry.primary_clouds_of(deleted)
        secondary_id = self.registry.secondary_cloud_of(deleted)

        bridged_primary: int | None = None
        secondary_connected: list[int] = []
        if secondary_id is not None:
            secondary = self.registry.get(secondary_id)
            secondary_connected = sorted(secondary.bridge_of.keys())
            for primary_id, bridge in secondary.bridge_of.items():
                if bridge == deleted:
                    bridged_primary = primary_id
                    break

        self.registry.remove_node_everywhere(deleted)
        black_neighbors = [nb for nb in neighbors if incident_colors[nb].is_black]

        if not neighbors:
            report.note_action(RepairAction.NONE)
            return

        if not primary_ids and secondary_id is None:
            self._case1(black_neighbors, report)
        elif secondary_id is None:
            self._case21(primary_ids, black_neighbors, report)
        else:
            self._case22(
                primary_ids,
                secondary_id,
                bridged_primary,
                secondary_connected,
                black_neighbors,
                report,
            )

    # ------------------------------------------------------------------ case 1

    def _case1(self, black_neighbors: list[NodeId], report: RepairReport) -> None:
        """All deleted edges were black: one new primary cloud among the neighbours."""
        report.note_action(RepairAction.CASE_1_NEW_PRIMARY)
        if len(black_neighbors) <= 1:
            # A degree-1 node is just dropped (Lemma 1, case 2(b)): nothing to repair.
            self._account_repair(report, nodes_touched=len(black_neighbors), merged=False)
            return
        cloud = self.registry.new_primary_cloud(black_neighbors)
        report.clouds_created.append(cloud.cloud_id)
        self._rebuild_cloud_edges(cloud, report)
        self.event_log.record(
            report.timestep, EventKind.CLOUD_CREATED,
            cloud=cloud.cloud_id, cloud_kind="primary", members=sorted(cloud.members),
        )
        self._account_repair(report, nodes_touched=len(black_neighbors), merged=False)

    # ------------------------------------------------------------------ case 2.1

    def _case21(
        self, primary_ids: list[int], black_neighbors: list[NodeId], report: RepairReport
    ) -> None:
        """Deleted colored edges were all primary: fix clouds, then build a secondary."""
        report.note_action(RepairAction.CASE_2_1_SECONDARY)
        self._fix_primary(primary_ids, report)
        touched = self._make_secondary(primary_ids, black_neighbors, report)
        self._account_repair(
            report,
            nodes_touched=touched,
            merged=report.action is RepairAction.CASE_2_1_MERGE,
        )

    # ------------------------------------------------------------------ case 2.2

    def _case22(
        self,
        primary_ids: list[int],
        secondary_id: int,
        bridged_primary: int | None,
        secondary_connected: list[int],
        black_neighbors: list[NodeId],
        report: RepairReport,
    ) -> None:
        """The deleted node was a bridge node of a secondary cloud."""
        report.note_action(RepairAction.CASE_2_2_FIX_SECONDARY)
        self._fix_primary(primary_ids, report)

        anchor = self._fix_secondary(secondary_id, bridged_primary, report)

        # The deleted node's primary clouds NOT already connected through F.
        connected = set(secondary_connected)
        remaining = [cid for cid in primary_ids if cid not in connected and cid in self.registry]
        if remaining or black_neighbors:
            participants = list(remaining)
            if anchor is not None and anchor in self.registry:
                # Connectivity anchor: ties the F-side of the repair to the
                # new secondary cloud (see module docstring).
                participants.append(anchor)
            touched = self._make_secondary(participants, black_neighbors, report)
        else:
            touched = 0
        merged = report.action in (RepairAction.CASE_2_1_MERGE, RepairAction.CASE_2_2_MERGE)
        self._account_repair(report, nodes_touched=max(touched, len(primary_ids)), merged=merged)

    # ------------------------------------------------------------------ FixPrimary

    def _fix_primary(self, cloud_ids: list[int], report: RepairReport) -> None:
        """Algorithm 3.3: rebuild each affected primary cloud over its remaining members."""
        for cloud_id in cloud_ids:
            if cloud_id not in self.registry:
                continue
            cloud = self.registry.get(cloud_id)
            if cloud.size() == 0:
                self._dissolve_cloud(cloud, report)
                continue
            self._rebuild_cloud_edges(cloud, report)
            report.clouds_repaired.append(cloud_id)
            self.event_log.record(
                report.timestep, EventKind.CLOUD_REPAIRED, cloud=cloud_id, cloud_kind="primary"
            )

    # ------------------------------------------------------------------ MakeSecondary

    def _make_secondary(
        self, cloud_ids: list[int], black_neighbors: list[NodeId], report: RepairReport
    ) -> int:
        """Algorithm 3.4: connect the given clouds (plus black-neighbour singletons).

        Returns the number of nodes touched (for the message-cost estimate).
        """
        participating: list[int] = []
        for cloud_id in cloud_ids:
            if cloud_id in self.registry and self.registry.get(cloud_id).size() > 0:
                if cloud_id not in participating:
                    participating.append(cloud_id)
        for neighbor in black_neighbors:
            if neighbor not in self._graph:
                continue
            singleton = self.registry.new_primary_cloud([neighbor])
            report.clouds_created.append(singleton.cloud_id)
            participating.append(singleton.cloud_id)

        if len(participating) <= 1:
            return sum(self.registry.get(cid).size() for cid in participating)

        assignment = self._assign_free_nodes(participating, report)
        if assignment is None:
            # Not enough free nodes: merge everything into one primary cloud.
            report.action = RepairAction.CASE_2_1_MERGE
            report.actions.append(RepairAction.CASE_2_1_MERGE)
            merged = self._merge_primary_clouds(participating, report)
            return merged.size()

        secondary = self.registry.new_secondary_cloud(assignment)
        report.clouds_created.append(secondary.cloud_id)
        self._rebuild_cloud_edges(secondary, report)
        self.event_log.record(
            report.timestep, EventKind.SECONDARY_CREATED,
            cloud=secondary.cloud_id, bridges=dict(assignment),
        )
        return len(assignment)

    def _assign_free_nodes(
        self, cloud_ids: list[int], report: RepairReport
    ) -> dict[int, NodeId] | None:
        """Choose one distinct free node per cloud, sharing across clouds if needed.

        Returns ``None`` when the participating clouds hold fewer free nodes
        than clouds (the signal to merge), mirroring Algorithm 3.4/3.6.
        """
        assignment: dict[int, NodeId] = {}
        used: set[NodeId] = set()
        needy: list[int] = []
        for cloud_id in cloud_ids:
            choice = None
            for node in self.registry.free_members(cloud_id):
                if node not in used:
                    choice = node
                    break
            if choice is None:
                needy.append(cloud_id)
            else:
                assignment[cloud_id] = choice
                used.add(choice)

        if needy:
            pool: list[NodeId] = []
            for cloud_id in cloud_ids:
                for node in self.registry.free_members(cloud_id):
                    if node not in used and node not in pool:
                        pool.append(node)
            for cloud_id in needy:
                if not pool:
                    return None
                shared = pool.pop(0)
                used.add(shared)
                # Sharing: the free node joins the needy cloud, which is then
                # rebuilt to include it (its degree grows by kappa, Lemma 3).
                self.registry.add_member(cloud_id, shared)
                self._rebuild_cloud_edges(self.registry.get(cloud_id), report)
                report.free_nodes_shared.append(shared)
                assignment[cloud_id] = shared
        return assignment

    # ------------------------------------------------------------------ FixSecondary

    def _fix_secondary(
        self, secondary_id: int, bridged_primary: int | None, report: RepairReport
    ) -> int | None:
        """Algorithm 3.5: repair secondary cloud F after its bridge node was deleted.

        Returns the id of the "anchor" primary cloud that remains connected to
        F's side of the network (used by Case 2.2 for the connectivity anchor),
        or ``None`` when F dissolved with no surviving primary clouds.
        """
        if secondary_id not in self.registry:
            if bridged_primary is not None and bridged_primary in self.registry:
                return bridged_primary
            return None
        secondary = self.registry.get(secondary_id)

        candidate_clouds: list[int] = []
        if bridged_primary is not None and bridged_primary in self.registry:
            candidate_clouds.append(bridged_primary)
        for primary_id in sorted(secondary.bridge_of.keys()):
            if primary_id in self.registry and primary_id not in candidate_clouds:
                candidate_clouds.append(primary_id)

        replacement: NodeId | None = None
        source_cloud: int | None = None
        for cloud_id in candidate_clouds:
            for node in self.registry.free_members(cloud_id):
                if node not in secondary.members:
                    replacement = node
                    source_cloud = cloud_id
                    break
            if replacement is not None:
                break

        if replacement is None:
            # No free node anywhere among F's clouds: dissolve F and merge its
            # primary clouds into one (Case 2.1's costly amortised operation).
            report.action = RepairAction.CASE_2_2_MERGE
            report.actions.append(RepairAction.CASE_2_2_MERGE)
            self._retire_cloud_edges(secondary, report)
            self.registry.dissolve(secondary_id)
            report.clouds_merged.append(secondary_id)
            merge_ids = [cid for cid in candidate_clouds if cid in self.registry]
            if len(merge_ids) >= 2:
                merged = self._merge_primary_clouds(merge_ids, report)
                return merged.cloud_id
            if len(merge_ids) == 1:
                self._rebuild_cloud_edges(self.registry.get(merge_ids[0]), report)
                return merge_ids[0]
            return None

        if bridged_primary is not None and bridged_primary in self.registry:
            association = bridged_primary
        else:
            association = source_cloud
        if source_cloud != association and association is not None:
            # The free node came from a sibling cloud: share it into the
            # association cloud, whose expander is rebuilt around it.
            self.registry.add_member(association, replacement)
            self._rebuild_cloud_edges(self.registry.get(association), report)
            report.free_nodes_shared.append(replacement)
        self.registry.set_bridge(secondary_id, association if association is not None else source_cloud, replacement)
        self._rebuild_cloud_edges(secondary, report)
        report.clouds_repaired.append(secondary_id)
        self.event_log.record(
            report.timestep, EventKind.SECONDARY_REPAIRED,
            cloud=secondary_id, new_bridge=replacement,
        )
        return association if association is not None else source_cloud

    # ------------------------------------------------------------------ merging

    def _merge_primary_clouds(self, cloud_ids: list[int], report: RepairReport) -> Cloud:
        """Combine several primary clouds into a single new primary cloud.

        All old cloud edges are retired, a fresh kappa-regular expander is
        built over the union of members, and secondary-cloud associations are
        redirected to the merged cloud.
        """
        members: set[NodeId] = set()
        live_ids = [cid for cid in cloud_ids if cid in self.registry]
        for cloud_id in live_ids:
            members |= self.registry.get(cloud_id).members
        for cloud_id in live_ids:
            cloud = self.registry.get(cloud_id)
            self._retire_cloud_edges(cloud, report)
            self.registry.dissolve(cloud_id)
            report.clouds_merged.append(cloud_id)
        merged = self.registry.new_primary_cloud(members)
        report.clouds_created.append(merged.cloud_id)
        self.registry.redirect_bridges(live_ids, merged.cloud_id)
        self._rebuild_cloud_edges(merged, report)
        self.event_log.record(
            report.timestep, EventKind.CLOUD_MERGED,
            merged_into=merged.cloud_id, sources=live_ids, size=merged.size(),
        )
        return merged

    # ------------------------------------------------------------------ edge management

    def _desired_cloud_edges(self, cloud: Cloud) -> set[tuple[NodeId, NodeId]]:
        """Return the edge set MakeCloud (Algorithm 3.2) mandates for ``cloud`` now."""
        members = sorted(node for node in cloud.members if node in self._graph)
        rng = self._rng.child("cloud", cloud.cloud_id, self._timestep, len(members))
        return expander_or_clique(members, self.kappa, rng)

    def _rebuild_cloud_edges(self, cloud: Cloud, report: RepairReport) -> None:
        """Recompute a cloud's expander and apply the edge diff to the live graph."""
        new_edges = {self._normalize(u, v) for u, v in self._desired_cloud_edges(cloud)}
        old_edges = {
            self._normalize(u, v)
            for u, v in cloud.edges
            if self._graph.has_edge(u, v)
        }
        for u, v in old_edges - new_edges:
            self._release_edge(cloud, u, v, report)
        for u, v in new_edges - old_edges:
            self._claim_edge(cloud, u, v, report)
        cloud.edges = new_edges

    def _retire_cloud_edges(self, cloud: Cloud, report: RepairReport) -> None:
        """Release every edge owned by ``cloud`` (used before dissolving it)."""
        for u, v in list(cloud.edges):
            if self._graph.has_edge(u, v):
                self._release_edge(cloud, u, v, report)
        cloud.edges = set()

    def _dissolve_cloud(self, cloud: Cloud, report: RepairReport) -> None:
        """Retire a cloud's edges and remove it from the registry."""
        self._retire_cloud_edges(cloud, report)
        if cloud.cloud_id in self.registry:
            self.registry.dissolve(cloud.cloud_id)

    def _claim_edge(self, cloud: Cloud, u: NodeId, v: NodeId, report: RepairReport) -> None:
        """Have ``cloud`` own edge ``(u, v)``, creating or recolouring it as needed."""
        store = self._graph
        slot = store.edge_slot(u, v)
        if slot is None:
            self._bump_graph_version()
            store.add_edge(u, v, color=cloud.color, was_black=False, owners=(cloud.cloud_id,))
            report.edges_added.append((u, v))
            return
        store.add_slot_owner(slot, cloud.cloud_id)
        if store.slot_color_is_black(slot):
            # Re-colour rather than duplicate (Section 3: no multi-edges).
            store.set_slot_color(slot, cloud.color)
            report.edges_recolored.append((u, v))

    def _release_edge(self, cloud: Cloud, u: NodeId, v: NodeId, report: RepairReport) -> None:
        """Have ``cloud`` stop owning edge ``(u, v)``; drop or revert it if unowned."""
        store = self._graph
        slot = store.edge_slot(u, v)
        if slot is None:
            return
        if store.discard_slot_owner(slot, cloud.cloud_id):
            if store.slot_color_equals(slot, cloud.color):
                # Another cloud still needs the edge; re-display its colour.
                for other in sorted(store.owners_of_slot(slot)):
                    if other in self.registry:
                        store.set_slot_color(slot, self.registry.get(other).color)
                        break
            return
        if store.slot_was_black(slot):
            if not store.slot_color_is_black(slot):
                store.set_slot_color(slot, BLACK)
                report.edges_recolored.append((u, v))
        else:
            self._bump_graph_version()
            store.remove_edge(u, v)
            report.edges_removed.append((u, v))

    @staticmethod
    def _normalize(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
        return (u, v) if u <= v else (v, u)

    # ------------------------------------------------------------------ cost model

    def _account_repair(self, report: RepairReport, nodes_touched: int, merged: bool) -> None:
        """Accumulate the paper's Theorem-5 cost estimates onto ``report``.

        The distributed implementation (:mod:`repro.distributed`) measures
        real message counts; the centralized healer records the analytical
        estimate so that amortised-cost benchmarks can run cheaply at scale.
        """
        n = max(2, self._graph.number_of_nodes())
        touched = max(1, nodes_touched)
        log_touched = max(1, math.ceil(math.log2(max(2, touched))))
        log_n = max(1, math.ceil(math.log2(n)))
        if merged:
            report.rounds = max(report.rounds, log_n)
            report.messages += self.kappa * touched * log_n
        else:
            report.rounds = max(report.rounds, log_touched + 1)
            report.messages += self.kappa * touched + touched * log_touched

    # ------------------------------------------------------------------ diagnostics

    def cloud_summary(self) -> dict[str, int]:
        """Return counts of live clouds by kind (handy for tests and examples)."""
        primaries = self.registry.clouds(CloudKind.PRIMARY)
        secondaries = self.registry.clouds(CloudKind.SECONDARY)
        return {
            "primary_clouds": len(primaries),
            "secondary_clouds": len(secondaries),
            "bridge_nodes": sum(cloud.size() for cloud in secondaries),
        }

    def check_invariants(self) -> None:
        """Verify the healer's structural invariants (used heavily by tests).

        * cloud registry indices are consistent,
        * every cloud member is a live node,
        * every cloud edge exists in the live graph,
        * every node's degree inside a single cloud is at most kappa
          (+1 slack for odd kappa's rounded Hamilton-cycle count).
        """
        self.registry.check_invariants()
        effective_kappa = self.kappa + (self.kappa % 2)
        for cloud in self.registry.clouds():
            for node in cloud.members:
                require(node in self._graph, f"cloud {cloud.cloud_id} member {node} not in graph")
            for u, v in cloud.edges:
                require(
                    self._graph.has_edge(u, v),
                    f"cloud {cloud.cloud_id} edge ({u}, {v}) missing from graph",
                )
            if not cloud.edges:
                continue
            # Internal degrees in one vectorized pass (the old per-node scan
            # over the full edge set was quadratic in the cloud size).
            endpoints = np.fromiter(
                (node for edge in cloud.edges for node in edge),
                dtype=np.int64,
                count=2 * len(cloud.edges),
            )
            node_ids, internal = np.unique(endpoints, return_counts=True)
            worst = int(internal.argmax())
            require(
                int(internal[worst]) <= effective_kappa,
                f"node {int(node_ids[worst])} has degree {int(internal[worst])} "
                f"inside cloud {cloud.cloud_id} (kappa={self.kappa})",
            )
