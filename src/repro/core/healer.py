"""The self-healer interface shared by Xheal and all baselines.

The interface mirrors the model of Section 2 (Figure 1): the healer owns the
live graph ``G_t``; the experiment harness plays the adversary, calling
:meth:`SelfHealer.handle_insertion` and :meth:`SelfHealer.handle_deletion`
once per timestep; the healer responds by adding (and possibly dropping)
edges and returns a :class:`~repro.core.events.RepairReport` describing what
it did.

Insertions require no healing work in the paper's model ("Addition is
straightforward, the algorithm takes no action. The added edges are colored
black."), so the base class implements insertion fully and subclasses only
implement the post-deletion healing hook.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import networkx as nx

from repro.core.colors import BLACK, EdgeColor
from repro.core.edgestore import EdgeStore
from repro.core.events import RepairAction, RepairReport
from repro.util.eventlog import EventKind, EventLog
from repro.util.graphutils import ensure_simple
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from repro.util.validation import require


class SelfHealer(ABC):
    """Abstract base class for self-healing algorithms.

    Subclasses implement :meth:`_heal_after_deletion`; everything else
    (graph ownership, insertion handling, bookkeeping, event logging) is
    provided here so that Xheal and the baselines are driven identically by
    the experiment harness.
    """

    #: Human-readable algorithm name (overridden by subclasses).
    name: str = "abstract"

    def __init__(self, seed: int = 0):
        self._rng = SeededRng(seed)
        self._graph = EdgeStore()
        self._timestep = 0
        self._graph_version = 0
        self._materialized: nx.Graph | None = None
        self._materialized_version = -1
        self.event_log = EventLog()

    # -- lifecycle ---------------------------------------------------------------

    def initialize(self, graph: nx.Graph) -> None:
        """Adopt ``graph`` as the initial network ``G_0``.

        All initial edges are coloured black.  The input graph is copied; the
        healer never mutates the caller's graph.  Node attributes (e.g. the
        failure-domain labels of :mod:`repro.core.domains`) are copied into
        the store so they survive the EdgeStore round-trip.
        """
        ensure_simple(graph)
        self._graph = EdgeStore()
        self._materialized = None
        self._materialized_version = -1
        for node, data in graph.nodes(data=True):
            self._graph.add_node(node)
            if data:
                self._graph.set_node_data(node, data)
        for u, v in graph.edges():
            self._add_black_edge(u, v)
        self._timestep = 0
        self._bump_graph_version()
        self.event_log.clear()
        self._after_initialize()

    def _after_initialize(self) -> None:
        """Hook for subclasses that need pre-processing (Figure 1's pre-processing phase)."""

    # -- adversarial events --------------------------------------------------------

    def handle_insertion(self, node: NodeId, neighbors: Iterable[NodeId]) -> RepairReport:
        """Process the adversarial insertion of ``node`` attached to ``neighbors``."""
        self._timestep += 1
        self._bump_graph_version()
        require(node not in self._graph, f"node {node} already exists")
        neighbor_list = sorted(set(neighbors))
        for neighbor in neighbor_list:
            require(neighbor in self._graph, f"insertion neighbor {neighbor} not in the network")
            require(neighbor != node, "a node cannot be inserted adjacent to itself")
        self._graph.add_node(node)
        for neighbor in neighbor_list:
            self._add_black_edge(node, neighbor)
        report = RepairReport(
            timestep=self._timestep, inserted_node=node, action=RepairAction.INSERTION
        )
        self.event_log.record(self._timestep, EventKind.INSERT, node=node, neighbors=neighbor_list)
        self._after_insertion(node, neighbor_list, report)
        return report

    def handle_deletion(self, node: NodeId) -> RepairReport:
        """Process the adversarial deletion of ``node`` and heal afterwards."""
        self._timestep += 1
        self._bump_graph_version()
        require(node in self._graph, f"cannot delete unknown node {node}")
        neighbors = sorted(self._graph.neighbors(node))
        incident_colors: dict[NodeId, EdgeColor] = {
            neighbor: self._graph.color(node, neighbor) for neighbor in neighbors
        }
        self._graph.remove_node(node)
        report = RepairReport(timestep=self._timestep, deleted_node=node)
        self.event_log.record(self._timestep, EventKind.DELETE, node=node, neighbors=neighbors)
        self._heal_after_deletion(node, neighbors, incident_colors, report)
        return report

    # -- subclass hooks --------------------------------------------------------------

    def _after_insertion(
        self, node: NodeId, neighbors: list[NodeId], report: RepairReport
    ) -> None:
        """Hook called after an insertion was applied (most healers do nothing)."""

    @abstractmethod
    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        """Repair the network after ``deleted`` (with the given ex-neighbours) was removed."""

    # -- graph access ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """An ``nx.Graph`` view of the healed graph ``G_t`` (do not mutate).

        The healer stores the live graph in a struct-of-arrays
        :class:`~repro.core.edgestore.EdgeStore`; this property lazily
        materializes a NetworkX snapshot for the metric/snapshot/report code
        and caches it on :attr:`graph_version`, so repeated reads of an
        unchanged graph are free.
        """
        if self._materialized is None or self._materialized_version != self._graph_version:
            self._materialized = self._graph.to_networkx()
            self._materialized_version = self._graph_version
        return self._materialized

    @property
    def graph_store(self) -> EdgeStore:
        """The live struct-of-arrays store backing :attr:`graph`.

        The harness's hot loop (adversary probes, degree tracking, replay
        membership checks) reads this directly and never pays
        materialization; treat it as read-only from outside the healer.
        """
        return self._graph

    @property
    def timestep(self) -> int:
        """The number of adversarial events processed so far."""
        return self._timestep

    def extra_summary(self) -> dict:
        """Extra healer-specific summary columns merged into the run's summary row.

        The base healer contributes nothing; wrappers such as
        :class:`repro.core.budget.BudgetedHealer` override this to surface
        metrics (deferred repairs, budget stalls, recovery time) that only
        the healer itself can observe.  Keys must not collide with the
        harness's own summary columns, and values must be JSON-serializable.
        """
        return {}

    @property
    def graph_version(self) -> int:
        """Monotonic counter bumped on every mutation of the healed graph.

        The :class:`repro.perf.engine.MetricsEngine` keys its metric cache on
        this value: two snapshots taken at the same version are guaranteed to
        see an identical graph, so the second one is free.  The counter may
        advance several times within one adversarial event (once per edge
        claimed/released); only *equality* between observations is meaningful.
        """
        return self._graph_version

    def _bump_graph_version(self) -> None:
        """Invalidate cached metrics: the healed graph is about to change."""
        self._graph_version += 1

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node`` in the healed graph (0 if absent)."""
        if node not in self._graph:
            return 0
        return self._graph.degree(node)

    def has_node(self, node: NodeId) -> bool:
        """Return whether ``node`` is currently in the healed graph (O(1))."""
        return node in self._graph

    def nodes(self) -> set[NodeId]:
        """Return the current node set of the healed graph."""
        return set(self._graph.nodes())

    # -- edge helpers shared with subclasses -----------------------------------------------

    def _add_black_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add a black (adversarial/original) edge; returns whether the edge is new."""
        if u == v:
            return False
        slot = self._graph.edge_slot(u, v)
        if slot is not None:
            # An adversarial edge between nodes already connected by a healing
            # edge: remember that the pair is also black so the edge survives
            # any later retirement of the healing cloud.  Attribute-only
            # changes never bumped the version counter, so drop the cached
            # materialization by hand.
            self._graph.set_slot_was_black(slot, True)
            self._materialized = None
            return False
        self._bump_graph_version()
        self._graph.add_edge(u, v, color=BLACK, was_black=True)
        return True

    def _add_plain_edge(self, u: NodeId, v: NodeId, report: RepairReport) -> bool:
        """Add an (uncoloured) healing edge; used by baselines that ignore colours."""
        if u == v or self._graph.has_edge(u, v):
            return False
        self._bump_graph_version()
        self._graph.add_edge(u, v, color=BLACK, was_black=False)
        report.edges_added.append((u, v))
        return True
