"""Budget-limited healing: a reconfiguration-budget wrapper over any healer.

Optical circuit switches and patch-panel fabrics (InfiniteHBD, PAPERS.md)
cannot rewire arbitrarily fast: only a bounded number of edge swaps can be
executed per step.  :class:`BudgetedHealer` models that constraint around any
registered healer — the *inner* healer plans repairs on its own unconstrained
copy of the network, while the wrapper owns the *deployed* graph and applies
the planned edge changes at most ``budget`` per adversarial event, deferring
the rest to a FIFO queue drained on later events.

The gap between plan and deployment is the interesting signal, surfaced as
extra summary columns (:meth:`BudgetedHealer.extra_summary`):

* ``deferred_repairs`` — planned edge changes that missed their own step;
* ``budget_stalls`` — events that ended with a non-empty repair queue;
* ``pending_repairs`` — queue length when the run ended (unrepaired debt);
* ``time_to_recover`` — the longest backlog episode, in events, from the
  first deferral to the step the queue drained empty again (a whole-rack
  kill typically opens one long episode).

Everything is deterministic: the inner healer sees exactly the adversarial
event stream (its plan never depends on the wrapper's drain state), so a
replayed trace reproduces both graphs and every column bit for bit.
"""

from __future__ import annotations

import inspect
from collections import deque

import networkx as nx

from repro.core.colors import EdgeColor
from repro.core.events import RepairAction, RepairReport
from repro.core.healer import SelfHealer
from repro.scenarios.registry import HEALERS, register_healer
from repro.util.ids import NodeId
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Queue-entry op kinds.
_ADD = "add"
_REMOVE = "remove"


def _accepts(component, name: str) -> bool:
    try:
        return name in inspect.signature(component).parameters
    except (TypeError, ValueError):
        return False


@register_healer("budgeted")
class BudgetedHealer(SelfHealer):
    """Apply at most ``budget`` planned edge changes per event; defer the rest.

    ``inner`` names any registered healer (default ``xheal``); it receives
    ``inner_kwargs`` plus a derived seed and the spec's kappa when it accepts
    them.  Adversarial events (node insertions/deletions and their black
    edges) are applied to the deployed graph immediately — the adversary is
    not budget-limited, only the healer's rewiring is.
    """

    name = "budgeted"

    def __init__(
        self,
        inner: str = "xheal",
        budget: int = 4,
        inner_kwargs: dict | None = None,
        kappa: int | None = None,
        seed: int = 0,
    ):
        require(budget >= 1, "budget must be at least 1")
        super().__init__(seed=seed)
        self.budget = budget
        inner_cls = HEALERS.get(inner)
        kwargs = dict(inner_kwargs or {})
        if "seed" not in kwargs and _accepts(inner_cls, "seed"):
            kwargs["seed"] = derive_seed(seed, "budgeted-inner")
        if kappa is not None and "kappa" not in kwargs and _accepts(inner_cls, "kappa"):
            kwargs["kappa"] = kappa
        self._inner: SelfHealer = inner_cls(**kwargs)
        self.name = f"budgeted({self._inner.name},b={budget})"
        self._reset_queue_state()

    def _reset_queue_state(self) -> None:
        # Queue entries are (opid, kind, edge, step); ``_pending`` maps an
        # edge to its single live (kind, opid) — an add annihilates a pending
        # remove of the same edge and vice versa, so stale queue entries
        # whose (kind, opid) no longer matches are tombstones, skipped
        # without budget charge on drain.
        self._queue: deque[tuple[int, str, tuple[NodeId, NodeId], int]] = deque()
        self._pending: dict[tuple[NodeId, NodeId], tuple[str, int]] = {}
        self._next_opid = 0
        self.deferred_repairs = 0
        self.budget_stalls = 0
        self.time_to_recover = 0
        self._episode_start: int | None = None

    # -- lifecycle -------------------------------------------------------------

    def initialize(self, graph: nx.Graph) -> None:
        super().initialize(graph)
        self._inner.initialize(graph)
        self._reset_queue_state()

    # -- adversarial events ----------------------------------------------------

    def _after_insertion(
        self, node: NodeId, neighbors: list[NodeId], report: RepairReport
    ) -> None:
        self._inner.handle_insertion(node, neighbors)
        self._drain(report)
        self._close_step()

    def _heal_after_deletion(
        self,
        deleted: NodeId,
        neighbors: list[NodeId],
        incident_colors: dict[NodeId, EdgeColor],
        report: RepairReport,
    ) -> None:
        inner_report = self._inner.handle_deletion(deleted)
        report.note_action(RepairAction.BASELINE)
        # Cost accounting charges the *planned* repair (the messages the
        # healing protocol exchanges), not the switch actuations.
        report.messages = inner_report.messages
        report.rounds = inner_report.rounds
        for u, v in inner_report.edges_added:
            self._enqueue(_ADD, u, v)
        for u, v in inner_report.edges_removed:
            self._enqueue(_REMOVE, u, v)
        self._drain(report)
        self._close_step()

    # -- the repair queue ------------------------------------------------------

    def _enqueue(self, kind: str, u: NodeId, v: NodeId) -> None:
        edge = (u, v) if u <= v else (v, u)
        live = self._pending.get(edge)
        if live is not None:
            if live[0] == kind:
                return  # identical op already queued
            # Opposite op pending: the two annihilate — the deployed graph
            # never needed either change.
            del self._pending[edge]
            return
        opid = self._next_opid
        self._next_opid += 1
        self._pending[edge] = (kind, opid)
        self._queue.append((opid, kind, edge, self._timestep))

    def _drain(self, report: RepairReport) -> None:
        """Apply queued ops FIFO, spending at most ``budget`` actuations."""
        remaining = self.budget
        while remaining > 0 and self._queue:
            opid, kind, edge, _step = self._queue.popleft()
            if self._pending.get(edge) != (kind, opid):
                continue  # tombstone (annihilated or superseded): free
            del self._pending[edge]
            u, v = edge
            if kind == _ADD:
                if u not in self._graph or v not in self._graph:
                    continue  # endpoint died while the op waited: free drop
                if self._add_plain_edge(u, v, report):
                    remaining -= 1
            else:
                if not self._graph.has_edge(u, v):
                    continue  # already gone (e.g. its endpoint was deleted)
                self._bump_graph_version()
                self._graph.remove_edge(u, v)
                report.edges_removed.append((u, v))
                remaining -= 1

    def _pending_entries(self) -> list[tuple[int, str, tuple[NodeId, NodeId], int]]:
        return [
            entry for entry in self._queue if self._pending.get(entry[2]) == (entry[1], entry[0])
        ]

    def _close_step(self) -> None:
        """Account this event's backlog after the drain ran."""
        live = self._pending_entries()
        step = self._timestep
        self.deferred_repairs += sum(1 for entry in live if entry[3] == step)
        if live:
            self.budget_stalls += 1
            if self._episode_start is None:
                self._episode_start = step
            # An episode still open at the end of the run is measured to the
            # last event seen, so keep the running maximum current.
            self.time_to_recover = max(self.time_to_recover, step - self._episode_start + 1)
        elif self._episode_start is not None:
            self.time_to_recover = max(self.time_to_recover, step - self._episode_start + 1)
            self._episode_start = None

    # -- reporting -------------------------------------------------------------

    @property
    def pending_repairs(self) -> int:
        """Planned edge changes still waiting for switch budget."""
        return len(self._pending_entries())

    @property
    def inner_healer(self) -> SelfHealer:
        """The wrapped healer (plans on its own unconstrained graph)."""
        return self._inner

    def extra_summary(self) -> dict:
        return {
            "deferred_repairs": self.deferred_repairs,
            "budget_stalls": self.budget_stalls,
            "pending_repairs": self.pending_repairs,
            "time_to_recover": self.time_to_recover,
        }
