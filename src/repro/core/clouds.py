"""Primary and secondary expander clouds, free nodes and bridge nodes.

Section 3 of the paper introduces the vocabulary this module implements:

* a **primary cloud** is the kappa-regular expander (or clique, for small
  neighbourhoods) built among the neighbours of a deleted node,
* a **secondary cloud** is the kappa-regular expander built among one *free*
  node of each primary cloud affected by a later deletion,
* a **free node** is a node that belongs only to primary clouds,
* a **bridge node** is a node that has joined a secondary cloud on behalf of
  exactly one primary cloud ("the free node associated with a particular
  primary cloud ... that 'connects' the primary cloud with the secondary
  cloud"); the algorithm guarantees every node belongs to at most one
  secondary cloud.

The :class:`CloudRegistry` tracks every cloud, the membership maps, and the
free/bridge status of every node, and enforces those invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.colors import EdgeColor, primary_color, secondary_color
from repro.util.ids import NodeId
from repro.util.validation import require


class CloudKind(enum.Enum):
    """The two cloud flavours of the algorithm."""

    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass
class Cloud:
    """One expander cloud.

    Attributes
    ----------
    cloud_id:
        Unique identifier (also the tag of the cloud's edge colour).
    kind:
        Primary or secondary.
    color:
        The cloud's unique :class:`~repro.core.colors.EdgeColor`.
    members:
        The nodes currently belonging to the cloud.
    edges:
        The cloud's current internal edge set (normalised ``(min, max)``
        tuples).  Maintained by the healer, which owns the live graph.
    bridge_of:
        For secondary clouds only: ``{primary_cloud_id: bridge_node}`` — which
        node represents which primary cloud inside this secondary cloud.
    """

    cloud_id: int
    kind: CloudKind
    color: EdgeColor
    members: set[NodeId] = field(default_factory=set)
    edges: set[tuple[NodeId, NodeId]] = field(default_factory=set)
    bridge_of: dict[int, NodeId] = field(default_factory=dict)

    @property
    def is_primary(self) -> bool:
        """Return whether this is a primary cloud."""
        return self.kind is CloudKind.PRIMARY

    @property
    def is_secondary(self) -> bool:
        """Return whether this is a secondary cloud."""
        return self.kind is CloudKind.SECONDARY

    def size(self) -> int:
        """Return the number of member nodes."""
        return len(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cloud(id={self.cloud_id}, kind={self.kind.value}, "
            f"members={sorted(self.members)})"
        )


class CloudRegistry:
    """Bookkeeping for every cloud in the network.

    The registry maintains three indices:

    * ``cloud_id -> Cloud``
    * ``node -> set of primary cloud ids`` the node belongs to
    * ``node -> secondary cloud id`` (at most one — the algorithm's invariant
      that a node takes at most one bridge duty)
    """

    def __init__(self) -> None:
        self._clouds: dict[int, Cloud] = {}
        self._node_primary: dict[NodeId, set[int]] = {}
        self._node_secondary: dict[NodeId, int] = {}
        self._next_id = 1

    # -- creation / destruction ----------------------------------------------

    def new_primary_cloud(self, members: Iterable[NodeId]) -> Cloud:
        """Create and register a new (empty-edged) primary cloud over ``members``."""
        cloud_id = self._next_id
        self._next_id += 1
        cloud = Cloud(
            cloud_id=cloud_id,
            kind=CloudKind.PRIMARY,
            color=primary_color(cloud_id),
            members=set(members),
        )
        self._clouds[cloud_id] = cloud
        for node in cloud.members:
            self._node_primary.setdefault(node, set()).add(cloud_id)
        return cloud

    def new_secondary_cloud(self, bridge_map: dict[int, NodeId]) -> Cloud:
        """Create a secondary cloud from ``{primary_cloud_id: bridge_node}``.

        Every bridge node must currently be free (not in any other secondary
        cloud); they become non-free as a result of this call.
        """
        for primary_id, node in bridge_map.items():
            require(primary_id in self._clouds, f"unknown primary cloud {primary_id}")
            require(self._clouds[primary_id].is_primary, f"cloud {primary_id} is not primary")
            require(self.is_free(node), f"node {node} is already a bridge node")
        cloud_id = self._next_id
        self._next_id += 1
        cloud = Cloud(
            cloud_id=cloud_id,
            kind=CloudKind.SECONDARY,
            color=secondary_color(cloud_id),
            members=set(bridge_map.values()),
            bridge_of=dict(bridge_map),
        )
        self._clouds[cloud_id] = cloud
        for node in cloud.members:
            self._node_secondary[node] = cloud_id
        return cloud

    def dissolve(self, cloud_id: int) -> Cloud:
        """Unregister a cloud, releasing all membership records.

        Members of a dissolved secondary cloud become free again.  The caller
        is responsible for retiring the cloud's edges from the live graph.
        """
        require(cloud_id in self._clouds, f"unknown cloud {cloud_id}")
        cloud = self._clouds.pop(cloud_id)
        for node in cloud.members:
            if cloud.is_primary:
                memberships = self._node_primary.get(node, set())
                memberships.discard(cloud_id)
                if not memberships:
                    self._node_primary.pop(node, None)
            else:
                if self._node_secondary.get(node) == cloud_id:
                    del self._node_secondary[node]
        return cloud

    # -- membership updates ----------------------------------------------------

    def add_member(self, cloud_id: int, node: NodeId) -> None:
        """Add ``node`` to a cloud (used when sharing a free node between clouds)."""
        cloud = self.get(cloud_id)
        cloud.members.add(node)
        if cloud.is_primary:
            self._node_primary.setdefault(node, set()).add(cloud_id)
        else:
            existing = self._node_secondary.get(node)
            require(
                existing is None or existing == cloud_id,
                f"node {node} already belongs to secondary cloud {existing}",
            )
            self._node_secondary[node] = cloud_id

    def remove_member(self, cloud_id: int, node: NodeId) -> None:
        """Remove ``node`` from a cloud (typically because the adversary deleted it)."""
        cloud = self.get(cloud_id)
        cloud.members.discard(node)
        if cloud.is_primary:
            memberships = self._node_primary.get(node, set())
            memberships.discard(cloud_id)
            if not memberships:
                self._node_primary.pop(node, None)
        else:
            if self._node_secondary.get(node) == cloud_id:
                del self._node_secondary[node]
            cloud.bridge_of = {
                primary_id: bridge
                for primary_id, bridge in cloud.bridge_of.items()
                if bridge != node
            }

    def remove_node_everywhere(self, node: NodeId) -> tuple[list[int], int | None]:
        """Remove ``node`` from every cloud; return (primary ids, secondary id) it was in."""
        primary_ids = sorted(self._node_primary.get(node, set()))
        secondary_id = self._node_secondary.get(node)
        for cloud_id in primary_ids:
            self.remove_member(cloud_id, node)
        if secondary_id is not None:
            self.remove_member(secondary_id, node)
        return primary_ids, secondary_id

    def set_bridge(self, secondary_id: int, primary_id: int, node: NodeId) -> None:
        """Register ``node`` as the bridge of ``primary_id`` inside ``secondary_id``."""
        secondary = self.get(secondary_id)
        require(secondary.is_secondary, f"cloud {secondary_id} is not secondary")
        self.add_member(secondary_id, node)
        secondary.bridge_of[primary_id] = node

    def redirect_bridges(self, old_primary_ids: Iterable[int], new_primary_id: int) -> None:
        """Redirect secondary-cloud associations after primary clouds were merged.

        Any secondary cloud whose ``bridge_of`` references one of the merged
        primary clouds is re-pointed at the merged cloud.  If several of the
        old clouds bridged into the same secondary cloud, the first bridge is
        kept as the association; the other nodes remain members of the
        secondary cloud (their edges and non-free status are unchanged).
        """
        old_ids = set(old_primary_ids)
        for cloud in self._clouds.values():
            if not cloud.is_secondary:
                continue
            new_bridge_of: dict[int, NodeId] = {}
            for primary_id, bridge in cloud.bridge_of.items():
                target = new_primary_id if primary_id in old_ids else primary_id
                if target not in new_bridge_of:
                    new_bridge_of[target] = bridge
            cloud.bridge_of = new_bridge_of

    # -- queries -----------------------------------------------------------------

    def get(self, cloud_id: int) -> Cloud:
        """Return the cloud with the given id (raising on unknown ids)."""
        require(cloud_id in self._clouds, f"unknown cloud {cloud_id}")
        return self._clouds[cloud_id]

    def clouds(self, kind: CloudKind | None = None) -> list[Cloud]:
        """Return all clouds, optionally filtered by kind."""
        if kind is None:
            return list(self._clouds.values())
        return [cloud for cloud in self._clouds.values() if cloud.kind is kind]

    def primary_clouds_of(self, node: NodeId) -> list[int]:
        """Return the ids of the primary clouds containing ``node`` (sorted)."""
        return sorted(self._node_primary.get(node, set()))

    def secondary_cloud_of(self, node: NodeId) -> int | None:
        """Return the id of the (unique) secondary cloud containing ``node``, if any."""
        return self._node_secondary.get(node)

    def is_free(self, node: NodeId) -> bool:
        """Return whether ``node`` is a free node (no secondary-cloud duty)."""
        return node not in self._node_secondary

    def free_members(self, cloud_id: int) -> list[NodeId]:
        """Return the free members of a cloud (sorted, for determinism)."""
        cloud = self.get(cloud_id)
        return sorted(node for node in cloud.members if self.is_free(node))

    def __len__(self) -> int:
        return len(self._clouds)

    def __iter__(self) -> Iterator[Cloud]:
        return iter(self._clouds.values())

    def __contains__(self, cloud_id: int) -> bool:
        return cloud_id in self._clouds

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the registry's internal consistency (used by tests).

        Raises :class:`repro.util.validation.ValidationError` on violation.
        """
        for node, cloud_ids in self._node_primary.items():
            for cloud_id in cloud_ids:
                require(cloud_id in self._clouds, f"dangling primary membership {node}->{cloud_id}")
                require(node in self._clouds[cloud_id].members, f"node {node} missing from cloud {cloud_id}")
        for node, cloud_id in self._node_secondary.items():
            require(cloud_id in self._clouds, f"dangling secondary membership {node}->{cloud_id}")
            require(node in self._clouds[cloud_id].members, f"node {node} missing from secondary {cloud_id}")
        for cloud in self._clouds.values():
            for node in cloud.members:
                if cloud.is_primary:
                    require(
                        cloud.cloud_id in self._node_primary.get(node, set()),
                        f"membership index missing {node}->{cloud.cloud_id}",
                    )
                else:
                    require(
                        self._node_secondary.get(node) == cloud.cloud_id,
                        f"secondary index mismatch for node {node}",
                    )
            if cloud.is_secondary:
                for primary_id, bridge in cloud.bridge_of.items():
                    require(
                        bridge in cloud.members,
                        f"bridge {bridge} of cloud {primary_id} not a member of {cloud.cloud_id}",
                    )
