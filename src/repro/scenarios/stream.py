"""Durable, crash-resumable sweep directories.

A streamed sweep writes one directory::

    <dir>/0003-<slug>.jsonl       one JSONL artifact per completed point
    <dir>/0003-<slug>.jsonl.gz    (the same, gzip-encoded, with compress=True)
    <dir>/index.jsonl             append-only completion log (one line per point)
    <dir>/index-<worker>.jsonl    per-worker shard of the completion log, when
                                  an executor backend's workers write their own
                                  index lines (the subprocess fleet)
    <dir>/failures.jsonl          append-only quarantine ledger (points that
                                  exhausted their retry budget; often absent)
    <dir>/rounds.jsonl            append-only adaptive-round ledger (decision
                                  per round of an adaptive sweep; absent for
                                  plain grids)
    <dir>/MANIFEST.json           canonical manifest, written on completion

Durability protocol, per finished point:

1. the artifact is written to a hidden temp file, flushed and fsync'd,
2. the temp file is atomically renamed to its final name (and the directory
   entry fsync'd), then
3. an index line ``{"index", "fingerprint", "artifact", "label", "sha256",
   "replicate", "wall_clock_s", "timesteps", "step_cost_s"}`` is appended to
   ``index.jsonl`` and fsync'd.

An index line therefore *implies* a complete artifact: a crash between (2)
and (3) leaves a finished artifact that is simply re-run on resume — and
because artifact bytes are a pure function of the spec
(:func:`~repro.scenarios.artifacts.run_bytes`, deterministic even when
gzip-compressed), the re-run overwrites it with identical content.
``index.jsonl`` records completion order, which differs between serial,
parallel and resumed executions; the canonical, byte-stable view of a
finished sweep is the artifact files plus ``MANIFEST.json`` *modulo the cost
columns* — ``wall_clock_s`` / ``step_cost_s`` are observed timings, so
:func:`strip_costs` removes them before any identity comparison.

A single-writer stream appends to ``index.jsonl``; a multi-writer run gives
each worker its own ``index-<worker>.jsonl`` shard (same line format, same
per-line fsync) so no two processes ever contend on one file.  Every reader
— resume, ``repro report``, ``--watch``, manifest finalization — goes
through the deterministic merge :func:`iter_all_index_entries`: the legacy
``index.jsonl`` first, then the shards in sorted filename order, lines in
file order, *last write wins* per fingerprint.  A directory with only the
legacy index therefore reads exactly as before, and mixed directories (a
pool-streamed run resumed by a fleet, or vice versa) merge unambiguously.

Resumption keys on :meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`
(canonical-JSON SHA-256): a point is skipped iff its fingerprint appears in
the merged index *and* its artifact file is still present with exactly the
recorded bytes (the index line also carries a whole-file SHA-256).  Torn
tail writes in any index file (a crash mid-append) are tolerated.  The recorded
wall-clock costs feed :func:`order_most_expensive_first`, which lets a
resume schedule its missing points longest-first so parallel stragglers
finish sooner.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.scenarios.artifacts import artifact_name, maybe_decompress, run_bytes
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import canonical_fingerprint
from repro.scenarios.sweep import flatten_dotted, split_replicate
from repro.util.validation import require

INDEX_NAME = "index.jsonl"
MANIFEST_NAME = "MANIFEST.json"

#: Shard index filenames (``index-<worker>.jsonl``): one per independent
#: writer.  Shard names are restricted so sorted-filename merge order is
#: well defined and a shard can never collide with an artifact name.
_SHARD_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*\Z")


def shard_index_name(shard: str) -> str:
    """Return the index filename a worker shard writes to."""
    require(
        bool(_SHARD_NAME.match(shard)),
        f"shard name {shard!r} must be alphanumeric (plus '._-'), "
        f"starting with an alphanumeric",
    )
    return f"index-{shard}.jsonl"


def is_index_name(name: str) -> bool:
    """Return whether ``name`` is the legacy index or a worker shard of it."""
    return name == INDEX_NAME or (
        name.startswith("index-") and name.endswith(".jsonl")
    )


def shard_index_paths(directory: Path) -> list[Path]:
    """Return the directory's shard index files in merge (sorted-name) order."""
    return sorted(Path(directory).glob("index-*.jsonl"))


def index_paths(directory: Path) -> list[Path]:
    """Return every index file present, legacy first, then shards in order.

    This list *is* the merge order: readers that fold entries into a dict
    keyed by fingerprint get last-write-wins determinism for free.
    """
    directory = Path(directory)
    paths = []
    if (directory / INDEX_NAME).exists():
        paths.append(directory / INDEX_NAME)
    paths.extend(shard_index_paths(directory))
    return paths


def iter_all_index_entries(directory: Path):
    """Yield every index entry of a directory in deterministic merge order.

    Legacy ``index.jsonl`` entries first, then each ``index-<worker>.jsonl``
    shard in sorted filename order, lines in file order — so consumers that
    keep the last entry per fingerprint agree across processes and runs.
    Torn tails and unparseable lines are skipped per file, exactly like
    :func:`iter_index_entries`.
    """
    for path in index_paths(directory):
        yield from iter_index_entries(path)

#: Append-only adaptive-round ledger (``rounds.jsonl``): one fsync'd line per
#: completed adaptive round, recording the round's budget and its decisions
#: (survivors, converged/exhausted points).  Written by
#: :mod:`repro.scenarios.adaptive`; contains no timing data, so interrupted
#: and uninterrupted adaptive runs produce byte-identical ledgers.
ROUNDS_NAME = "rounds.jsonl"


def rounds_path(directory: Path) -> Path:
    """Return the adaptive-round ledger's path inside a stream directory."""
    return Path(directory) / ROUNDS_NAME


def read_rounds(directory: Path) -> list[dict]:
    """Return the round ledger's entries in append (= round) order.

    Torn tails and unparseable lines are tolerated exactly like the index
    scan — a crash mid-append loses at most the line being written, and the
    resumed driver re-derives and re-appends it.
    """
    return list(iter_index_entries(rounds_path(directory)))


def record_round(directory: Path, entry: dict) -> dict:
    """Durably append one adaptive-round decision, or verify its replay.

    The ledger is append-only and per-line fsync'd like the index.  A
    resumed adaptive run re-derives every round's decision from the recorded
    summary rows; when the ledger already holds this round, the re-derived
    entry must match the recorded one exactly — a divergence means the
    directory was produced under a different adaptive configuration (or
    edited), and refusing loudly beats silently forking the schedule.
    """
    require(
        isinstance(entry.get("round"), int) and not isinstance(entry.get("round"), bool),
        "a round entry must carry an integer 'round' number",
    )
    # Compare through a JSON round-trip so the in-memory entry and its
    # recorded line are held to the same representation (tuples vs lists,
    # float formatting).
    canonical = json.loads(json.dumps(entry, sort_keys=True))
    for recorded in read_rounds(directory):
        if recorded.get("round") == entry["round"]:
            require(
                recorded == canonical,
                f"{rounds_path(directory)} already records round "
                f"{entry['round']} with a different decision; this directory "
                f"was produced under a different adaptive configuration — "
                f"refusing to diverge from its recorded schedule",
            )
            return canonical
    path = rounds_path(directory)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return canonical


#: Append-only quarantine ledger: one fsync'd line per point that exhausted
#: its retry budget (fingerprint, attempts, exception repr, wall clock).
#: A later successful record of the same fingerprint supersedes its failure
#: lines — the ledger is history, ``MANIFEST.json``'s ``failed`` section is
#: the current verdict.
FAILURES_NAME = "failures.jsonl"

#: Per-entry manifest/index columns that record observed execution cost.
#: They are the only nondeterministic bytes a finished sweep directory
#: carries, so identity checks compare manifests through :func:`strip_costs`.
COST_KEYS = ("wall_clock_s", "step_cost_s")


def strip_costs(manifest: dict) -> dict:
    """Return ``manifest`` with the per-entry cost columns removed.

    Serial, parallel and resumed runs of one sweep produce manifests that
    are identical *after* this projection; the cost columns themselves are
    timing observations and legitimately differ run to run.
    """
    return {
        **manifest,
        "entries": [
            {key: value for key, value in entry.items() if key not in COST_KEYS}
            for entry in manifest.get("entries", [])
        ],
    }


def iter_index_entries(index_path: Path):
    """Yield the parseable dict entries of an ``index.jsonl`` file.

    Blank lines, torn tail writes and non-dict lines are skipped — the same
    tolerance the resume scan applies.
    """
    if not index_path.exists():
        return
    for line in index_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            yield entry


def detect_compression(directory: Path) -> bool | None:
    """Return the compression a directory's recorded artifacts use, if any.

    The index (legacy or any worker shard) is authoritative (its artifact
    names reflect what the writer produced); a directory with artifacts but
    no index falls back to the filenames on disk.  ``None`` means no
    evidence either way (fresh or empty directory).
    """
    directory = Path(directory)
    for entry in iter_all_index_entries(directory):
        artifact = entry.get("artifact")
        if isinstance(artifact, str) and artifact:
            return artifact.endswith(".gz")
    has_gz = any(directory.glob("[0-9]*.jsonl.gz"))
    has_plain = any(directory.glob("[0-9]*.jsonl"))
    # With no index verdict, a directory holding BOTH encodings is ambiguous;
    # guessing either way would mix encodings within one sweep (or misread
    # half the artifacts), so refuse loudly instead.
    require(
        not (has_gz and has_plain),
        f"{directory} mixes .jsonl and .jsonl.gz artifacts and its index "
        f"records no verdict; refusing to guess the sweep's encoding",
    )
    if has_gz:
        return True
    if has_plain:
        return False
    return None


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    POSIX-only: Windows neither allows opening a directory with os.open nor
    needs the directory-entry fsync for rename durability, so this step is
    simply skipped there (the file-content fsyncs still apply).
    """
    if os.name == "nt":  # pragma: no cover - POSIX CI
        return
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via fsync'd temp file + atomic rename."""
    temp = path.parent / f".tmp-{path.name}"
    with temp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    # os.replace, not Path.rename: a resume re-running a point whose artifact
    # survived an earlier crash must overwrite it on every platform
    # (Path.rename raises FileExistsError on Windows).
    os.replace(temp, path)
    _fsync_directory(path.parent)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a streamed (possibly resumed) :func:`run_scenarios` call.

    ``paths`` lists every *successful* point's artifact in submission order —
    both the freshly executed and the resumed-over points, so downstream code
    does not care which were which.  ``failed`` counts the quarantined points
    (this run's plus any carried over by a resume); a fault-free sweep has
    ``failed == 0`` and ``executed + skipped == len(paths)`` exactly as
    before.
    """

    directory: Path
    paths: list
    executed: int
    skipped: int
    failed: int = 0

    @property
    def total(self) -> int:
        """Return the number of points in the sweep (including quarantined)."""
        return len(self.paths) + self.failed

    @property
    def failures_path(self) -> Path:
        """Return the quarantine ledger's path (may not exist)."""
        return self.directory / FAILURES_NAME

    @property
    def index_path(self) -> Path:
        """Return the append-only completion log's path."""
        return self.directory / INDEX_NAME

    @property
    def manifest_path(self) -> Path:
        """Return the canonical manifest's path."""
        return self.directory / MANIFEST_NAME


class SweepStream:
    """One streamed sweep directory: durable writes, resumable reads.

    ``compress`` selects gzip artifact encoding for new writes.  ``None``
    (the default) auto-detects from what the directory already records —
    resuming a compressed sweep keeps compressing without being told — and
    falls back to uncompressed for a fresh directory.  An explicit value
    that contradicts the directory's recorded format is an error: mixing
    encodings within one sweep would break byte-identity with a serial run.

    ``shard`` makes this stream an *independent index writer*: its index
    lines go to ``index-<shard>.jsonl`` instead of the shared
    ``index.jsonl``, so many worker processes can append concurrently
    without contending on (or interleaving within) one file.  Reads —
    :meth:`completed`, compression detection — always cover the legacy
    index plus every shard, so shard writers and single-writer streams see
    one coherent directory.
    """

    def __init__(
        self,
        directory: str | Path,
        compress: bool | None = None,
        shard: str | None = None,
    ):
        self.directory = Path(directory)
        self.shard = shard
        self.directory.mkdir(parents=True, exist_ok=True)
        detected = detect_compression(self.directory)
        require(
            compress is None or detected is None or compress == detected,
            f"{self.directory} already records "
            f"{'compressed' if detected else 'uncompressed'} artifacts; "
            f"compress={compress} would mix encodings within one sweep",
        )
        self.compress = detected if compress is None else compress
        if self.compress is None:
            self.compress = False
        self._index_handle = None
        self._failures_handle = None
        # Entries recorded by *this* stream object — trusted without
        # re-reading the files back (we just wrote and fsync'd them), so
        # finalizing a fresh run never rescans the directory.
        self._recorded: dict[str, dict] = {}
        # Failures quarantined by *this* stream object (fingerprint -> ledger
        # entry); superseded by a later successful record of the same point.
        self._failed: dict[str, dict] = {}

    @property
    def index_path(self) -> Path:
        """Return the index file *this stream appends to* (legacy or shard)."""
        if self.shard is not None:
            return self.directory / shard_index_name(self.shard)
        return self.directory / INDEX_NAME

    def index_paths(self) -> list[Path]:
        """Return every index file present, in deterministic merge order."""
        return index_paths(self.directory)

    @property
    def manifest_path(self) -> Path:
        """Return the path of the canonical manifest file."""
        return self.directory / MANIFEST_NAME

    @property
    def failures_path(self) -> Path:
        """Return the path of the append-only quarantine ledger."""
        return self.directory / FAILURES_NAME

    # -- writing --------------------------------------------------------------

    def record(self, index: int, record: RunRecord, wall_clock_s: float | None = None) -> Path:
        """Durably persist one finished point; return its artifact path.

        Appends nothing until the artifact itself is safely on disk — see the
        module docstring for the crash-ordering argument.  ``wall_clock_s``
        is the point's measured execution time; it lands in the index (and
        later the manifest) as the ``wall_clock_s`` / ``step_cost_s`` cost
        columns, never in the artifact itself — artifact bytes stay a pure
        function of the spec.
        """
        fingerprint = record.spec.fingerprint()
        path = self.directory / artifact_name(index, record.spec.label, self.compress)
        data = run_bytes(record, compress=self.compress)
        _write_durable(path, data)
        # Cost accounting divides by the steps the run *executed* (the
        # summary's ``steps`` column), not the steps the spec requested: a
        # run truncated early (an adversary that ran out of events, a
        # min-nodes stop) would otherwise under-report its per-step cost.
        # A run that stopped at step 0 executed nothing divisible — its
        # step cost is None, never a ZeroDivisionError or inf.
        timesteps = record.summary.get("steps")
        if not (
            isinstance(timesteps, int)
            and not isinstance(timesteps, bool)
            and timesteps >= 0
        ):
            timesteps = record.spec.timesteps
        entry = {
            "index": index,
            "fingerprint": fingerprint,
            "artifact": path.name,
            "label": record.spec.label,
            "sha256": hashlib.sha256(data).hexdigest(),
            "replicate": split_replicate(record.spec.label)[1],
            "wall_clock_s": wall_clock_s,
            "timesteps": timesteps,
            "step_cost_s": (
                wall_clock_s / timesteps if wall_clock_s is not None and timesteps else None
            ),
        }
        if self._index_handle is None:
            self._index_handle = self.index_path.open("a", encoding="utf-8")
        self._index_handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._index_handle.flush()
        os.fsync(self._index_handle.fileno())
        self._recorded[fingerprint] = entry
        return path

    def adopt(self, entry: dict) -> None:
        """Trust an index entry durably recorded by an *independent* writer.

        Fleet workers write their own artifacts and shard index lines, then
        report the entry back; the coordinator adopts it so
        :meth:`finalize` covers the point without rescanning the directory.
        Only entries whose artifact and index line are already fsync'd on
        disk may be adopted — adopting is bookkeeping, not persistence.
        """
        require(
            isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str),
            "an adopted index entry must be a dict carrying its fingerprint",
        )
        self._recorded[entry["fingerprint"]] = entry

    def record_failure(self, index: int, spec, attempts: int, error: BaseException) -> dict:
        """Durably quarantine one point that exhausted its retries.

        Appends one fsync'd line to ``failures.jsonl`` — fingerprint, label,
        attempt count, exception repr and wall clock — and returns the
        entry.  The wall clock is observational (it never reaches the
        manifest); everything else is deterministic under a seeded fault
        schedule, so the manifest's ``failed`` section participates in
        identity comparisons the way :func:`strip_costs` entries do.
        """
        entry = {
            "index": index,
            "fingerprint": spec.fingerprint(),
            "label": spec.label,
            "attempts": attempts,
            "error": repr(error),
            "wall_clock": time.time(),
        }
        if self._failures_handle is None:
            self._failures_handle = self.failures_path.open("a", encoding="utf-8")
        self._failures_handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._failures_handle.flush()
        os.fsync(self._failures_handle.fileno())
        self._failed[entry["fingerprint"]] = entry
        return entry

    def close(self) -> None:
        """Close the index and failure-ledger handles (idempotent)."""
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None
        if self._failures_handle is not None:
            self._failures_handle.close()
            self._failures_handle = None

    def __enter__(self) -> "SweepStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- resuming -------------------------------------------------------------

    def completed(self) -> dict:
        """Return ``fingerprint -> index entry`` for every verified point.

        A point counts as completed only if its index line parses, its
        artifact file exists with the recorded whole-file SHA-256, and the
        artifact's first (spec) line fingerprints to the index entry's
        fingerprint — so deleting or tampering with an artifact (any line of
        it) re-runs exactly that point.  Unparseable index lines (torn tail
        writes from a crash) are ignored.  The scan merges the legacy index
        with every worker shard (:func:`iter_all_index_entries`), the last
        verified entry per fingerprint winning deterministically.
        """
        entries: dict[str, dict] = {}
        for entry in iter_all_index_entries(self.directory):
            if "fingerprint" not in entry:
                continue
            if self._artifact_matches(entry):
                entries[entry["fingerprint"]] = entry
        return entries

    def _artifact_matches(self, entry: dict) -> bool:
        """Verify the entry's artifact exists with exactly the recorded bytes.

        The whole-file hash catches tampering anywhere in the artifact, not
        just the spec line; the spec-line fingerprint check additionally ties
        the file to the *point* (a foreign artifact renamed into place fails
        even if internally consistent).
        """
        artifact = self.directory / str(entry.get("artifact", ""))
        if not artifact.is_file():
            return False
        try:
            data = artifact.read_bytes()
            first = json.loads(maybe_decompress(data).split(b"\n", 1)[0])
        except (OSError, EOFError, zlib.error, json.JSONDecodeError):
            # OSError covers unreadable files and bad gzip headers; EOFError/
            # zlib.error cover a truncated or corrupted compressed stream.
            return False
        if hashlib.sha256(data).hexdigest() != entry.get("sha256"):
            return False
        if first.get("kind") != "spec":
            return False
        return canonical_fingerprint(first.get("data", {})) == entry["fingerprint"]

    def failed(self, exclude: dict | None = None) -> dict:
        """Return ``fingerprint -> ledger entry`` for every quarantined point.

        Scans ``failures.jsonl`` with the same torn-tail tolerance the index
        scan applies; the *last* line per fingerprint wins (a point retried
        and re-quarantined across resumes keeps its freshest attempt count).
        Fingerprints in ``exclude`` — typically :meth:`completed`'s map —
        are dropped: a recorded success supersedes any earlier failure.
        """
        entries: dict[str, dict] = {}
        for entry in iter_index_entries(self.failures_path):
            fingerprint = entry.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                entries[fingerprint] = entry
        for fingerprint in exclude or ():
            entries.pop(fingerprint, None)
        return entries

    # -- finishing ------------------------------------------------------------

    def finalize(self, specs, verified: dict | None = None, failed: dict | None = None) -> dict:
        """Write ``MANIFEST.json`` for a fully recorded sweep; return the manifest.

        The manifest lists every successful point in submission order with
        its fingerprint, artifact name, replicate id and cost columns, plus
        a ``failed`` section listing every quarantined point (index,
        fingerprint, label, attempts, exception repr — no wall clock, so
        under a deterministic fault schedule the section is byte-stable).
        Everything except the cost columns is a deterministic function of
        the spec list and the failure history, so serial, parallel and
        resumed runs of the same sweep produce manifests identical under
        :func:`strip_costs`.  Raises if any point is neither recorded nor
        quarantined (the sweep is not actually finished).

        ``verified`` is the ``fingerprint -> entry`` map of pre-existing
        points already checked by :meth:`completed` (the resume path passes
        the map it scanned before executing); ``failed`` is the carried-over
        quarantine map from :meth:`failed`.  Entries recorded or quarantined
        by this stream object are trusted as-is and win over carried maps;
        a success always supersedes a failure.  When ``verified`` is
        omitted the directory is scanned — only then does finalizing
        re-read artifacts.
        """
        completed = dict(self.completed() if verified is None else verified)
        completed.update(self._recorded)
        failed_map = dict(failed or {})
        failed_map.update(self._failed)
        entries = []
        failed_entries = []
        missing = []
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint()
            if fingerprint in completed:
                # The recorded artifact name normally equals
                # artifact_name(index, spec.label); it differs only when a
                # resume reordered the spec list, and then the recorded name
                # is the one that exists on disk.
                recorded = completed[fingerprint]
                entries.append(
                    {
                        "index": index,
                        "fingerprint": fingerprint,
                        "artifact": recorded["artifact"],
                        "label": spec.label,
                        "sha256": recorded.get("sha256"),
                        "replicate": split_replicate(spec.label)[1],
                        "wall_clock_s": recorded.get("wall_clock_s"),
                        "step_cost_s": recorded.get("step_cost_s"),
                    }
                )
                continue
            if fingerprint in failed_map:
                quarantined = failed_map[fingerprint]
                failed_entries.append(
                    {
                        "index": index,
                        "fingerprint": fingerprint,
                        "label": spec.label,
                        "attempts": quarantined.get("attempts"),
                        "error": quarantined.get("error"),
                    }
                )
                continue
            missing.append(index)
        require(
            not missing,
            f"cannot finalize sweep stream at {self.directory}: "
            f"points {missing} have no recorded artifact",
        )
        manifest = {
            "points": len(entries),
            "compressed": self.compress,
            "entries": entries,
            "failed": failed_entries,
        }
        _write_durable(
            self.manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        return manifest


# -- cost-aware resume scheduling ---------------------------------------------

#: Above this many (missing x completed) pairs the neighbor scan would cost
#: more than it saves; scheduling falls back to submission order.
_NEIGHBOR_SCAN_LIMIT = 1_000_000


def order_most_expensive_first(spec_list, fingerprints, completed, todo):
    """Order the missing point indices by estimated cost, descending.

    Each missing point's wall clock is estimated from its *neighbors along
    the varying axes* — completed points whose flattened specs differ from
    it in at most one varying key (``name`` excluded; a replicate's siblings
    differ only in ``seed`` and so count as neighbors).  Points with no
    neighbor fall back to the mean completed cost.  Ties keep submission
    order, so the schedule is deterministic; execution order only affects
    ``index.jsonl``, never artifact bytes.
    """
    known: dict[int, float] = {}
    for index, fingerprint in enumerate(fingerprints):
        entry = completed.get(fingerprint)
        cost = entry.get("wall_clock_s") if entry else None
        # A torn or hand-edited index line can carry any JSON number — NaN,
        # inf, or a negative — and a single such entry would otherwise poison
        # every neighbor estimate (NaN propagates through the mean; -inf
        # pins its neighbors last).  Costs are wall clocks: finite and
        # non-negative, or ignored.
        if (
            isinstance(cost, (int, float))
            and not isinstance(cost, bool)
            and math.isfinite(cost)
            and cost >= 0.0
        ):
            known[index] = float(cost)
    todo = list(todo)
    if not known or not todo:
        return todo
    if len(known) * len(todo) > _NEIGHBOR_SCAN_LIMIT:
        return todo
    flats = {index: flatten_dotted(spec_list[index].to_dict()) for index in (*known, *todo)}
    for flat in flats.values():
        flat.pop("name", None)
    indices = sorted(flats)
    keys = sorted({key for flat in flats.values() for key in flat})
    # Keys that take identical value-partitions across the grid are one
    # effective axis (e.g. a kappa sweep moves both healer_kwargs.kappa and
    # the synced run-parameter kappa) — count them as a single difference.
    signatures: dict[tuple, str] = {}
    for key in keys:
        signature = tuple(
            json.dumps(flats[index].get(key), sort_keys=True) for index in indices
        )
        if len(set(signature)) > 1:
            signatures.setdefault(signature, key)
    axes = list(signatures.values())
    mean_cost = sum(known.values()) / len(known)

    def estimate(missing: int) -> float:
        target = flats[missing]
        neighbors = [
            cost
            for index, cost in known.items()
            if sum(1 for key in axes if flats[index].get(key) != target.get(key)) <= 1
        ]
        return sum(neighbors) / len(neighbors) if neighbors else mean_cost

    return sorted(todo, key=lambda index: (-estimate(index), index))
