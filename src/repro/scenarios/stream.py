"""Durable, crash-resumable sweep directories.

A streamed sweep writes one directory::

    <dir>/0003-<slug>.jsonl    one JSONL artifact per completed point
    <dir>/index.jsonl          append-only completion log (one line per point)
    <dir>/MANIFEST.json        canonical manifest, written on completion

Durability protocol, per finished point:

1. the artifact is written to a hidden temp file, flushed and fsync'd,
2. the temp file is atomically renamed to its final name (and the directory
   entry fsync'd), then
3. an index line ``{"index", "fingerprint", "artifact", "label"}`` is
   appended to ``index.jsonl`` and fsync'd.

An index line therefore *implies* a complete artifact: a crash between (2)
and (3) leaves a finished artifact that is simply re-run on resume — and
because artifact bytes are a pure function of the spec
(:func:`~repro.scenarios.artifacts.run_lines`), the re-run overwrites it with
identical content.  ``index.jsonl`` records completion order, which differs
between serial, parallel and resumed executions; the canonical, byte-stable
view of a finished sweep is the artifact files plus ``MANIFEST.json``.

Resumption keys on :meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`
(canonical-JSON SHA-256): a point is skipped iff its fingerprint appears in
the index *and* its artifact file is still present with exactly the recorded
bytes (the index line also carries a whole-file SHA-256).  Torn tail writes
in the index (a crash mid-append) are tolerated and ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.scenarios.artifacts import artifact_name, run_lines
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import canonical_fingerprint
from repro.util.validation import require

INDEX_NAME = "index.jsonl"
MANIFEST_NAME = "MANIFEST.json"


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    POSIX-only: Windows neither allows opening a directory with os.open nor
    needs the directory-entry fsync for rename durability, so this step is
    simply skipped there (the file-content fsyncs still apply).
    """
    if os.name == "nt":  # pragma: no cover - POSIX CI
        return
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via fsync'd temp file + atomic rename."""
    temp = path.parent / f".tmp-{path.name}"
    with temp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    # os.replace, not Path.rename: a resume re-running a point whose artifact
    # survived an earlier crash must overwrite it on every platform
    # (Path.rename raises FileExistsError on Windows).
    os.replace(temp, path)
    _fsync_directory(path.parent)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a streamed (possibly resumed) :func:`run_scenarios` call.

    ``paths`` lists every point's artifact in submission order — both the
    freshly executed and the resumed-over points, so downstream code does not
    care which were which.  ``executed + skipped == len(paths)``.
    """

    directory: Path
    paths: list
    executed: int
    skipped: int

    @property
    def total(self) -> int:
        """Return the number of points in the sweep."""
        return len(self.paths)

    @property
    def index_path(self) -> Path:
        """Return the append-only completion log's path."""
        return self.directory / INDEX_NAME

    @property
    def manifest_path(self) -> Path:
        """Return the canonical manifest's path."""
        return self.directory / MANIFEST_NAME


class SweepStream:
    """One streamed sweep directory: durable writes, resumable reads."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._index_handle = None
        # Entries recorded by *this* stream object — trusted without
        # re-reading the files back (we just wrote and fsync'd them), so
        # finalizing a fresh run never rescans the directory.
        self._recorded: dict[str, dict] = {}

    @property
    def index_path(self) -> Path:
        """Return the path of the append-only index file."""
        return self.directory / INDEX_NAME

    @property
    def manifest_path(self) -> Path:
        """Return the path of the canonical manifest file."""
        return self.directory / MANIFEST_NAME

    # -- writing --------------------------------------------------------------

    def record(self, index: int, record: RunRecord) -> Path:
        """Durably persist one finished point; return its artifact path.

        Appends nothing until the artifact itself is safely on disk — see the
        module docstring for the crash-ordering argument.
        """
        fingerprint = record.spec.fingerprint()
        path = self.directory / artifact_name(index, record.spec.label)
        text = "\n".join(run_lines(record)) + "\n"
        _write_durable(path, text)
        entry = {
            "index": index,
            "fingerprint": fingerprint,
            "artifact": path.name,
            "label": record.spec.label,
            "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        }
        if self._index_handle is None:
            self._index_handle = self.index_path.open("a", encoding="utf-8")
        self._index_handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._index_handle.flush()
        os.fsync(self._index_handle.fileno())
        self._recorded[fingerprint] = entry
        return path

    def close(self) -> None:
        """Close the index handle (idempotent)."""
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None

    def __enter__(self) -> "SweepStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- resuming -------------------------------------------------------------

    def completed(self) -> dict:
        """Return ``fingerprint -> index entry`` for every verified point.

        A point counts as completed only if its index line parses, its
        artifact file exists with the recorded whole-file SHA-256, and the
        artifact's first (spec) line fingerprints to the index entry's
        fingerprint — so deleting or tampering with an artifact (any line of
        it) re-runs exactly that point.  Unparseable index lines (torn tail
        writes from a crash) are ignored.
        """
        entries: dict[str, dict] = {}
        if not self.index_path.exists():
            return entries
        for line in self.index_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                continue
            if self._artifact_matches(entry):
                entries[entry["fingerprint"]] = entry
        return entries

    def _artifact_matches(self, entry: dict) -> bool:
        """Verify the entry's artifact exists with exactly the recorded bytes.

        The whole-file hash catches tampering anywhere in the artifact, not
        just the spec line; the spec-line fingerprint check additionally ties
        the file to the *point* (a foreign artifact renamed into place fails
        even if internally consistent).
        """
        artifact = self.directory / str(entry.get("artifact", ""))
        if not artifact.is_file():
            return False
        try:
            data = artifact.read_bytes()
            first = json.loads(data.split(b"\n", 1)[0])
        except (OSError, json.JSONDecodeError):
            return False
        if hashlib.sha256(data).hexdigest() != entry.get("sha256"):
            return False
        if first.get("kind") != "spec":
            return False
        return canonical_fingerprint(first.get("data", {})) == entry["fingerprint"]

    # -- finishing ------------------------------------------------------------

    def finalize(self, specs, verified: dict | None = None) -> list:
        """Write ``MANIFEST.json`` for a fully recorded sweep; return its entries.

        The manifest lists every point in submission order with its
        fingerprint and artifact name — a deterministic function of the spec
        list alone, so serial, parallel and resumed runs of the same sweep
        produce byte-identical manifests.  Raises if any point is missing
        (the sweep is not actually finished).

        ``verified`` is the ``fingerprint -> entry`` map of pre-existing
        points already checked by :meth:`completed` (the resume path passes
        the map it scanned before executing); entries recorded by this
        stream object are trusted as-is.  When ``verified`` is omitted the
        directory is scanned — only then does finalizing re-read artifacts.
        """
        completed = dict(self.completed() if verified is None else verified)
        completed.update(self._recorded)
        entries = []
        missing = []
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint()
            if fingerprint not in completed:
                missing.append(index)
                continue
            # The recorded artifact name normally equals
            # artifact_name(index, spec.label); it differs only when a resume
            # reordered the spec list, and then the recorded name is the one
            # that exists on disk.
            entries.append(
                {
                    "index": index,
                    "fingerprint": fingerprint,
                    "artifact": completed[fingerprint]["artifact"],
                    "label": spec.label,
                    "sha256": completed[fingerprint].get("sha256"),
                }
            )
        require(
            not missing,
            f"cannot finalize sweep stream at {self.directory}: "
            f"points {missing} have no recorded artifact",
        )
        manifest = {"points": len(entries), "entries": entries}
        _write_durable(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return entries
