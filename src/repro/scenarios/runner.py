"""Scenario execution: single runs, parallel sweeps, portable run records.

:func:`run_scenarios` executes independent scenarios (typically a
:meth:`~repro.scenarios.sweep.SweepSpec.expand` grid) either inline or across
a :class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is by
construction:

* every spec's seeds are fixed at expansion time (nothing about execution
  order or worker placement feeds any RNG), and
* results are assembled by submission index, not completion order,

so ``workers=4`` returns byte-identical records to ``workers=1``.

What crosses the process boundary is a :class:`RunRecord` — the JSON-safe
projection of an :class:`~repro.harness.experiment.ExperimentResult` (spec,
summary row, timeline rows, adversarial trace, cache stats) — rather than
the result object itself, which drags whole graphs along.  The record is
also exactly what :mod:`repro.scenarios.artifacts` persists to JSONL.

Execution is additionally *self-healing*: a
:class:`~repro.scenarios.policy.PointPolicy` bounds each point's wall clock
and grants it retries, and the pooled loop survives the failure modes real
worker fleets exhibit — a worker process dying (``BrokenProcessPool``), a
point hanging past its timeout, or a poison exception that cannot cross the
process boundary.  In every case the pool is respawned, in-flight innocents
are re-queued uncharged, and only the culpable point is charged an attempt;
a point that exhausts ``max_retries`` is quarantined (streamed runs record
it durably in ``failures.jsonl`` and keep going; buffered runs flush every
already-completed point, then re-raise).  Because artifact bytes are a pure
function of the spec, re-running an innocent point is always safe.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter, deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.adversary.base import AdversaryEvent, EventType
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.scenarios.policy import PointPolicy
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import require


def event_to_dict(event: AdversaryEvent) -> dict:
    """Serialize one adversarial event to a JSON-safe dict."""
    return {
        "type": event.type.value,
        "node": event.node,
        "neighbors": list(event.neighbors),
    }


def event_from_dict(data: dict) -> AdversaryEvent:
    """Rebuild an adversarial event from :func:`event_to_dict` output."""
    return AdversaryEvent(
        type=EventType(data["type"]),
        node=data["node"],
        neighbors=tuple(data.get("neighbors", ())),
    )


def timeline_rows(result: ExperimentResult) -> list[dict]:
    """Flatten a result's metric timeline into JSON-safe rows."""
    rows: list[dict] = []
    for entry in result.timeline.entries:
        rows.append(
            {
                "timestep": entry.timestep,
                "worst_degree_ratio": entry.worst_degree_ratio,
                "healed": entry.healed.as_dict(),
                "ghost": entry.ghost.as_dict(),
            }
        )
    return rows


@dataclass(frozen=True)
class RunRecord:
    """The portable, JSON-safe outcome of one scenario run.

    Everything here survives ``to_dict -> JSON -> from_dict`` exactly, which
    is what makes run artifacts replayable and sweep results mergeable across
    worker processes.
    """

    spec: ScenarioSpec
    summary: dict
    timeline: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)

    @classmethod
    def from_result(cls, spec: ScenarioSpec, result: ExperimentResult) -> "RunRecord":
        """Project an experiment result down to its portable record."""
        return cls(
            spec=spec,
            summary=dict(result.summary_row()),
            timeline=timeline_rows(result),
            trace=[event_to_dict(event) for event in result.trace],
            cache_stats=dict(result.cache_stats),
        )

    def events(self) -> list[AdversaryEvent]:
        """Return the recorded adversarial trace as event objects."""
        return [event_from_dict(data) for data in self.trace]

    def to_dict(self) -> dict:
        """Return the record as one plain dict (see also the JSONL artifact)."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary,
            "timeline": self.timeline,
            "trace": self.trace,
            "cache_stats": self.cache_stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            summary=dict(data["summary"]),
            timeline=list(data.get("timeline", [])),
            trace=list(data.get("trace", [])),
            cache_stats=dict(data.get("cache_stats", {})),
        )


def execute_spec(spec: ScenarioSpec) -> RunRecord:
    """Compile and run one scenario; return its :class:`RunRecord`.

    This is the unit of work :func:`run_scenarios` ships to worker
    processes, so it must stay importable at module top level (picklable by
    reference) and must return only portable data.
    """
    result = run_experiment(spec.compile())
    return RunRecord.from_result(spec, result)


def execute_spec_timed(spec: ScenarioSpec) -> tuple[RunRecord, float]:
    """Run one scenario and measure its wall clock *in the executing process*.

    The streamed paths ship this to workers instead of :func:`execute_spec`
    so the recorded ``wall_clock_s`` cost column measures the point's own
    execution, not queueing or transfer time.  The timing never enters the
    :class:`RunRecord` (artifact bytes stay a pure function of the spec); it
    only rides alongside, into the stream index.
    """
    start = time.perf_counter()
    record = execute_spec(spec)
    return record, time.perf_counter() - start


def _inject_worker_chaos(spec: ScenarioSpec, attempt: int) -> None:
    """Apply this attempt's scheduled worker fault, when chaos is active."""
    from repro.scenarios.chaos import active_chaos, apply_worker_chaos

    if active_chaos() is not None:
        apply_worker_chaos(spec.fingerprint(), attempt)


def execute_point(spec: ScenarioSpec, attempt: int = 0) -> RunRecord:
    """The pooled buffered-path work unit: chaos shim, then the scenario.

    ``attempt`` numbers retries of one point (0 = first try); it feeds only
    the fault-injection schedule, never the scenario itself, so every
    attempt that completes returns identical bytes.
    """
    _inject_worker_chaos(spec, attempt)
    return execute_spec(spec)


def execute_point_timed(spec: ScenarioSpec, attempt: int = 0) -> tuple[RunRecord, float]:
    """The pooled streamed-path work unit: chaos shim, then the timed scenario.

    An injected hang sleeps *before* the timer starts, so the recorded
    ``wall_clock_s`` cost column still measures the point's own execution.
    """
    _inject_worker_chaos(spec, attempt)
    return execute_spec_timed(spec)


def build_pool(workers: int) -> ProcessPoolExecutor:
    """Construct the worker pool every pooled execution path shares.

    The single pool-construction site: initial setup, post-crash respawn and
    timeout recovery all come through here, so pool configuration (worker
    count clamping, a future ``mp_context`` choice) cannot drift between the
    happy path and the recovery paths.
    """
    return ProcessPoolExecutor(max_workers=max(1, workers))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's worker processes and abandon its futures.

    Used to enforce point timeouts (there is no cooperative way to stop a
    worker stuck in native code) and to tear down on interrupt.  Reaches
    into ``_processes`` deliberately — it is the only handle the executor
    exposes to its children — and degrades to a plain non-blocking shutdown
    if a future Python version renames it.
    """
    processes = list(getattr(pool, "_processes", {}).values() or ())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead children
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:  # pragma: no cover - defensive
            pass


def run_scenarios(
    specs: Iterable[ScenarioSpec] | Sequence[ScenarioSpec],
    workers: int = 1,
    max_pending: int | None = None,
    stream_to: str | Path | None = None,
    resume: str | Path | None = None,
    compress: bool | None = None,
    policy: PointPolicy | None = None,
    retry_failed: bool = False,
    executor: str | None = None,
):
    """Run every scenario, buffered in memory or streamed to a directory.

    ``workers=1`` executes inline (no subprocesses — simplest to debug and
    profile); ``workers>1`` fans the specs out over a process pool.  Each
    spec is validated up front so a typo in point 37 of a grid fails fast,
    before any work is scheduled.  ``max_pending`` caps in-flight submissions
    (default ``4 * workers``) so million-point grids don't materialize a
    future per point at once.

    ``executor`` names a registered execution backend (``serial``,
    ``process-pool``, ``subprocess-fleet``, or a third-party
    ``repro.executors`` entry point — see
    :mod:`repro.scenarios.executors`); ``None`` keeps the automatic
    inline-vs-pool choice above.  Backends change only *where* points
    execute, never what they produce: artifact bytes and (cost-stripped)
    manifests are identical across every backend.

    Without ``stream_to``/``resume`` the call returns ``list[RunRecord]`` in
    spec order — every record buffered in memory, as before.

    ``stream_to=<dir>`` instead durably appends each finished point to the
    directory as it completes (JSONL artifact + fsync'd index line, in
    completion order — see :mod:`repro.scenarios.stream`), keeps at most the
    in-flight window of records in memory, writes a canonical
    ``MANIFEST.json`` at the end, and returns a
    :class:`~repro.scenarios.stream.StreamResult`.  ``compress=True`` gzip-
    encodes each streamed artifact (``.jsonl.gz``, deterministic bytes — a
    decompressed compressed directory equals the uncompressed one exactly);
    readers sniff, so nothing downstream needs to be told.  ``resume=<dir>``
    streams to the same directory but first fingerprints every spec and
    skips the points the directory already records, executing exactly the
    missing ones; compression is auto-detected from the directory, the
    recorded ``wall_clock_s`` costs schedule the missing points
    most-expensive-first (so parallel resumes finish sooner), and serial,
    parallel and crash-resumed runs of the same spec list produce
    byte-identical artifacts (and manifests, modulo the cost columns).

    ``policy`` bounds each point's execution (timeout, retries, backoff —
    see :class:`~repro.scenarios.policy.PointPolicy`).  An active policy
    routes execution through the process pool even with ``workers=1``,
    because timeouts are enforced by killing the overrunning worker.  In a
    streamed run, a point that exhausts its retries is *quarantined*: its
    failure is appended durably to ``failures.jsonl``, the sweep carries on,
    and ``MANIFEST.json`` gains a ``failed`` section — degraded, never
    silently wrong.  In a buffered run the original exception re-raises
    (after every already-completed point was delivered).  ``resume=`` skips
    previously quarantined points by default; ``retry_failed=True``
    re-offers them with a fresh attempt budget.
    """
    spec_list = list(specs)
    require(workers >= 1, "workers must be at least 1")
    for spec in spec_list:
        spec.validate()
    require(
        compress is None or stream_to is not None or resume is not None,
        "compress only applies to streamed sweeps; pass stream_to=<dir> or resume=<dir>",
    )
    require(
        not retry_failed or resume is not None,
        "retry_failed only applies when resuming; pass resume=<dir>",
    )
    policy = (policy or PointPolicy()).validate()
    if stream_to is None and resume is None:
        from repro.scenarios.executors import ExecutionContext, resolve_executor

        backend = resolve_executor(executor, workers, len(spec_list))
        records: list[RunRecord | None] = [None] * len(spec_list)

        def on_complete(index: int, record: RunRecord, attempt: int) -> None:
            records[index] = record

        backend.execute(
            ExecutionContext(
                spec_list=spec_list,
                indices=range(len(spec_list)),
                workers=workers,
                max_pending=max_pending,
                policy=policy,
                timed=False,
                on_complete=on_complete,
            )
        )
        return records  # type: ignore[return-value]
    return _run_streamed(
        spec_list,
        workers,
        max_pending,
        stream_to,
        resume,
        compress,
        policy,
        retry_failed,
        executor,
    )


def _run_pooled(
    spec_list,
    indices,
    workers,
    max_pending,
    on_complete,
    fn=execute_point,
    policy: PointPolicy | None = None,
    on_quarantine=None,
) -> None:
    """Execute ``fn(spec_list[i], attempt)`` for each index on a pool.

    ``on_complete(index, result, attempt)`` fires in completion order;
    nothing beyond the in-flight window is retained here, so the caller
    decides whether to buffer (in-memory list) or stream (durable
    directory).  ``on_complete`` may raise
    :class:`~repro.scenarios.chaos.PointFault` to convert a delivered
    result into a per-point failure (the torn-write chaos path).

    Fault tolerance: a per-point failure (worker exception, poison
    exception, timeout, worker death) charges *that point* an attempt; when
    ``policy.max_retries`` is exhausted the point goes to
    ``on_quarantine(index, attempts, error)`` — or, when no quarantine sink
    is given (buffered mode), the error re-raises after every completed
    point in the same batch was delivered.  A broken pool is respawned and
    in-flight innocents are re-queued without being charged.  Retries wait
    out the policy's deterministic backoff before resubmission.
    """
    from repro.scenarios.chaos import PointFault

    policy = (policy or PointPolicy()).validate()
    window = max_pending if max_pending is not None else 4 * workers
    require(window >= 1, "max_pending must be at least 1")

    queue: deque = deque((index, 0) for index in indices)
    delayed: list = []  # (ready_monotonic, tiebreak, index, attempt) backoff heap
    pending: dict = {}  # future -> (index, attempt, seq, deadline)
    seq = 0

    def fail_point(index: int, attempt: int, error: BaseException) -> None:
        """Charge one attempt; requeue (after backoff) or quarantine."""
        nonlocal seq
        if attempt < policy.max_retries:
            delay = policy.retry_delay(
                spec_list[index].seed, spec_list[index].fingerprint(), attempt
            )
            if delay > 0:
                seq += 1
                heapq.heappush(delayed, (time.monotonic() + delay, seq, index, attempt + 1))
            else:
                queue.append((index, attempt + 1))
            return
        if on_quarantine is not None:
            on_quarantine(index, attempt + 1, error)
            return
        raise error

    def handle_broken_pool(pool, extra) -> ProcessPoolExecutor:
        """Respawn after a worker death; charge only the likely culprits.

        The executor cannot say *which* worker died holding *which* point,
        so the oldest ``min(workers, in-flight)`` submissions — the ones a
        worker could actually have been running — are charged an attempt
        and the rest are re-queued free.  With ``workers=1`` this is exact.
        """
        doomed = list(extra)  # (seq, index, attempt, error)
        for future, (index, attempt, fseq, _) in pending.items():
            doomed.append(
                (fseq, index, attempt, BrokenExecutor(f"worker died running point {index}"))
            )
        pending.clear()
        doomed.sort(key=lambda item: item[0])
        _kill_pool(pool)
        charged = doomed[: min(workers, len(doomed))]
        for _, index, attempt, _ in doomed[len(charged):]:
            queue.append((index, attempt))
        for _, index, attempt, error in charged:
            fail_point(index, attempt, error)
        return build_pool(workers)

    pool = build_pool(workers)
    try:
        while queue or delayed or pending:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, index, attempt = heapq.heappop(delayed)
                queue.append((index, attempt))
            broken_on_submit = False
            while queue and len(pending) < window:
                index, attempt = queue.popleft()
                try:
                    future = pool.submit(fn, spec_list[index], attempt)
                except BrokenExecutor:
                    queue.appendleft((index, attempt))
                    broken_on_submit = True
                    break
                seq += 1
                deadline = now + policy.timeout_s if policy.timeout_s is not None else None
                pending[future] = (index, attempt, seq, deadline)
            if broken_on_submit:
                pool = handle_broken_pool(pool, [])
                continue
            if not pending:
                # Everything left is waiting out a backoff delay.
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            timeout = None
            deadlines = [entry[3] for entry in pending.values() if entry[3] is not None]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            if delayed:
                ready_in = max(0.0, delayed[0][0] - time.monotonic())
                timeout = ready_in if timeout is None else min(timeout, ready_in)
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)

            successes: list = []  # (index, attempt, payload)
            failures: list = []  # (index, attempt, error)
            broken: list = []  # (seq, index, attempt, error)
            for future in done:
                index, attempt, fseq, _ = pending.pop(future)
                try:
                    payload = future.result()
                except BrokenExecutor as error:
                    broken.append((fseq, index, attempt, error))
                except Exception as error:
                    failures.append((index, attempt, error))
                else:
                    successes.append((index, attempt, payload))
            # Deliver every completed point FIRST (in submission-index order,
            # deterministically), so nothing already computed is lost to a
            # failure in the same batch.
            for index, attempt, payload in sorted(successes, key=lambda item: item[0]):
                try:
                    on_complete(index, payload, attempt)
                except PointFault as error:
                    failures.append((index, attempt, error))
            for index, attempt, error in sorted(failures, key=lambda item: item[0]):
                fail_point(index, attempt, error)
            if broken:
                pool = handle_broken_pool(pool, broken)
                continue
            # Enforce per-point timeouts: kill the pool (a stuck worker has no
            # cooperative stop), charge only the overdue points, re-queue the
            # innocents uncharged.
            now = time.monotonic()
            overdue = {
                future: entry
                for future, entry in pending.items()
                if entry[3] is not None and entry[3] <= now
            }
            if overdue:
                innocents = sorted(
                    (entry[2], entry[0], entry[1])
                    for future, entry in pending.items()
                    if future not in overdue
                )
                timed_out = sorted(
                    (entry[2], entry[0], entry[1]) for entry in overdue.values()
                )
                pending.clear()
                _kill_pool(pool)
                pool = build_pool(workers)
                for _, index, attempt in innocents:
                    queue.append((index, attempt))
                for _, index, attempt in timed_out:
                    fail_point(
                        index,
                        attempt,
                        TimeoutError(
                            f"point {index} exceeded timeout_s={policy.timeout_s} "
                            f"on attempt {attempt}"
                        ),
                    )
        pool.shutdown(wait=True)
    except KeyboardInterrupt:
        _kill_pool(pool)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_streamed(
    spec_list, workers, max_pending, stream_to, resume, compress, policy, retry_failed, executor=None
):
    """The ``stream_to``/``resume`` execution path of :func:`run_scenarios`."""
    from repro.scenarios.chaos import PointFault, active_chaos, chaos_decision, tear_artifact
    from repro.scenarios.executors import ExecutionContext, resolve_executor
    from repro.scenarios.stream import (
        StreamResult,
        SweepStream,
        order_most_expensive_first,
    )

    if resume is not None:
        require(
            stream_to is None or Path(stream_to) == Path(resume),
            "stream_to and resume must name the same directory when both are given",
        )
        stream_to = resume
    chaos = active_chaos()
    stream = SweepStream(stream_to, compress=compress)
    if resume is None:
        existing = stream.index_paths()
        require(
            not existing,
            f"{existing[0] if existing else stream.index_path} already exists; "
            f"pass resume=<dir> to continue that sweep, or stream to a fresh "
            f"directory",
        )
    fingerprints = [spec.fingerprint() for spec in spec_list]
    duplicated = sorted(fp for fp, count in Counter(fingerprints).items() if count > 1)
    require(
        not duplicated,
        f"streamed sweeps need distinct specs per point; duplicate fingerprints: "
        f"{[fp[:12] for fp in duplicated]}",
    )
    completed = stream.completed() if resume is not None else {}
    failed_prior = stream.failed(exclude=completed) if resume is not None else {}
    orphans = set(completed) - set(fingerprints)
    if orphans:
        # Loud, not fatal: resuming with a *changed* grid (extended axes) is
        # legitimate, but resuming with the wrong sweep file would otherwise
        # silently mix two sweeps — the orphan artifacts stay on disk while
        # MANIFEST.json (and hence `repro report`) covers only this grid.
        import warnings

        warnings.warn(
            f"{stream.directory} records {len(orphans)} point(s) that are not "
            f"part of this sweep (resumed with a different spec list?); their "
            f"artifacts remain on disk but are excluded from MANIFEST.json",
            RuntimeWarning,
            stacklevel=3,
        )
    todo = [
        index
        for index, fp in enumerate(fingerprints)
        if fp not in completed and (retry_failed or fp not in failed_prior)
    ]
    if completed and todo:
        # Schedule the missing points most-expensive-first (estimated from the
        # recorded costs of completed neighbors) so a parallel resume is not
        # left waiting on one straggler scheduled last.
        todo = order_most_expensive_first(spec_list, fingerprints, completed, todo)

    failed_now: dict[str, dict] = {}

    def record_point(index: int, payload: tuple[RunRecord, float], attempt: int = 0) -> None:
        record, wall_clock_s = payload
        if chaos is not None and chaos_decision(chaos, fingerprints[index], attempt) == "torn-write":
            tear_artifact(stream, index, record)
            raise PointFault(
                f"injected torn write for point {index} attempt {attempt}"
            )
        stream.record(index, record, wall_clock_s=wall_clock_s)

    def quarantine(index: int, attempts: int, error: BaseException) -> None:
        entry = stream.record_failure(index, spec_list[index], attempts, error)
        failed_now[fingerprints[index]] = entry

    with stream:
        backend = resolve_executor(executor, workers, len(todo))
        backend.execute(
            ExecutionContext(
                spec_list=spec_list,
                indices=todo,
                workers=workers,
                max_pending=max_pending,
                policy=policy,
                timed=True,
                on_complete=record_point,
                on_quarantine=quarantine,
                stream=stream,
            )
        )
        manifest = stream.finalize(spec_list, verified=completed, failed=failed_prior)
    entries = manifest["entries"]
    executed = len(todo) - len(failed_now)
    return StreamResult(
        directory=stream.directory,
        paths=[stream.directory / entry["artifact"] for entry in entries],
        executed=executed,
        skipped=len(entries) - executed,
        failed=len(manifest["failed"]),
    )


def run_sweep(
    sweep,
    workers: int = 1,
    stream_to: str | Path | None = None,
    resume: str | Path | None = None,
    compress: bool | None = None,
    policy: PointPolicy | None = None,
    retry_failed: bool = False,
    executor: str | None = None,
):
    """Expand a :class:`~repro.scenarios.sweep.SweepSpec` and run its grid.

    The sweep file's own ``policy`` applies unless an explicit ``policy``
    argument overrides it wholesale; likewise its ``executor`` unless an
    explicit ``executor`` argument names a backend.

    A sweep carrying an ``adaptive`` block is round-scheduled through
    :func:`~repro.scenarios.adaptive.run_adaptive` instead of expanding the
    full grid — it requires a durable directory (``stream_to``/``resume``)
    and returns an :class:`~repro.scenarios.adaptive.AdaptiveResult`.
    """
    if getattr(sweep, "adaptive", None) is not None:
        require(
            stream_to is not None or resume is not None,
            "adaptive sweeps are round-scheduled over a durable directory; "
            "pass stream_to=<dir> (or resume=<dir>)",
        )
        require(
            stream_to is None
            or resume is None
            or Path(stream_to) == Path(resume),
            "stream_to and resume must name the same directory when both are given",
        )
        from repro.scenarios.adaptive import run_adaptive

        return run_adaptive(
            sweep,
            directory=resume if resume is not None else stream_to,
            workers=workers,
            compress=compress,
            policy=policy,
            retry_failed=retry_failed,
            executor=executor,
            resume=resume is not None,
        )
    return run_scenarios(
        sweep.expand(),
        workers=workers,
        stream_to=stream_to,
        resume=resume,
        compress=compress,
        policy=policy if policy is not None else getattr(sweep, "policy", None),
        retry_failed=retry_failed,
        executor=executor if executor is not None else getattr(sweep, "executor", None),
    )
