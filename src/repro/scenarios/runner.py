"""Scenario execution: single runs, parallel sweeps, portable run records.

:func:`run_scenarios` executes independent scenarios (typically a
:meth:`~repro.scenarios.sweep.SweepSpec.expand` grid) either inline or across
a :class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is by
construction:

* every spec's seeds are fixed at expansion time (nothing about execution
  order or worker placement feeds any RNG), and
* results are assembled by submission index, not completion order,

so ``workers=4`` returns byte-identical records to ``workers=1``.

What crosses the process boundary is a :class:`RunRecord` — the JSON-safe
projection of an :class:`~repro.harness.experiment.ExperimentResult` (spec,
summary row, timeline rows, adversarial trace, cache stats) — rather than
the result object itself, which drags whole graphs along.  The record is
also exactly what :mod:`repro.scenarios.artifacts` persists to JSONL.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.adversary.base import AdversaryEvent, EventType
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import require


def event_to_dict(event: AdversaryEvent) -> dict:
    """Serialize one adversarial event to a JSON-safe dict."""
    return {
        "type": event.type.value,
        "node": event.node,
        "neighbors": list(event.neighbors),
    }


def event_from_dict(data: dict) -> AdversaryEvent:
    """Rebuild an adversarial event from :func:`event_to_dict` output."""
    return AdversaryEvent(
        type=EventType(data["type"]),
        node=data["node"],
        neighbors=tuple(data.get("neighbors", ())),
    )


def timeline_rows(result: ExperimentResult) -> list[dict]:
    """Flatten a result's metric timeline into JSON-safe rows."""
    rows: list[dict] = []
    for entry in result.timeline.entries:
        rows.append(
            {
                "timestep": entry.timestep,
                "worst_degree_ratio": entry.worst_degree_ratio,
                "healed": entry.healed.as_dict(),
                "ghost": entry.ghost.as_dict(),
            }
        )
    return rows


@dataclass(frozen=True)
class RunRecord:
    """The portable, JSON-safe outcome of one scenario run.

    Everything here survives ``to_dict -> JSON -> from_dict`` exactly, which
    is what makes run artifacts replayable and sweep results mergeable across
    worker processes.
    """

    spec: ScenarioSpec
    summary: dict
    timeline: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)

    @classmethod
    def from_result(cls, spec: ScenarioSpec, result: ExperimentResult) -> "RunRecord":
        """Project an experiment result down to its portable record."""
        return cls(
            spec=spec,
            summary=dict(result.summary_row()),
            timeline=timeline_rows(result),
            trace=[event_to_dict(event) for event in result.trace],
            cache_stats=dict(result.cache_stats),
        )

    def events(self) -> list[AdversaryEvent]:
        """Return the recorded adversarial trace as event objects."""
        return [event_from_dict(data) for data in self.trace]

    def to_dict(self) -> dict:
        """Return the record as one plain dict (see also the JSONL artifact)."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary,
            "timeline": self.timeline,
            "trace": self.trace,
            "cache_stats": self.cache_stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            summary=dict(data["summary"]),
            timeline=list(data.get("timeline", [])),
            trace=list(data.get("trace", [])),
            cache_stats=dict(data.get("cache_stats", {})),
        )


def execute_spec(spec: ScenarioSpec) -> RunRecord:
    """Compile and run one scenario; return its :class:`RunRecord`.

    This is the unit of work :func:`run_scenarios` ships to worker
    processes, so it must stay importable at module top level (picklable by
    reference) and must return only portable data.
    """
    result = run_experiment(spec.compile())
    return RunRecord.from_result(spec, result)


def execute_spec_timed(spec: ScenarioSpec) -> tuple[RunRecord, float]:
    """Run one scenario and measure its wall clock *in the executing process*.

    The streamed paths ship this to workers instead of :func:`execute_spec`
    so the recorded ``wall_clock_s`` cost column measures the point's own
    execution, not queueing or transfer time.  The timing never enters the
    :class:`RunRecord` (artifact bytes stay a pure function of the spec); it
    only rides alongside, into the stream index.
    """
    start = time.perf_counter()
    record = execute_spec(spec)
    return record, time.perf_counter() - start


def run_scenarios(
    specs: Iterable[ScenarioSpec] | Sequence[ScenarioSpec],
    workers: int = 1,
    max_pending: int | None = None,
    stream_to: str | Path | None = None,
    resume: str | Path | None = None,
    compress: bool | None = None,
):
    """Run every scenario, buffered in memory or streamed to a directory.

    ``workers=1`` executes inline (no subprocesses — simplest to debug and
    profile); ``workers>1`` fans the specs out over a process pool.  Each
    spec is validated up front so a typo in point 37 of a grid fails fast,
    before any work is scheduled.  ``max_pending`` caps in-flight submissions
    (default ``4 * workers``) so million-point grids don't materialize a
    future per point at once.

    Without ``stream_to``/``resume`` the call returns ``list[RunRecord]`` in
    spec order — every record buffered in memory, as before.

    ``stream_to=<dir>`` instead durably appends each finished point to the
    directory as it completes (JSONL artifact + fsync'd index line, in
    completion order — see :mod:`repro.scenarios.stream`), keeps at most the
    in-flight window of records in memory, writes a canonical
    ``MANIFEST.json`` at the end, and returns a
    :class:`~repro.scenarios.stream.StreamResult`.  ``compress=True`` gzip-
    encodes each streamed artifact (``.jsonl.gz``, deterministic bytes — a
    decompressed compressed directory equals the uncompressed one exactly);
    readers sniff, so nothing downstream needs to be told.  ``resume=<dir>``
    streams to the same directory but first fingerprints every spec and
    skips the points the directory already records, executing exactly the
    missing ones; compression is auto-detected from the directory, the
    recorded ``wall_clock_s`` costs schedule the missing points
    most-expensive-first (so parallel resumes finish sooner), and serial,
    parallel and crash-resumed runs of the same spec list produce
    byte-identical artifacts (and manifests, modulo the cost columns).
    """
    spec_list = list(specs)
    require(workers >= 1, "workers must be at least 1")
    for spec in spec_list:
        spec.validate()
    require(
        compress is None or stream_to is not None or resume is not None,
        "compress only applies to streamed sweeps; pass stream_to=<dir> or resume=<dir>",
    )
    if stream_to is None and resume is None:
        if workers == 1 or len(spec_list) <= 1:
            return [execute_spec(spec) for spec in spec_list]
        records: list[RunRecord | None] = [None] * len(spec_list)

        def on_complete(index: int, record: RunRecord) -> None:
            records[index] = record

        _run_pooled(spec_list, range(len(spec_list)), workers, max_pending, on_complete)
        return records  # type: ignore[return-value]
    return _run_streamed(spec_list, workers, max_pending, stream_to, resume, compress)


def _run_pooled(spec_list, indices, workers, max_pending, on_complete, fn=execute_spec) -> None:
    """Execute ``fn(spec_list[i])`` for each index on a pool, bounded in flight.

    ``on_complete(index, result)`` fires in completion order; nothing beyond
    the in-flight window is retained here, so the caller decides whether to
    buffer (in-memory list) or stream (durable directory).
    """
    todo = list(indices)
    window = max_pending if max_pending is not None else 4 * workers
    require(window >= 1, "max_pending must be at least 1")
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {}
        cursor = 0
        while pending or cursor < len(todo):
            while cursor < len(todo) and len(pending) < window:
                index = todo[cursor]
                pending[pool.submit(fn, spec_list[index])] = index
                cursor += 1
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                on_complete(pending.pop(future), future.result())


def _run_streamed(spec_list, workers, max_pending, stream_to, resume, compress):
    """The ``stream_to``/``resume`` execution path of :func:`run_scenarios`."""
    from repro.scenarios.stream import (
        StreamResult,
        SweepStream,
        order_most_expensive_first,
    )

    if resume is not None:
        require(
            stream_to is None or Path(stream_to) == Path(resume),
            "stream_to and resume must name the same directory when both are given",
        )
        stream_to = resume
    stream = SweepStream(stream_to, compress=compress)
    if resume is None:
        require(
            not stream.index_path.exists(),
            f"{stream.index_path} already exists; pass resume=<dir> to continue "
            f"that sweep, or stream to a fresh directory",
        )
    fingerprints = [spec.fingerprint() for spec in spec_list]
    duplicated = sorted(fp for fp, count in Counter(fingerprints).items() if count > 1)
    require(
        not duplicated,
        f"streamed sweeps need distinct specs per point; duplicate fingerprints: "
        f"{[fp[:12] for fp in duplicated]}",
    )
    completed = stream.completed() if resume is not None else {}
    orphans = set(completed) - set(fingerprints)
    if orphans:
        # Loud, not fatal: resuming with a *changed* grid (extended axes) is
        # legitimate, but resuming with the wrong sweep file would otherwise
        # silently mix two sweeps — the orphan artifacts stay on disk while
        # MANIFEST.json (and hence `repro report`) covers only this grid.
        import warnings

        warnings.warn(
            f"{stream.directory} records {len(orphans)} point(s) that are not "
            f"part of this sweep (resumed with a different spec list?); their "
            f"artifacts remain on disk but are excluded from MANIFEST.json",
            RuntimeWarning,
            stacklevel=3,
        )
    todo = [index for index, fp in enumerate(fingerprints) if fp not in completed]
    if completed and todo:
        # Schedule the missing points most-expensive-first (estimated from the
        # recorded costs of completed neighbors) so a parallel resume is not
        # left waiting on one straggler scheduled last.
        todo = order_most_expensive_first(spec_list, fingerprints, completed, todo)

    def record_timed(index: int, payload: tuple[RunRecord, float]) -> None:
        record, wall_clock_s = payload
        stream.record(index, record, wall_clock_s=wall_clock_s)

    with stream:
        if workers == 1 or len(todo) <= 1:
            for index in todo:
                record_timed(index, execute_spec_timed(spec_list[index]))
        else:
            _run_pooled(
                spec_list, todo, workers, max_pending, record_timed, fn=execute_spec_timed
            )
        entries = stream.finalize(spec_list, verified=completed)
    return StreamResult(
        directory=stream.directory,
        paths=[stream.directory / entry["artifact"] for entry in entries],
        executed=len(todo),
        skipped=len(spec_list) - len(todo),
    )


def run_sweep(
    sweep,
    workers: int = 1,
    stream_to: str | Path | None = None,
    resume: str | Path | None = None,
    compress: bool | None = None,
):
    """Expand a :class:`~repro.scenarios.sweep.SweepSpec` and run its grid."""
    return run_scenarios(
        sweep.expand(),
        workers=workers,
        stream_to=stream_to,
        resume=resume,
        compress=compress,
    )
