"""The serializable scenario specification and its compilation to the harness.

A :class:`ScenarioSpec` names every component of an experiment — healer,
adversary, initial topology, each with keyword arguments — plus the run
parameters of :class:`~repro.harness.experiment.ExperimentConfig`.  It is
plain data: two specs are equal iff they describe the same experiment, and
``from_json(spec.to_json()) == spec`` exactly.

Compilation (:meth:`ScenarioSpec.compile`) resolves the names through the
:mod:`repro.scenarios.registry` registries and produces the
``ExperimentConfig`` today's :func:`~repro.harness.experiment.run_experiment`
consumes — the old imperative path stays the single execution engine.

Seeds are derived, not shared: a component whose kwargs omit ``seed`` gets
``derive_seed(spec.seed, <role>)``, so the healer's and the adversary's
random streams are independent (the model's obliviousness assumption) yet
the whole scenario is reproducible from the single ``seed`` field.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import asdict, dataclass, field, fields, replace

from repro.harness.experiment import ExperimentConfig
from repro.scenarios.registry import ADVERSARIES, HEALERS, TOPOLOGIES
from repro.util.rng import derive_seed
from repro.util.validation import ValidationError, require


def _check_json_exact(kwargs: dict, what: str) -> None:
    """Require ``kwargs`` to survive a JSON round-trip unchanged."""
    try:
        round_tripped = json.loads(json.dumps(kwargs))
    except (TypeError, ValueError) as error:
        raise ValidationError(f"{what} are not JSON-serializable: {error}") from None
    require(
        round_tripped == kwargs,
        f"{what} do not round-trip through JSON exactly "
        f"(use only JSON-native types: str/int/float/bool/None/list/dict); got {kwargs!r}",
    )


def canonical_fingerprint(data: dict) -> str:
    """Return the SHA-256 hex digest of ``data``'s canonical JSON form.

    Canonical means sorted keys and compact separators, so two dicts that
    differ only in key insertion order fingerprint identically.  This is the
    identity resumable sweeps key on: a point already recorded under a
    fingerprint is never re-executed.
    """
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _check_signature(component, kwargs: dict, what: str, seed_injected: bool) -> None:
    """Require ``component(**kwargs)`` to be callable; name the accepted params."""
    try:
        signature = inspect.signature(component)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return
    trial = dict(kwargs)
    if seed_injected and "seed" not in trial and _accepts_seed(component):
        trial["seed"] = 0
    try:
        signature.bind(**trial)
    except TypeError as error:
        accepted = sorted(signature.parameters)
        raise ValidationError(
            f"invalid {what} kwargs {sorted(kwargs)}: {error}; "
            f"accepted parameters: {accepted}"
        ) from None


def _accepts_param(component, name: str) -> bool:
    """Return whether ``component`` takes an explicit keyword named ``name``."""
    try:
        return name in inspect.signature(component).parameters
    except (TypeError, ValueError):
        return False


def _accepts_seed(component) -> bool:
    """Return whether ``component`` takes an explicit ``seed`` keyword."""
    return _accepts_param(component, "seed")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, serializable description of one experiment.

    Attributes
    ----------
    healer / adversary / topology:
        Registry names (see ``python -m repro list``); each comes with a
        kwargs dict forwarded to the registered class / generator.
    name:
        Optional human-readable label (defaults to
        ``"<healer>@<topology>/<adversary>"``); sweep expansion appends the
        axis assignment.
    timesteps / metric_every / kappa / check_invariants_every /
    exact_expansion_limit / stretch_sample_pairs / seed / snapshot_every:
        Run parameters, mirrored onto
        :class:`~repro.harness.experiment.ExperimentConfig` verbatim.
        ``snapshot_every`` is ``None`` by default (final Theorem-2 snapshot
        always taken); ``0`` opts a sweep point out of full snapshots
        entirely — the big per-point cost when nobody reads the spectral
        columns.  The default is omitted from :meth:`to_dict`, so the
        fingerprints of every pre-existing spec are unchanged.
    """

    healer: str
    topology: str
    adversary: str = "random"
    healer_kwargs: dict = field(default_factory=dict)
    adversary_kwargs: dict = field(default_factory=dict)
    topology_kwargs: dict = field(default_factory=dict)
    name: str | None = None
    timesteps: int = 100
    metric_every: int = 0
    kappa: int = 4
    check_invariants_every: int = 0
    exact_expansion_limit: int = 22
    stretch_sample_pairs: int | None = 100
    seed: int = 0
    snapshot_every: int | None = None

    # -- identity -------------------------------------------------------------

    @property
    def label(self) -> str:
        """Return the explicit name, or a generated one."""
        return self.name or f"{self.healer}@{self.topology}/{self.adversary}"

    # -- validation -----------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check names, kwargs and run parameters; return self for chaining.

        Unknown component names raise
        :class:`~repro.scenarios.registry.UnknownNameError` with the list of
        registered names and a nearest-match suggestion; kwargs that do not
        fit the component's signature name the accepted parameters.
        """
        healer_cls = HEALERS.get(self.healer)
        adversary_cls = ADVERSARIES.get(self.adversary)
        topology_fn = TOPOLOGIES.get(self.topology)
        _check_json_exact(self.healer_kwargs, "healer_kwargs")
        _check_json_exact(self.adversary_kwargs, "adversary_kwargs")
        _check_json_exact(self.topology_kwargs, "topology_kwargs")
        _check_signature(healer_cls, self.healer_kwargs, "healer", seed_injected=True)
        _check_signature(adversary_cls, self.adversary_kwargs, "adversary", seed_injected=True)
        _check_signature(topology_fn, self.topology_kwargs, "topology", seed_injected=True)
        require(self.timesteps >= 1, "timesteps must be at least 1")
        require(self.kappa >= 1, "kappa must be at least 1")
        # The run-parameter kappa drives the Theorem-2 degree bound and the
        # Lemma-5/Theorem-5 cost accounting; letting it silently disagree
        # with the healer's own kappa would make the reported verdicts
        # describe a different algorithm than the one that ran.
        healer_kappa = self.healer_kwargs.get("kappa")
        require(
            healer_kappa is None or healer_kappa == self.kappa,
            f"healer_kwargs['kappa']={healer_kappa} disagrees with the run parameter "
            f"kappa={self.kappa} (used for Theorem-2 bounds and cost accounting); "
            f"set both to the same value",
        )
        require(self.metric_every >= 0, "metric_every must be non-negative")
        require(self.check_invariants_every >= 0, "check_invariants_every must be non-negative")
        require(self.exact_expansion_limit >= 0, "exact_expansion_limit must be non-negative")
        require(
            self.stretch_sample_pairs is None or self.stretch_sample_pairs >= 1,
            "stretch_sample_pairs must be None or at least 1",
        )
        require(
            self.snapshot_every is None or self.snapshot_every >= 0,
            "snapshot_every must be None or non-negative",
        )
        return self

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Return the spec as a plain dict (stable schema).

        ``snapshot_every`` is omitted while at its default (``None``): the
        field post-dates the artifact/fingerprint format, and omission keeps
        every previously recorded spec fingerprinting identically — resumable
        sweep directories stay resumable across the upgrade.
        """
        data = asdict(self)
        if data.get("snapshot_every") is None:
            del data["snapshot_every"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build a spec from a dict, rejecting unknown keys with suggestions."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown ScenarioSpec fields {unknown}; known fields: {sorted(known)}",
        )
        require("healer" in data, "ScenarioSpec requires a 'healer' name")
        require("topology" in data, "ScenarioSpec requires a 'topology' name")
        return cls(**data)

    def to_json(self) -> str:
        """Return canonical JSON (sorted keys, 2-space indent, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse :meth:`to_json` output (or any dict-shaped JSON) back to a spec."""
        data = json.loads(text)
        require(isinstance(data, dict), "a scenario spec must be a JSON object")
        return cls.from_dict(data)

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """Return a copy with the given fields replaced (sweeps/CLI helper)."""
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """Return the spec's canonical-JSON SHA-256 identity.

        Two specs fingerprint identically iff they are equal as dataclasses
        — kwargs key order does not matter, every field value does.  Streamed
        sweep directories index completed points by this value, which is what
        makes resumption safe: a changed spec is a different point.
        """
        return canonical_fingerprint(self.to_dict())

    # -- compilation and execution -------------------------------------------

    def component_kwargs(self, role: str) -> dict:
        """Return the effective kwargs for ``role`` (seed derivation applied).

        ``role`` is one of ``"healer"``, ``"adversary"``, ``"topology"``.
        When the component accepts a ``seed`` and the spec's kwargs omit it,
        the seed is derived from ``spec.seed`` and the role label so the
        three components get independent, reproducible random streams.
        Likewise a kappa-aware healer whose kwargs omit ``kappa`` receives
        the spec's run-parameter ``kappa`` — the healer that runs is always
        the one the Theorem-2 bounds and cost accounting describe.
        """
        component = {
            "healer": HEALERS.get(self.healer),
            "adversary": ADVERSARIES.get(self.adversary),
            "topology": TOPOLOGIES.get(self.topology),
        }[role]
        kwargs = dict(getattr(self, f"{role}_kwargs"))
        if "seed" not in kwargs and _accepts_seed(component):
            kwargs["seed"] = derive_seed(self.seed, role)
        if role == "healer" and "kappa" not in kwargs and _accepts_param(component, "kappa"):
            kwargs["kappa"] = self.kappa
        return kwargs

    def build_initial_graph(self):
        """Instantiate the initial topology ``G_0`` from the registry."""
        return TOPOLOGIES.get(self.topology)(**self.component_kwargs("topology"))

    def compile(self) -> ExperimentConfig:
        """Validate and lower the spec to an :class:`ExperimentConfig`.

        The factories capture the resolved class and kwargs, so the config is
        self-contained: sweeps and replays can re-instantiate components
        without touching the spec again.
        """
        self.validate()
        healer_cls = HEALERS.get(self.healer)
        adversary_cls = ADVERSARIES.get(self.adversary)
        healer_kwargs = self.component_kwargs("healer")
        adversary_kwargs = self.component_kwargs("adversary")
        return ExperimentConfig(
            healer_factory=lambda: healer_cls(**healer_kwargs),
            adversary_factory=lambda: adversary_cls(**adversary_kwargs),
            initial_graph=self.build_initial_graph(),
            timesteps=self.timesteps,
            metric_every=self.metric_every,
            kappa=self.kappa,
            check_invariants_every=self.check_invariants_every,
            exact_expansion_limit=self.exact_expansion_limit,
            stretch_sample_pairs=self.stretch_sample_pairs,
            seed=self.seed,
            snapshot_every=self.snapshot_every,
        )

    def run(self):
        """Execute the scenario; return a :class:`~repro.scenarios.runner.RunRecord`."""
        from repro.scenarios.runner import execute_spec

        return execute_spec(self)

    @classmethod
    def replay(cls, path):
        """Re-execute a persisted run artifact bit-identically.

        Loads the spec and adversarial trace from the JSONL artifact at
        ``path``, rebuilds the healer and initial topology, replays the trace
        through :func:`~repro.harness.experiment.run_healer_on_trace` and
        returns a :class:`~repro.scenarios.artifacts.ReplayReport` whose
        ``identical`` flag compares the replayed ``summary_row()`` against
        the recorded one.
        """
        from repro.scenarios.artifacts import replay_artifact

        return replay_artifact(path)
