"""Per-point execution guards for sweep runs.

A :class:`PointPolicy` bounds what one scenario point may cost the run:
``timeout_s`` caps its wall clock (enforced by the pooled runner, which
kills and respawns workers that overrun), ``max_retries`` re-offers a
failed point that many extra attempts, and ``backoff`` spaces the retries
out.  The backoff *delay* is deterministic — it is drawn from
``derive_seed(seed, "retry", fingerprint, attempt)``, never from wall
clock or a global RNG — so a resumed run facing the same faults makes
byte-identical retry decisions, which is what keeps the fault-injection
differential tests honest (see :mod:`repro.scenarios.chaos`).

The policy never enters a :class:`~repro.scenarios.spec.ScenarioSpec`
fingerprint: how hard the harness tries to execute a point is an
operational concern, not part of the point's identity, so toggling
retries on a resume still matches every recorded artifact.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.util.rng import derive_seed
from repro.util.validation import require


@dataclass(frozen=True)
class PointPolicy:
    """Execution limits applied to every point of a sweep.

    Attributes
    ----------
    timeout_s:
        Wall-clock budget for one attempt of one point, or ``None`` for
        unlimited.  Enforcing a timeout requires the pooled runner (the
        overrunning worker is killed), so a policy with a timeout routes
        even ``workers=1`` runs through the process pool.
    max_retries:
        Extra attempts a failing point gets before it is quarantined
        (0 = fail on the first error, the pre-policy behavior).
    backoff:
        Base delay in seconds between attempts; attempt ``k`` waits about
        ``backoff * 2**k`` (with deterministic jitter).  0 retries
        immediately.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    backoff: float = 0.0

    def validate(self) -> "PointPolicy":
        """Check ranges; return self for chaining."""
        require(
            self.timeout_s is None or self.timeout_s > 0,
            "timeout_s must be None or positive",
        )
        require(
            isinstance(self.max_retries, int) and not isinstance(self.max_retries, bool),
            "max_retries must be an integer",
        )
        require(self.max_retries >= 0, "max_retries must be non-negative")
        require(self.backoff >= 0, "backoff must be non-negative")
        return self

    @property
    def active(self) -> bool:
        """Return whether this policy changes anything about execution."""
        return self.timeout_s is not None or self.max_retries > 0 or self.backoff > 0

    def retry_delay(self, seed: int, fingerprint: str, attempt: int) -> float:
        """Return the deterministic delay before re-running ``attempt + 1``.

        Exponential in the attempt number with jitter in ``[0.5, 1.5)``,
        drawn from the (seed, fingerprint, attempt) triple alone — two runs
        that retry the same point for the same attempt wait identically.
        """
        if self.backoff <= 0:
            return 0.0
        rng = random.Random(derive_seed(seed, "retry", fingerprint, attempt))
        return self.backoff * (2**attempt) * (0.5 + rng.random())

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Return the policy as a plain dict."""
        return {
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointPolicy":
        """Build a policy from a dict, rejecting unknown keys."""
        require(isinstance(data, dict), "a point policy must be a JSON object")
        known = {"timeout_s", "max_retries", "backoff"}
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown PointPolicy fields {unknown}; known fields: {sorted(known)}",
        )
        return cls(
            timeout_s=data.get("timeout_s"),
            max_retries=data.get("max_retries", 0),
            backoff=data.get("backoff", 0.0),
        ).validate()

    def to_json(self) -> str:
        """Return canonical JSON (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def merged_with(
        self,
        timeout_s: float | None = None,
        max_retries: int | None = None,
        backoff: float | None = None,
    ) -> "PointPolicy":
        """Return a copy with every non-``None`` override applied (CLI flags)."""
        return PointPolicy(
            timeout_s=self.timeout_s if timeout_s is None else timeout_s,
            max_retries=self.max_retries if max_retries is None else max_retries,
            backoff=self.backoff if backoff is None else backoff,
        ).validate()
