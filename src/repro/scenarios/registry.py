"""Decorator-based plugin registries for healers, adversaries and topologies.

Every component a :class:`~repro.scenarios.spec.ScenarioSpec` can name lives
in one of three registries:

* :data:`HEALERS` — :class:`~repro.core.healer.SelfHealer` subclasses,
  registered by :mod:`repro.core.xheal`, :mod:`repro.core.ablations`,
  :mod:`repro.distributed.protocol` and every module in
  :mod:`repro.baselines`.
* :data:`ADVERSARIES` — :class:`~repro.adversary.base.Adversary` subclasses,
  registered by :mod:`repro.adversary.strategies`.
* :data:`TOPOLOGIES` — initial-graph generators, registered by
  :mod:`repro.harness.workloads` (whose ``WORKLOADS`` mapping is a live view
  of this registry — one name table, not two).
* :data:`EXECUTORS` — sweep execution backends (how ``run_scenarios`` fans
  points out: inline, process pool, worker fleet), registered by
  :mod:`repro.scenarios.executors` and :mod:`repro.scenarios.fleet`.

Registration is a decorator::

    @register_healer("xheal")
    class Xheal(SelfHealer): ...

Lookups go through :meth:`Registry.get`, which raises a
:class:`UnknownNameError` (a :class:`~repro.util.validation.ValidationError`)
whose message lists every registered name and suggests the nearest one on a
typo.  The registries populate themselves on first lookup by importing the
provider modules, so ``python -m repro list`` works without any prior import.

Third-party packages extend the registries without any import on our side by
declaring package entry points (see :data:`ENTRY_POINT_GROUPS`)::

    entry_points={
        "repro.healers": ["my-healer = my_pkg.healers:MyHealer"],
        "repro.plugins": ["my-extras = my_pkg.register_all"],
    }

A ``repro.healers`` / ``repro.adversaries`` / ``repro.topologies`` entry is
registered under its entry-point name; a ``repro.plugins`` entry is simply
loaded (its import runs the package's own ``@register_*`` decorators).
"""

from __future__ import annotations

import difflib
import importlib
import warnings
from types import MappingProxyType
from typing import Callable, Iterable, Mapping, TypeVar

from repro.util.validation import ValidationError

T = TypeVar("T")

#: Modules whose import populates the registries (the built-in providers).
PROVIDER_MODULES: tuple[str, ...] = (
    "repro.core.xheal",
    "repro.core.ablations",
    "repro.baselines",
    "repro.distributed.protocol",
    "repro.adversary.strategies",
    "repro.adversary.correlated",
    "repro.core.budget",
    "repro.harness.workloads",
    "repro.scenarios.chaos",
    "repro.scenarios.executors",
    "repro.scenarios.fleet",
)

#: Entry-point group -> registry kind (None = load-only, for ``@register_*``
#: decorators that run at import time).
ENTRY_POINT_GROUPS: dict[str, str | None] = {
    "repro.healers": "healer",
    "repro.adversaries": "adversary",
    "repro.topologies": "topology",
    "repro.executors": "executor",
    "repro.plugins": None,
}

_populated = False
_populating = False


def _registry_for_kind(kind: str) -> "Registry":
    return {
        "healer": HEALERS,
        "adversary": ADVERSARIES,
        "topology": TOPOLOGIES,
        "executor": EXECUTORS,
    }[kind]


def _iter_entry_points(group: str):
    """Yield the installed entry points of ``group`` (empty when unpackaged)."""
    from importlib import metadata

    try:
        return metadata.entry_points(group=group)
    except Exception:  # pragma: no cover - defensive against exotic metadata
        return ()


def _load_entry_point_plugins() -> None:
    """Register every installed ``repro.*`` entry point.

    One broken third-party plugin must not take down ``repro list`` for
    everyone else, so load failures become warnings naming the entry point,
    and loading continues.  A component entry point whose name is already
    registered to a *different* object is rejected (first registration wins);
    re-declaring a built-in (as our own setup.py does) is a no-op.
    """
    for group, kind in ENTRY_POINT_GROUPS.items():
        for entry_point in _iter_entry_points(group):
            try:
                loaded = entry_point.load()
                if kind is not None:
                    registry = _registry_for_kind(kind)
                    existing = registry._entries.get(registry.canonical(entry_point.name))
                    if existing is None:
                        registry.register(entry_point.name)(loaded)
                    elif existing is not loaded:
                        raise ValidationError(
                            f"{kind} name {entry_point.name!r} is already registered"
                        )
            except Exception as error:
                warnings.warn(
                    f"failed to load entry point {entry_point.name!r} "
                    f"(group {group!r}): {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )


def _ensure_populated() -> None:
    """Import every provider module once so their decorators have run."""
    global _populated, _populating
    if _populated or _populating:
        return
    # The in-progress flag keeps a plugin that performs lookups at import
    # time from recursing back into population.
    _populating = True
    try:
        for module in PROVIDER_MODULES:
            importlib.import_module(module)
        _load_entry_point_plugins()
    finally:
        _populating = False
    # Only mark populated once every provider imported cleanly — a failed
    # import must not leave later lookups running against a half-filled
    # registry with no sign of the real error.
    _populated = True


class UnknownNameError(ValidationError):
    """An unregistered name was looked up (message includes suggestions)."""


class Registry:
    """A ``name -> component`` table with aliases and typo suggestions."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------------

    def register(self, name: str, *, aliases: Iterable[str] = ()) -> Callable[[T], T]:
        """Return a decorator registering its target under ``name``."""

        def decorator(obj: T) -> T:
            if name in self._entries and self._entries[name] is not obj:
                raise ValidationError(
                    f"{self.kind} name {name!r} is already registered "
                    f"to {self._entries[name]!r}"
                )
            if name in self._aliases:
                raise ValidationError(
                    f"{self.kind} name {name!r} is already an alias "
                    f"of {self._aliases[name]!r}"
                )
            self._entries[name] = obj
            for alias in aliases:
                if alias in self._entries:
                    raise ValidationError(
                        f"{self.kind} alias {alias!r} collides with a registered name"
                    )
                if self._aliases.get(alias, name) != name:
                    raise ValidationError(
                        f"{self.kind} alias {alias!r} is already an alias "
                        f"of {self._aliases[alias]!r}"
                    )
                self._aliases[alias] = name
            return obj

        return decorator

    # -- lookup ---------------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registered name (identity otherwise)."""
        return self._aliases.get(name, name)

    def get(self, name: str):
        """Return the component registered under ``name`` (or an alias of it).

        Raises :class:`UnknownNameError` with the full list of registered
        names and, when a close match exists, a "did you mean" suggestion.
        """
        _ensure_populated()
        key = self.canonical(name)
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        candidates = sorted(set(self._entries) | set(self._aliases))
        close = difflib.get_close_matches(name, candidates, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise UnknownNameError(
            f"unknown {self.kind} {name!r}{hint} "
            f"registered {self.kind} names: {sorted(self._entries)}"
        )

    def __contains__(self, name: str) -> bool:
        _ensure_populated()
        return self.canonical(name) in self._entries

    def names(self) -> list[str]:
        """Return the sorted canonical names (aliases excluded)."""
        _ensure_populated()
        return sorted(self._entries)

    def items(self) -> list[tuple[str, object]]:
        """Return ``(name, component)`` pairs sorted by name."""
        _ensure_populated()
        return sorted(self._entries.items())

    def as_mapping(self) -> Mapping[str, object]:
        """Return a read-only *live* view of the registry's name table."""
        return MappingProxyType(self._entries)


HEALERS = Registry("healer")
ADVERSARIES = Registry("adversary")
TOPOLOGIES = Registry("topology")
EXECUTORS = Registry("executor")


def register_healer(name: str, *, aliases: Iterable[str] = ()):
    """Class decorator adding a healer to the :data:`HEALERS` registry."""
    return HEALERS.register(name, aliases=aliases)


def register_adversary(name: str, *, aliases: Iterable[str] = ()):
    """Class decorator adding an adversary to the :data:`ADVERSARIES` registry."""
    return ADVERSARIES.register(name, aliases=aliases)


def register_topology(name: str, *, aliases: Iterable[str] = ()):
    """Decorator adding an initial-graph generator to :data:`TOPOLOGIES`."""
    return TOPOLOGIES.register(name, aliases=aliases)


def register_executor(name: str, *, aliases: Iterable[str] = ()):
    """Class decorator adding a sweep backend to the :data:`EXECUTORS` registry."""
    return EXECUTORS.register(name, aliases=aliases)


def list_healers() -> list[str]:
    """Return the names of every registered healer."""
    return HEALERS.names()


def list_adversaries() -> list[str]:
    """Return the names of every registered adversary."""
    return ADVERSARIES.names()


def list_topologies() -> list[str]:
    """Return the names of every registered topology generator."""
    return TOPOLOGIES.names()


def list_executors() -> list[str]:
    """Return the names of every registered sweep execution backend."""
    return EXECUTORS.names()
