"""Deterministic fault injection for the sweep runner.

The paper's claim is that a network should survive adversarial deletions
without global repair; this module plays the same adversary against our own
harness.  A :class:`ChaosSpec` is a seeded schedule of worker faults —
process crashes, hangs, injected exceptions and torn artifact writes — that
the pooled runner consults per ``(point fingerprint, attempt)``:

* ``crash``  — the worker process dies mid-point (``os._exit``), which the
  parent sees as ``BrokenProcessPool``;
* ``hang``   — the worker sleeps ``hang_s`` seconds before running the
  point, tripping any :class:`~repro.scenarios.policy.PointPolicy` timeout;
* ``raise``  — the worker raises :class:`ChaosError` instead of a record;
* ``torn-write`` — the *parent* writes a truncated artifact with no index
  line (simulating a crash between the artifact write and the index
  append) and fails the point with :class:`PointFault`.

Every decision is a pure function of ``(chaos seed, fingerprint, attempt)``
via :func:`~repro.util.rng.derive_seed`, so a retried or resumed run faces
exactly the same fault schedule — which is what lets the differential tests
assert that a chaotic run converges to artifacts byte-identical to a
fault-free serial run.

Activation is by environment variable (:data:`ENV_VAR` holds a
:meth:`ChaosSpec.to_json` document) so worker processes inherit the
schedule without any plumbing, and production runs — where the variable is
unset — pay nothing.

Two registry-registered wrapper components exercise the *quarantine* path
(a point that fails deterministically on every attempt): the
``chaos-flaky`` healer and adversary fail at a configured event, either
with a plain :class:`ChaosError` or with a deliberately unpicklable
:class:`PoisonError` — the latter proves a poison exception reaches the
parent as a per-point failure instead of wedging the pool.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass

from repro.adversary.base import Adversary, AdversaryEvent
from repro.core.events import RepairAction
from repro.core.healer import SelfHealer
from repro.scenarios.registry import (
    ADVERSARIES,
    register_adversary,
    register_healer,
)
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Environment variable carrying a ``ChaosSpec.to_json()`` document.
ENV_VAR = "REPRO_CHAOS"

#: The fault kinds a schedule can inject, in draw order (first hit wins).
FAULT_KINDS = ("crash", "hang", "raise", "torn-write")


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a worker."""


class PointFault(RuntimeError):
    """Raised by a completion callback to fail an already-delivered point.

    The pooled runner treats it exactly like a worker-side failure: the
    point is retried (or quarantined), and nothing else in flight is
    affected.  The torn-write fault uses it to model a crash *after* the
    scenario ran but *before* its artifact landed durably.
    """


class PoisonError(RuntimeError):
    """An exception that cannot cross the process boundary.

    Its payload is a live lambda, so pickling it fails inside the worker's
    result path; :mod:`concurrent.futures` then delivers a picklable
    stand-in error to the future — the pool must survive that, and the
    point must fail individually rather than globally.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.payload = lambda: message


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded schedule of injected faults.

    Each probability is evaluated independently per ``(fingerprint,
    attempt)`` in :data:`FAULT_KINDS` order; the first hit is the attempt's
    fault (at most one fault per attempt).  ``hang_s`` is how long a
    ``hang`` fault sleeps before executing normally — pair it with a
    :class:`~repro.scenarios.policy.PointPolicy` timeout below it to turn
    hangs into kills.
    """

    crash_prob: float = 0.0
    hang_prob: float = 0.0
    hang_s: float = 0.0
    torn_write_prob: float = 0.0
    raise_prob: float = 0.0
    seed: int = 0

    def validate(self) -> "ChaosSpec":
        """Check probability ranges; return self for chaining."""
        for name in ("crash_prob", "hang_prob", "torn_write_prob", "raise_prob"):
            value = getattr(self, name)
            require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value}")
        require(self.hang_s >= 0, "hang_s must be non-negative")
        return self

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Return the schedule as a plain dict."""
        return {
            "crash_prob": self.crash_prob,
            "hang_prob": self.hang_prob,
            "hang_s": self.hang_s,
            "torn_write_prob": self.torn_write_prob,
            "raise_prob": self.raise_prob,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        """Build a schedule from a dict, rejecting unknown keys."""
        require(isinstance(data, dict), "a chaos spec must be a JSON object")
        known = {
            "crash_prob",
            "hang_prob",
            "hang_s",
            "torn_write_prob",
            "raise_prob",
            "seed",
        }
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown ChaosSpec fields {unknown}; known fields: {sorted(known)}",
        )
        return cls(**{key: data[key] for key in known & set(data)}).validate()

    def to_json(self) -> str:
        """Return canonical JSON (sorted keys, compact) — the env-var format."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        """Parse :meth:`to_json` output back into a schedule."""
        data = json.loads(text)
        require(isinstance(data, dict), "a chaos spec must be a JSON object")
        return cls.from_dict(data)


def active_chaos() -> ChaosSpec | None:
    """Return the schedule :data:`ENV_VAR` carries, or ``None`` when unset.

    Read on every call (not cached) so tests can flip the variable, and so
    worker processes — which inherit the environment — see the same
    schedule the parent does.
    """
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    return ChaosSpec.from_json(text)


def chaos_decision(chaos: ChaosSpec, fingerprint: str, attempt: int) -> str | None:
    """Return the fault this ``(fingerprint, attempt)`` suffers, if any.

    A pure function of its arguments: the draws come from
    ``derive_seed(chaos.seed, "chaos", fingerprint, attempt)`` in the fixed
    :data:`FAULT_KINDS` order, so every process — parent, worker, a resumed
    run days later — agrees on the schedule.
    """
    rng = random.Random(derive_seed(chaos.seed, "chaos", fingerprint, attempt))
    probabilities = {
        "crash": chaos.crash_prob,
        "hang": chaos.hang_prob,
        "raise": chaos.raise_prob,
        "torn-write": chaos.torn_write_prob,
    }
    for kind in FAULT_KINDS:
        if rng.random() < probabilities[kind]:
            return kind
    return None


def apply_worker_chaos(fingerprint: str, attempt: int) -> None:
    """Inject this attempt's worker-side fault, if the schedule has one.

    Called inside the worker before the scenario executes.  ``crash`` exits
    the process bluntly (no atexit, no cleanup — exactly what a kernel OOM
    kill looks like to the parent); ``hang`` sleeps, then lets the point
    run normally; ``raise`` throws.  ``torn-write`` is a parent-side fault
    and is a no-op here.
    """
    chaos = active_chaos()
    if chaos is None:
        return
    kind = chaos_decision(chaos, fingerprint, attempt)
    if kind == "crash":
        os._exit(13)
    elif kind == "hang":
        time.sleep(chaos.hang_s)
    elif kind == "raise":
        raise ChaosError(f"injected failure for {fingerprint[:12]} attempt {attempt}")


def tear_artifact(stream, index: int, record) -> None:
    """Write a truncated artifact for ``record`` at its *final* name.

    Models a crash between step (2) and step (3) of the stream durability
    protocol: the artifact file exists (here: half its bytes) but no index
    line records it.  Because artifact bytes are a pure function of the
    spec, the retry or resume that re-runs the point overwrites the stump
    with identical full content — so injecting this fault never breaks
    byte-identity with a fault-free run.
    """
    from repro.scenarios.artifacts import artifact_name, run_bytes

    data = run_bytes(record, compress=stream.compress)
    path = stream.directory / artifact_name(index, record.spec.label, stream.compress)
    path.write_bytes(data[: len(data) // 2])


# -- registry-registered flaky wrappers ---------------------------------------


def _fail(mode: str, what: str) -> None:
    require(mode in ("raise", "poison"), f"chaos mode must be 'raise' or 'poison', got {mode!r}")
    if mode == "poison":
        raise PoisonError(f"injected unpicklable failure in {what}")
    raise ChaosError(f"injected failure in {what}")


@register_healer("chaos-flaky")
class FlakyHealer(SelfHealer):
    """A healer that fails deterministically — the quarantine test fixture.

    ``fail_at=0`` (default) fails during :meth:`initialize`; ``fail_at=N``
    lets the first ``N - 1`` deletions through (healing like ``no-heal``)
    and fails on the Nth.  ``mode="poison"`` raises the unpicklable
    :class:`PoisonError` instead of :class:`ChaosError`, exercising the
    runner's poison-exception path.  Every attempt fails identically, so a
    point using this healer exhausts its retries and lands in
    ``failures.jsonl``.
    """

    name = "chaos-flaky"

    def __init__(self, fail_at: int = 0, mode: str = "raise", seed: int = 0):
        super().__init__(seed=seed)
        require(fail_at >= 0, "fail_at must be non-negative")
        self._fail_at = fail_at
        self._mode = mode
        self._deletions = 0

    def _after_initialize(self) -> None:
        if self._fail_at == 0:
            _fail(self._mode, "chaos-flaky healer (initialize)")

    def _heal_after_deletion(self, deleted, neighbors, incident_colors, report) -> None:
        self._deletions += 1
        if self._deletions >= self._fail_at > 0:
            _fail(self._mode, f"chaos-flaky healer (deletion {self._deletions})")
        report.note_action(RepairAction.BASELINE)


@register_adversary("chaos-flaky")
class FlakyAdversary(Adversary):
    """An adversary wrapper that fails deterministically at one timestep.

    Delegates every move to the ``inner`` adversary (resolved through the
    registry, seeded from this wrapper's seed) until ``fail_at`` is
    reached, then fails with the configured ``mode`` — same contract as
    :class:`FlakyHealer`, for faults that originate on the adversary side.
    """

    name = "chaos-flaky"

    def __init__(
        self,
        inner: str = "random",
        inner_kwargs: dict | None = None,
        fail_at: int = 1,
        mode: str = "raise",
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        require(fail_at >= 1, "fail_at must be at least 1 (timesteps start at 1)")
        kwargs = dict(inner_kwargs or {})
        kwargs.setdefault("seed", derive_seed(seed, "chaos-inner"))
        self._inner = ADVERSARIES.get(inner)(**kwargs)
        self._fail_at = fail_at
        self._mode = mode

    def bind(self, initial_graph) -> None:
        super().bind(initial_graph)
        self._inner.bind(initial_graph)

    def next_event(self, graph, timestep: int) -> AdversaryEvent | None:
        if timestep >= self._fail_at:
            _fail(self._mode, f"chaos-flaky adversary (timestep {timestep})")
        return self._inner.next_event(graph, timestep)
