"""Declarative scenario API: registries, serializable specs, sweeps and runs.

This package is the canonical front door for defining and running
experiments.  Instead of hand-wiring factories and graphs::

    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec(
        healer="xheal", healer_kwargs={"kappa": 4},
        adversary="random", adversary_kwargs={"delete_probability": 0.6},
        topology="random-regular", topology_kwargs={"n": 60, "degree": 4},
        timesteps=60,
    )
    record = spec.run()          # -> RunRecord (summary, timeline, trace)
    spec.to_json()               # exact JSON round-trip
    save_run(record, "run.jsonl")
    ScenarioSpec.replay("run.jsonl")   # bit-identical re-execution

Sweeps cross-product parameter axes and run points in parallel::

    from repro.scenarios import SweepSpec, run_scenarios

    sweep = SweepSpec(base=spec, axes={"healer_kwargs.kappa": [2, 4, 8],
                                       "timesteps": [50, 100]})
    records = run_scenarios(sweep.expand(), workers=4)

Long sweeps stream each finished point durably to disk and survive crashes::

    result = run_scenarios(sweep.expand(), workers=4, stream_to="out/")
    # ... crash, power loss, ^C ...
    result = run_scenarios(sweep.expand(), workers=4, resume="out/")
    # only the missing points re-run; artifacts are byte-identical either way

The same operations are available from a shell via ``python -m repro``
(``run`` / ``sweep`` / ``report`` / ``list`` / ``replay``).

The registry layer (:mod:`repro.scenarios.registry`) is imported eagerly —
it is dependency-free, so component modules can register themselves without
import cycles.  Everything else loads lazily on first attribute access.
"""

from __future__ import annotations

from repro.scenarios.registry import (
    ADVERSARIES,
    EXECUTORS,
    HEALERS,
    TOPOLOGIES,
    Registry,
    UnknownNameError,
    list_adversaries,
    list_executors,
    list_healers,
    list_topologies,
    register_adversary,
    register_executor,
    register_healer,
    register_topology,
)

__all__ = [
    "ADVERSARIES",
    "EXECUTORS",
    "HEALERS",
    "TOPOLOGIES",
    "Registry",
    "UnknownNameError",
    "list_adversaries",
    "list_executors",
    "list_healers",
    "list_topologies",
    "register_adversary",
    "register_executor",
    "register_healer",
    "register_topology",
    # lazily loaded (see __getattr__):
    "ScenarioSpec",
    "SweepSpec",
    "split_replicate",
    "RunRecord",
    "run_scenarios",
    "run_sweep",
    "save_run",
    "load_run",
    "iter_artifact",
    "open_artifact",
    "run_bytes",
    "replay_artifact",
    "SweepStream",
    "StreamResult",
    "strip_costs",
    "read_rounds",
    "PointPolicy",
    "ChaosSpec",
    "ExecutionContext",
    "resolve_executor",
    "AdaptiveSpec",
    "StoppingRule",
    "HalvingSchedule",
    "AdaptiveResult",
    "run_adaptive",
]

_LAZY = {
    "ScenarioSpec": "repro.scenarios.spec",
    "SweepSpec": "repro.scenarios.sweep",
    "split_replicate": "repro.scenarios.sweep",
    "RunRecord": "repro.scenarios.runner",
    "run_scenarios": "repro.scenarios.runner",
    "run_sweep": "repro.scenarios.runner",
    "save_run": "repro.scenarios.artifacts",
    "load_run": "repro.scenarios.artifacts",
    "iter_artifact": "repro.scenarios.artifacts",
    "open_artifact": "repro.scenarios.artifacts",
    "run_bytes": "repro.scenarios.artifacts",
    "replay_artifact": "repro.scenarios.artifacts",
    "SweepStream": "repro.scenarios.stream",
    "StreamResult": "repro.scenarios.stream",
    "strip_costs": "repro.scenarios.stream",
    "read_rounds": "repro.scenarios.stream",
    "PointPolicy": "repro.scenarios.policy",
    "ChaosSpec": "repro.scenarios.chaos",
    "ExecutionContext": "repro.scenarios.executors",
    "resolve_executor": "repro.scenarios.executors",
    "AdaptiveSpec": "repro.scenarios.adaptive",
    "StoppingRule": "repro.scenarios.adaptive",
    "HalvingSchedule": "repro.scenarios.adaptive",
    "AdaptiveResult": "repro.scenarios.adaptive",
    "run_adaptive": "repro.scenarios.adaptive",
}


def __getattr__(name: str):
    """Load the heavier scenario modules on demand (breaks import cycles)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
