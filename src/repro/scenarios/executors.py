"""Pluggable sweep execution backends (the ``executor`` registry).

:func:`~repro.scenarios.runner.run_scenarios` describes *what* to run — a
spec list, a retry policy, a completion sink — and an executor decides
*where and how* the points execute.  Backends live in the same
decorator/entry-point registry family as healers::

    @register_executor("my-backend")
    class MyBackend:
        def execute(self, ctx: ExecutionContext) -> None: ...

Three ship built in:

* ``serial`` — points run inline in this process, one at a time.  When a
  :class:`~repro.scenarios.policy.PointPolicy` or a ``REPRO_CHAOS`` schedule
  is active the backend delegates to the process pool instead, because
  timeouts are enforced by killing the overrunning worker and an injected
  crash fault must not take down the coordinating process.
* ``process-pool`` — the classic :class:`concurrent.futures
  .ProcessPoolExecutor` loop (crash recovery, timeout kills, deterministic
  retry backoff, quarantine), unchanged semantics.
* ``subprocess-fleet`` (:mod:`repro.scenarios.fleet`) — a coordinator
  leasing long-lived worker subprocesses over a JSONL pipe protocol; each
  worker writes its own ``index-<worker>.jsonl`` shard.

Every backend produces byte-identical artifacts for the same spec list —
execution placement is operational, never part of a point's identity — so
``--executor`` can be switched freely between runs and resumes of one sweep.

Third-party backends register through the ``repro.executors`` entry-point
group (see :mod:`repro.scenarios.registry`) and are selected by name via
``run_scenarios(..., executor="name")``, ``SweepSpec(executor=...)`` or
``repro sweep --executor name``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.scenarios.policy import PointPolicy
from repro.scenarios.registry import EXECUTORS, register_executor


@dataclass
class ExecutionContext:
    """Everything a backend needs to execute one batch of points.

    ``indices`` selects the points of ``spec_list`` to execute (a resume
    passes only the missing ones).  ``on_complete(index, payload, attempt)``
    fires per finished point — the payload is a
    :class:`~repro.scenarios.runner.RunRecord` when ``timed`` is false and a
    ``(record, wall_clock_s)`` pair when true — and may raise
    :class:`~repro.scenarios.chaos.PointFault` to convert a delivered result
    into a per-point failure.  ``on_quarantine(index, attempts, error)``
    receives points that exhausted ``policy.max_retries``; when it is
    ``None`` the backend must re-raise instead (buffered mode).  ``stream``
    is the run's :class:`~repro.scenarios.stream.SweepStream` when the
    backend's workers may write artifacts and shard index lines themselves
    (the fleet does; pool workers return results to the parent instead).
    """

    spec_list: Sequence
    indices: Sequence[int]
    workers: int
    max_pending: int | None
    policy: PointPolicy
    timed: bool
    on_complete: Callable
    on_quarantine: Callable | None = None
    stream: object | None = None


def resolve_executor(name: str | None, workers: int, points: int):
    """Return the backend instance a run should use.

    ``name=None`` keeps the historical automatic choice: inline serial
    execution for ``workers=1`` (or a batch of at most one point), the
    process pool otherwise.  Unknown names raise
    :class:`~repro.scenarios.registry.UnknownNameError` with a did-you-mean
    suggestion; registered classes are instantiated, instances are used
    as-is (an entry point may export either).
    """
    if name is None:
        name = "serial" if workers == 1 or points <= 1 else "process-pool"
    backend = EXECUTORS.get(name)
    return backend() if isinstance(backend, type) else backend


@register_executor("serial", aliases=("inline",))
class SerialExecutor:
    """Run every point inline, in submission order, in this process.

    The zero-infrastructure backend: no subprocesses to spawn, nothing to
    pickle, the easiest to debug and profile.  A point timeout or an active
    chaos schedule needs process isolation (killing a stuck worker, absorbing
    an injected crash), so those runs delegate to ``process-pool`` — which
    preserves the historical ``run_scenarios`` dispatch exactly.
    """

    name = "serial"

    def execute(self, ctx: ExecutionContext) -> None:
        from repro.scenarios.chaos import active_chaos
        from repro.scenarios.runner import execute_spec, execute_spec_timed

        if ctx.policy.active or active_chaos() is not None:
            ProcessPoolBackend().execute(replace(ctx, stream=None))
            return
        fn = execute_spec_timed if ctx.timed else execute_spec
        for index in ctx.indices:
            ctx.on_complete(index, fn(ctx.spec_list[index]), 0)


@register_executor("process-pool", aliases=("pool", "multiprocess"))
class ProcessPoolBackend:
    """Fan points out over a local :class:`ProcessPoolExecutor`.

    The parent stays the only stream writer: workers return ``RunRecord``
    payloads over the pool's result pipe and the coordinator appends to the
    single ``index.jsonl``.  Survives worker death (pool respawn, culprit
    charged, innocents re-queued free), enforces ``policy.timeout_s`` by
    killing the pool, and retries with the deterministic backoff schedule.
    """

    name = "process-pool"

    def execute(self, ctx: ExecutionContext) -> None:
        from repro.scenarios.runner import _run_pooled, execute_point, execute_point_timed

        _run_pooled(
            ctx.spec_list,
            ctx.indices,
            max(1, ctx.workers),
            ctx.max_pending,
            ctx.on_complete,
            fn=execute_point_timed if ctx.timed else execute_point,
            policy=ctx.policy,
            on_quarantine=ctx.on_quarantine,
        )
