"""Persisted run artifacts: JSONL save/load and bit-identical replay.

An artifact is one JSONL file describing one run completely::

    {"kind": "spec",        "data": {...ScenarioSpec...}}
    {"kind": "summary",     "data": {...summary_row()...}}
    {"kind": "timeline",    "data": {...one timeline row...}}   (0+ lines)
    {"kind": "event",       "data": {...one trace event...}}    (0+ lines)
    {"kind": "cache_stats", "data": {...engine counters...}}

The spec says *how* the run was produced; the event lines say *what* the
adversary did.  Replay therefore does not need the adversary at all: it
rebuilds the healer and the initial topology from the spec and pushes the
recorded trace through
:func:`~repro.harness.experiment.run_healer_on_trace`, which reproduces the
original ``summary_row()`` exactly (same metric fidelity, same engine seed;
on the dense spectral path, n <= sparse_threshold, the computation is
bitwise deterministic).

Artifacts may be gzip-compressed (``.jsonl.gz``) for million-point sweep
directories.  Compression is an encoding of the same bytes, never a
different document: :func:`gzip_bytes` is deterministic (fixed level, zeroed
mtime) and ``gzip.decompress`` of a compressed artifact equals the
uncompressed artifact exactly.  Every reader — :func:`iter_artifact`,
:func:`load_run`, replay, resume verification, the report generator — goes
through :func:`open_artifact`, which sniffs the gzip magic bytes rather than
trusting the filename, so mixed and hand-renamed directories still read
correctly.
"""

from __future__ import annotations

import gzip
import json
import re
from dataclasses import dataclass
from pathlib import Path

#: The two magic bytes every gzip stream starts with (RFC 1952).
GZIP_MAGIC = b"\x1f\x8b"

#: Fixed compression level: byte-determinism across serial/parallel/resumed
#: runs requires every writer to produce identical compressed bytes for
#: identical inputs (level 6 is zlib's speed/size sweet spot for JSONL).
GZIP_LEVEL = 6

from repro.harness.experiment import ExperimentResult, run_healer_on_trace
from repro.scenarios.registry import HEALERS
from repro.scenarios.runner import RunRecord, event_from_dict
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import require


def run_lines(record: RunRecord) -> list[str]:
    """Serialize ``record`` to its JSONL artifact lines (no trailing newline).

    This is the single source of artifact bytes: :func:`save_run` and the
    streaming sweep writer (:mod:`repro.scenarios.stream`) both emit exactly
    these lines, which is what makes buffered, streamed and resumed sweep
    outputs byte-identical.
    """
    lines: list[str] = []

    def add(kind: str, data) -> None:
        lines.append(json.dumps({"kind": kind, "data": data}, sort_keys=True))

    add("spec", record.spec.to_dict())
    add("summary", record.summary)
    for row in record.timeline:
        add("timeline", row)
    for event in record.trace:
        add("event", event)
    add("cache_stats", record.cache_stats)
    return lines


def run_bytes(record: RunRecord, compress: bool = False) -> bytes:
    """Return ``record``'s artifact file bytes, optionally gzip-compressed.

    The uncompressed bytes are exactly :func:`run_lines` joined with
    newlines; the compressed bytes are their deterministic
    :func:`gzip_bytes` encoding — so ``gzip.decompress(run_bytes(r, True))
    == run_bytes(r, False)`` always holds.
    """
    data = ("\n".join(run_lines(record)) + "\n").encode("utf-8")
    return gzip_bytes(data) if compress else data


def gzip_bytes(data: bytes) -> bytes:
    """Compress ``data`` deterministically (fixed level, mtime pinned to 0).

    A default ``gzip.compress`` stamps the current time into the header,
    which would make byte-identical re-runs impossible; zeroing it keeps
    compressed artifacts a pure function of their content.
    """
    return gzip.compress(data, compresslevel=GZIP_LEVEL, mtime=0)


def maybe_decompress(data: bytes) -> bytes:
    """Return ``data`` gunzipped when it carries the gzip magic, else as-is."""
    return gzip.decompress(data) if data[:2] == GZIP_MAGIC else data


def open_artifact(path: str | Path):
    """Open an artifact for text reading, sniffing gzip by magic bytes.

    This is the single auto-detection point all artifact readers share:
    a ``.jsonl`` and a ``.jsonl.gz`` with the same decompressed content are
    indistinguishable to every consumer downstream of here.
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def save_run(record: RunRecord, path: str | Path) -> Path:
    """Write ``record`` to ``path`` as a JSONL artifact; return the path.

    A ``.gz`` suffix selects the deterministic gzip encoding; the readers
    sniff, so both forms replay and report identically.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(run_bytes(record, compress=path.suffix == ".gz"))
    return path


def iter_artifact(path: str | Path):
    """Yield ``(kind, data)`` per artifact line without building a RunRecord.

    This is the memory-bounded read path: the report generator consumes
    sweep directories one line at a time, so aggregate tables over thousands
    of points never hold more than one artifact's worth of rows.  Compressed
    artifacts are decompressed on the fly (see :func:`open_artifact`).
    """
    path = Path(path)
    with open_artifact(path) as handle:
        for line_number, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: not valid JSONL ({error})") from None
            yield entry.get("kind"), entry.get("data")


def load_run(path: str | Path) -> RunRecord:
    """Read a JSONL artifact back into a :class:`RunRecord`."""
    path = Path(path)
    spec_data = None
    summary = None
    timeline: list[dict] = []
    trace: list[dict] = []
    cache_stats: dict = {}
    for kind, data in iter_artifact(path):
        if kind == "spec":
            spec_data = data
        elif kind == "summary":
            summary = data
        elif kind == "timeline":
            timeline.append(data)
        elif kind == "event":
            trace.append(data)
        elif kind == "cache_stats":
            cache_stats = data
        else:
            raise ValueError(f"{path}: unknown artifact line kind {kind!r}")
    require(spec_data is not None, f"artifact {path} has no 'spec' line")
    require(summary is not None, f"artifact {path} has no 'summary' line")
    return RunRecord(
        spec=ScenarioSpec.from_dict(spec_data),
        summary=summary,
        timeline=timeline,
        trace=trace,
        cache_stats=cache_stats,
    )


def artifact_name(index: int, label: str, compress: bool = False) -> str:
    """Return a filesystem-safe artifact filename for one sweep point."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "run"
    return f"{index:04d}-{slug}.jsonl" + (".gz" if compress else "")


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a persisted run artifact."""

    record: RunRecord
    result: ExperimentResult
    replayed_summary: dict

    @property
    def identical(self) -> bool:
        """Return whether the replayed summary matches the recorded one exactly."""
        return self.replayed_summary == self.record.summary

    def differences(self) -> dict:
        """Return ``column -> (recorded, replayed)`` for every mismatch."""
        keys = set(self.record.summary) | set(self.replayed_summary)
        return {
            key: (self.record.summary.get(key), self.replayed_summary.get(key))
            for key in sorted(keys)
            if self.record.summary.get(key) != self.replayed_summary.get(key)
        }


def replay_artifact(path: str | Path) -> ReplayReport:
    """Re-execute the run persisted at ``path`` and compare summaries.

    The healer and initial topology are rebuilt from the artifact's spec
    (same derived seeds), and the recorded adversarial trace is replayed
    through :func:`run_healer_on_trace` with the spec's metric fidelity and
    engine seed — the exact inputs of the original run.
    """
    record = load_run(path)
    spec = record.spec.validate()
    healer = HEALERS.get(spec.healer)(**spec.component_kwargs("healer"))
    result = run_healer_on_trace(
        healer,
        spec.build_initial_graph(),
        record.events(),
        kappa=spec.kappa,
        exact_expansion_limit=spec.exact_expansion_limit,
        stretch_sample_pairs=spec.stretch_sample_pairs,
        seed=spec.seed,
        adversary_name=str(record.summary.get("adversary", "trace")),
        snapshot_every=spec.snapshot_every,
    )
    return ReplayReport(record=record, result=result, replayed_summary=dict(result.summary_row()))
