"""The ``subprocess-fleet`` executor: leased worker subprocesses over pipes.

A coordinator leases N long-lived worker subprocesses (each running
:func:`worker_main` from this module) and speaks a JSONL task protocol with
each over its stdin/stdout pipe pair::

    coordinator -> worker   {"op": "run", "index": 3, "attempt": 0,
                             "spec": {...}, "timed": true,
                             "stream": {"directory": "...", "compress": false,
                                        "shard": "w0"}}
    worker -> coordinator   {"op": "ready"}
                            {"op": "done", "index": 3, "attempt": 0,
                             "entry": {...}}            (streamed runs)
                            {"op": "done", "index": 3, "attempt": 0,
                             "record": {...}}           (buffered runs)
                            {"op": "error", "index": 3, "attempt": 0,
                             "error": "ChaosError('...')"}
    coordinator -> worker   {"op": "shutdown"}

Each lease holds at most one in-flight point and moves through the health
states ``leased`` (spawned, awaiting its ready line) → ``idle`` → ``busy`` →
``dead``.  Death — pipe EOF, a kill, an injected chaos crash — charges
exactly the lease's own in-flight point one attempt (attribution is exact,
unlike the shared process pool) and respawns the slot; every other in-flight
point is untouched.  Heartbeats map onto the existing
:class:`~repro.scenarios.policy.PointPolicy`: a busy lease that has not
answered within ``policy.timeout_s`` is declared dead, killed, and its point
charged a timeout attempt, with retries/backoff/quarantine running through
the same deterministic machinery as the pool backend.

In streamed runs each worker is an *independent writer*: it appends finished
artifacts with the full durability protocol and logs them to its own
``index-<shard>.jsonl`` shard (see :mod:`repro.scenarios.stream`), then
reports the index entry back for the coordinator to adopt into the manifest.
Worker-side faults keep exact parity with the pool backend's parent-side
handling — same error ``repr`` strings, same torn-write artifact bytes, same
attempt accounting — so serial, pool and fleet runs of one sweep are
byte-identical after :func:`~repro.scenarios.stream.strip_costs`.
"""

from __future__ import annotations

import heapq
import json
import os
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from pathlib import Path
from queue import Empty, Queue

from repro.scenarios.policy import PointPolicy
from repro.scenarios.registry import register_executor
from repro.util.validation import require

#: Seconds a freshly spawned worker gets to print its ready line before the
#: lease is recycled (generous: a worker imports numpy/scipy on startup).
READY_TIMEOUT_S = 120.0

#: Consecutive pre-ready deaths of one lease slot before the fleet concludes
#: workers cannot start in this environment and raises instead of spinning.
MAX_SPAWN_FAILURES = 3

#: Lease health states.
LEASED, IDLE, BUSY, DEAD = "leased", "idle", "busy", "dead"


class RemoteWorkerError(RuntimeError):
    """A failure reported over the wire by a fleet worker.

    Carries the worker-side exception's ``repr`` verbatim — and *is* that
    repr — so quarantine ledgers and manifest ``failed`` sections are
    byte-identical whether a fault fired in a pool worker (whose exception
    object crossed the pickle boundary) or in a fleet worker (whose repr
    crossed the pipe).
    """

    def __init__(self, error_repr: str):
        super().__init__(error_repr)
        self.error_repr = error_repr

    def __repr__(self) -> str:
        return self.error_repr


def _worker_env() -> dict:
    """Return the environment fleet workers inherit.

    The coordinator's environment propagates wholesale — that is what makes
    ``REPRO_CHAOS`` schedules reach workers with zero plumbing — plus the
    directory this very ``repro`` package was imported from is prepended to
    ``PYTHONPATH``, so workers resolve the same code even when the parent
    imported it via ``sys.path`` manipulation rather than an install.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class _Lease:
    """One worker slot: a subprocess, its health state, its in-flight point."""

    def __init__(self, slot: int):
        self.slot = slot
        self.shard = f"w{slot}"
        self.state = DEAD
        self.process: subprocess.Popen | None = None
        self.task: tuple[int, int] | None = None  # (index, attempt)
        self.deadline: float | None = None
        self.ready_deadline: float | None = None
        self.spawn_failures = 0


def _pump(slot: int, process: subprocess.Popen, events: Queue) -> None:
    """Reader thread: forward one worker's stdout lines, then its EOF."""
    try:
        for line in process.stdout:
            events.put((slot, process, "line", line))
    except Exception:  # pragma: no cover - pipe torn down mid-read
        pass
    events.put((slot, process, "eof", None))


@register_executor("subprocess-fleet", aliases=("fleet",))
class SubprocessFleetExecutor:
    """Coordinator for a fleet of leased worker subprocesses."""

    name = "subprocess-fleet"

    def execute(self, ctx) -> None:
        policy = (ctx.policy or PointPolicy()).validate()
        indices = list(ctx.indices)
        if not indices:
            return
        spec_list = ctx.spec_list
        events: Queue = Queue()
        queue: deque = deque((index, 0) for index in indices)
        delayed: list = []  # (ready_monotonic, tiebreak, index, attempt)
        seq = 0
        outstanding = len(indices)  # points neither delivered nor quarantined

        def fail_point(index: int, attempt: int, error: BaseException) -> None:
            """Charge one attempt; requeue (after backoff) or quarantine."""
            nonlocal seq, outstanding
            if attempt < policy.max_retries:
                delay = policy.retry_delay(
                    spec_list[index].seed, spec_list[index].fingerprint(), attempt
                )
                if delay > 0:
                    seq += 1
                    heapq.heappush(
                        delayed, (time.monotonic() + delay, seq, index, attempt + 1)
                    )
                else:
                    queue.append((index, attempt + 1))
                return
            if ctx.on_quarantine is not None:
                ctx.on_quarantine(index, attempt + 1, error)
                outstanding -= 1
                return
            raise error

        # Importing the module by its canonical name (rather than running it
        # as __main__ via -m) keeps the worker's registry seeing exactly one
        # SubprocessFleetExecutor class when it later resolves components.
        worker_cmd = [
            sys.executable,
            "-c",
            "from repro.scenarios.fleet import worker_main; "
            "raise SystemExit(worker_main())",
        ]

        def spawn(lease: _Lease) -> None:
            lease.process = subprocess.Popen(
                worker_cmd,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=_worker_env(),
                text=True,
                encoding="utf-8",
                bufsize=1,
            )
            lease.state = LEASED
            lease.task = None
            lease.deadline = None
            lease.ready_deadline = time.monotonic() + READY_TIMEOUT_S
            threading.Thread(
                target=_pump, args=(lease.slot, lease.process, events), daemon=True
            ).start()

        def kill(lease: _Lease) -> None:
            lease.state = DEAD
            process = lease.process
            if process is None:
                return
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass
            try:
                process.wait(timeout=5)
            except Exception:  # pragma: no cover - defensive
                pass

        def send(lease: _Lease, index: int, attempt: int) -> None:
            """Hand one point to an idle lease; on a dead pipe, let EOF handle it."""
            task = {
                "op": "run",
                "index": index,
                "attempt": attempt,
                "spec": spec_list[index].to_dict(),
                "timed": ctx.timed,
            }
            if ctx.stream is not None:
                task["stream"] = {
                    "directory": str(ctx.stream.directory),
                    "compress": bool(ctx.stream.compress),
                    "shard": lease.shard,
                }
            lease.task = (index, attempt)
            lease.state = BUSY
            lease.deadline = (
                time.monotonic() + policy.timeout_s
                if policy.timeout_s is not None
                else None
            )
            try:
                lease.process.stdin.write(json.dumps(task) + "\n")
                lease.process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError):
                # The worker died holding the lease; its EOF event (already
                # queued or imminent) charges the point and respawns.
                pass

        def on_death(lease: _Lease) -> None:
            """EOF from a lease: charge its in-flight point, recycle the slot."""
            was, task = lease.state, lease.task
            lease.state = DEAD
            lease.task = None
            lease.deadline = None
            if was == LEASED:
                lease.spawn_failures += 1
                require(
                    lease.spawn_failures < MAX_SPAWN_FAILURES,
                    f"fleet worker slot {lease.slot} died {lease.spawn_failures} "
                    f"times before becoming ready; workers cannot start "
                    f"(is repro.scenarios.fleet importable by {sys.executable}?)",
                )
            if was == BUSY and task is not None:
                index, attempt = task
                fail_point(
                    index, attempt, BrokenExecutor(f"worker died running point {index}")
                )
            if outstanding > 0:
                spawn(lease)

        def on_message(lease: _Lease, line: str) -> None:
            nonlocal outstanding
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                # A worker that corrupts its protocol stream is as good as
                # dead: kill it, charge its point, recycle the slot.
                task = lease.task
                kill(lease)
                lease.task = None
                if task is not None:
                    index, attempt = task
                    fail_point(
                        index,
                        attempt,
                        RemoteWorkerError(
                            f"RuntimeError('worker {lease.slot} sent an "
                            f"undecodable protocol line')"
                        ),
                    )
                if outstanding > 0:
                    spawn(lease)
                return
            op = message.get("op") if isinstance(message, dict) else None
            if op == "ready":
                lease.spawn_failures = 0
                lease.ready_deadline = None
                if lease.state == LEASED:
                    lease.state = IDLE
                return
            if op not in ("done", "error") or lease.task is None:
                return  # stray chatter; harmless
            index, attempt = lease.task
            lease.task = None
            lease.state = IDLE
            lease.deadline = None
            if op == "error":
                fail_point(index, attempt, RemoteWorkerError(str(message.get("error"))))
                return
            if ctx.stream is not None and message.get("entry") is not None:
                # The worker already wrote the artifact and its shard index
                # line durably; the coordinator only adopts the entry.
                ctx.stream.adopt(message["entry"])
            else:
                from repro.scenarios.runner import RunRecord

                ctx.on_complete(index, RunRecord.from_dict(message["record"]), attempt)
            outstanding -= 1

        fleet = {
            slot: _Lease(slot) for slot in range(max(1, min(ctx.workers, len(indices))))
        }
        try:
            for lease in fleet.values():
                spawn(lease)
            while outstanding > 0:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, index, attempt = heapq.heappop(delayed)
                    queue.append((index, attempt))
                for lease in fleet.values():
                    if lease.state == IDLE and queue:
                        send(lease, *queue.popleft())
                # Sleep until the next actionable instant: a worker message,
                # a lease deadline, a spawn deadline, or a backoff expiry.
                wakeups = [
                    lease.deadline
                    for lease in fleet.values()
                    if lease.state == BUSY and lease.deadline is not None
                ]
                wakeups += [
                    lease.ready_deadline
                    for lease in fleet.values()
                    if lease.state == LEASED and lease.ready_deadline is not None
                ]
                if delayed:
                    wakeups.append(delayed[0][0])
                timeout = (
                    max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
                )
                batch = []
                try:
                    batch.append(events.get(timeout=timeout))
                except Empty:
                    pass
                while True:
                    try:
                        batch.append(events.get_nowait())
                    except Empty:
                        break
                for slot, process, kind, payload in batch:
                    lease = fleet[slot]
                    if lease.process is not process:
                        continue  # an event from a lease's previous, replaced worker
                    if kind == "eof":
                        on_death(lease)
                    else:
                        on_message(lease, payload)
                # Enforce heartbeat deadlines: a busy lease past its budget is
                # killed and its point charged a timeout attempt (same message
                # as the pool backend, for ledger parity).
                now = time.monotonic()
                for lease in fleet.values():
                    if (
                        lease.state == BUSY
                        and lease.deadline is not None
                        and lease.deadline <= now
                    ):
                        index, attempt = lease.task
                        kill(lease)
                        lease.task = None
                        fail_point(
                            index,
                            attempt,
                            TimeoutError(
                                f"point {index} exceeded timeout_s={policy.timeout_s} "
                                f"on attempt {attempt}"
                            ),
                        )
                        if outstanding > 0:
                            spawn(lease)
                    elif (
                        lease.state == LEASED
                        and lease.ready_deadline is not None
                        and lease.ready_deadline <= now
                    ):
                        lease.spawn_failures += 1
                        kill(lease)
                        require(
                            lease.spawn_failures < MAX_SPAWN_FAILURES,
                            f"fleet worker slot {lease.slot} failed to become "
                            f"ready within {READY_TIMEOUT_S}s, "
                            f"{lease.spawn_failures} time(s)",
                        )
                        spawn(lease)
        except KeyboardInterrupt:
            for lease in fleet.values():
                kill(lease)
            raise
        finally:
            self._shutdown(fleet)

    @staticmethod
    def _shutdown(fleet: dict) -> None:
        """Ask every live worker to exit; escalate to kill after a grace period."""
        for lease in fleet.values():
            process = lease.process
            if process is None or process.poll() is not None:
                continue
            try:
                process.stdin.write('{"op": "shutdown"}\n')
                process.stdin.flush()
                process.stdin.close()
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for lease in fleet.values():
            process = lease.process
            if process is None:
                continue
            try:
                process.wait(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                try:
                    process.kill()
                    process.wait(timeout=5)
                except Exception:  # pragma: no cover - defensive
                    pass


# -- worker side ---------------------------------------------------------------


def _execute_task(task: dict, streams: dict) -> dict:
    """Run one leased point; return the reply message.

    Fault parity with the pool backend is deliberate, branch by branch: the
    chaos shim runs first (``crash`` exits the process — the coordinator
    sees EOF, exactly like ``BrokenProcessPool``; ``hang`` sleeps into the
    heartbeat timeout; ``raise`` lands in the generic exception reply), and
    a scheduled ``torn-write`` writes the same truncated artifact bytes the
    parent-side path writes, with no index line, before failing the attempt
    with the same :class:`~repro.scenarios.chaos.PointFault` message.
    """
    from repro.scenarios.chaos import (
        PointFault,
        active_chaos,
        apply_worker_chaos,
        chaos_decision,
        tear_artifact,
    )
    from repro.scenarios.runner import execute_spec, execute_spec_timed
    from repro.scenarios.spec import ScenarioSpec
    from repro.scenarios.stream import SweepStream

    index, attempt = task["index"], task["attempt"]
    reply = {"op": "done", "index": index, "attempt": attempt}
    try:
        spec = ScenarioSpec.from_dict(task["spec"])
        fingerprint = spec.fingerprint()
        apply_worker_chaos(fingerprint, attempt)
        stream_info = task.get("stream")
        if stream_info is None:
            if task.get("timed"):
                record, wall_clock_s = execute_spec_timed(spec)
                reply["record"] = record.to_dict()
                reply["wall_clock_s"] = wall_clock_s
            else:
                reply["record"] = execute_spec(spec).to_dict()
            return reply
        key = (stream_info["directory"], stream_info["shard"])
        stream = streams.get(key)
        if stream is None:
            stream = SweepStream(
                stream_info["directory"],
                compress=stream_info["compress"],
                shard=stream_info["shard"],
            )
            streams[key] = stream
        record, wall_clock_s = execute_spec_timed(spec)
        chaos = active_chaos()
        if chaos is not None and chaos_decision(chaos, fingerprint, attempt) == "torn-write":
            tear_artifact(stream, index, record)
            raise PointFault(f"injected torn write for point {index} attempt {attempt}")
        stream.record(index, record, wall_clock_s=wall_clock_s)
        reply["entry"] = stream._recorded[fingerprint]
        return reply
    except KeyboardInterrupt:
        raise
    except BaseException as error:
        return {"op": "error", "index": index, "attempt": attempt, "error": repr(error)}


def worker_main() -> int:
    """The worker process: serve leased tasks over stdin/stdout until shutdown."""
    # The JSONL protocol owns fd 1.  Re-point sys.stdout at stderr so stray
    # prints from scenario code cannot corrupt the protocol stream.
    protocol = os.fdopen(os.dup(sys.stdout.fileno()), "w", buffering=1)
    sys.stdout = sys.stderr

    def reply(message: dict) -> None:
        protocol.write(json.dumps(message, sort_keys=True) + "\n")
        protocol.flush()

    streams: dict = {}
    reply({"op": "ready"})
    try:
        for line in sys.stdin:
            if not line.strip():
                continue
            try:
                task = json.loads(line)
            except json.JSONDecodeError:
                reply(
                    {
                        "op": "error",
                        "error": f"RuntimeError('undecodable task line: {line[:60]!r}')",
                    }
                )
                continue
            op = task.get("op") if isinstance(task, dict) else None
            if op == "shutdown":
                break
            if op != "run":
                reply({"op": "error", "error": f"RuntimeError('unknown op: {op!r}')"})
                continue
            reply(_execute_task(task, streams))
    finally:
        for stream in streams.values():
            stream.close()
    return 0
