"""Deterministic adaptive sweeps: CI-driven replicate stopping and
successive-halving grid search.

Two round-structured schedules over the existing streamed-sweep machinery:

* **Replicate stopping** (:class:`StoppingRule`): every grid point starts at
  ``min_replicates`` independently-seeded ``[rep=k]`` replicates; after each
  round the point's bootstrap 95% CI of one summary metric is computed with
  *exactly* the seeded resampler ``repro report --ci`` uses
  (:func:`repro.analysis.report.bootstrap_ci`), and the point stops growing
  once the CI half-width meets ``target_half_width`` (or ``max_replicates``
  is hit).  Compute goes where the variance is.

* **Successive halving** (:class:`HalvingSchedule`): all values of one
  declared axis run at a small budget (few replicates, optionally short
  ``timesteps``); the top ``keep`` fraction by a declared objective column
  survives to the next round at ``growth``× the budget, and so on until one
  arm (or ``rounds`` rounds) remains — Hyperband-style elimination over a
  healer sweep.

Determinism contract
--------------------
Every decision is a pure function of **recorded summary rows + derived
seeds** — never of wall-clock, executor backend, worker count, or fault
timing.  Round ``r``'s point set is derived from the sweep document and the
survivors of rounds ``0..r-1``; the survivors are derived from the summary
rows of artifacts on disk; and the artifacts are pure functions of their
specs.  Each round appends its decision to an fsync'd ``rounds.jsonl``
ledger; a killed-and-resumed adaptive run re-derives each recorded round,
verifies it matches the ledger byte for byte, and continues where the crash
left off — producing byte-identical artifacts, an identical ledger and an
identical final report to the uninterrupted run (see
``tests/test_adaptive_differential.py``).

Scheduling reuses :func:`repro.scenarios.runner.run_scenarios` with resume
semantics: each round submits the *cumulative* spec list (every point decided
so far), so already-recorded points verify-and-skip, only the round's new
points execute (over any executor backend, with the full retry/quarantine
policy machinery), and the final ``MANIFEST.json`` covers every recorded
point — ``repro report`` then aggregates the whole adaptive history, with an
"Adaptive schedule" section replayed from the ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import SweepSpec, point_label, replicate_spec
from repro.util.validation import require


def _require_int(value, name: str, minimum: int) -> None:
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer",
    )
    require(value >= minimum, f"{name} must be at least {minimum}")


@dataclass(frozen=True)
class StoppingRule:
    """Stop adding replicates to a point once its bootstrap CI is tight.

    Attributes
    ----------
    metric:
        The numeric summary column whose CI drives the decision
        (e.g. ``"amortized_msgs"``).
    target_half_width:
        Stop a point once ``(ci_high - ci_low) / 2 <= target_half_width``.
        The CI is the same seeded bootstrap ``repro report --ci`` renders,
        so a stopped point's reported ``ci95`` meets the target by
        construction.
    min_replicates:
        Replicates every point starts with (at least 2 — a CI over one
        value has no spread to measure).
    max_replicates:
        Hard budget per point; a point still wide at this count is marked
        ``exhausted`` rather than growing forever.
    batch:
        Replicates added per round to each still-wide point.
    """

    metric: str
    target_half_width: float
    min_replicates: int = 3
    max_replicates: int = 12
    batch: int = 1

    def validate(self) -> "StoppingRule":
        require(
            isinstance(self.metric, str) and bool(self.metric),
            "a stopping rule needs a summary metric name",
        )
        require(
            isinstance(self.target_half_width, (int, float))
            and not isinstance(self.target_half_width, bool)
            and math.isfinite(self.target_half_width)
            and self.target_half_width > 0,
            "target_half_width must be a positive finite number",
        )
        _require_int(self.min_replicates, "min_replicates", 2)
        _require_int(self.max_replicates, "max_replicates", 2)
        require(
            self.max_replicates >= self.min_replicates,
            "max_replicates must be >= min_replicates",
        )
        _require_int(self.batch, "batch", 1)
        return self

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "target_half_width": self.target_half_width,
            "min_replicates": self.min_replicates,
            "max_replicates": self.max_replicates,
            "batch": self.batch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoppingRule":
        known = {"metric", "target_half_width", "min_replicates", "max_replicates", "batch"}
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown StoppingRule fields {unknown}; known fields: {sorted(known)}",
        )
        require(
            "metric" in data and "target_half_width" in data,
            "a stopping rule requires 'metric' and 'target_half_width'",
        )
        return cls(
            metric=data["metric"],
            target_half_width=data["target_half_width"],
            min_replicates=data.get("min_replicates", 3),
            max_replicates=data.get("max_replicates", 12),
            batch=data.get("batch", 1),
        )


@dataclass(frozen=True)
class HalvingSchedule:
    """Successive halving over one axis by one objective column.

    Attributes
    ----------
    axis:
        The sweep axis whose values compete (e.g. ``"healer_kwargs.kappa"``).
        Must be one of the sweep's declared axes with at least two values.
    objective:
        The numeric summary column arms are ranked by; an arm's score is the
        mean of the objective over every one of its points in the round.
    minimize:
        Whether lower scores win (default) or higher.
    keep:
        Fraction of arms surviving each elimination (``0 < keep < 1``);
        at least one arm always survives and at least one is always dropped,
        so the schedule terminates.
    replicates:
        Replicates per grid point in round 0; round ``r`` runs
        ``replicates * growth**r``.
    timesteps:
        Optional round-0 ``timesteps`` budget, grown ``growth``× per round
        (short cheap runs first, long runs only for survivors).  When unset
        every round runs the base spec's own ``timesteps``.  Incompatible
        with a ``timesteps`` axis.
    growth:
        Per-round budget multiplier (``>= 1``).
    rounds:
        Optional cap on the number of rounds; by default halving continues
        until a single arm remains.  The final round never eliminates.
    """

    axis: str
    objective: str
    minimize: bool = True
    keep: float = 0.5
    replicates: int = 1
    timesteps: int | None = None
    growth: int = 2
    rounds: int | None = None

    def validate(self) -> "HalvingSchedule":
        require(
            isinstance(self.axis, str) and bool(self.axis),
            "a halving schedule needs an axis name",
        )
        require(
            isinstance(self.objective, str) and bool(self.objective),
            "a halving schedule needs an objective summary column",
        )
        require(isinstance(self.minimize, bool), "minimize must be a boolean")
        require(
            isinstance(self.keep, (int, float))
            and not isinstance(self.keep, bool)
            and 0.0 < self.keep < 1.0,
            "keep must be a fraction strictly between 0 and 1",
        )
        _require_int(self.replicates, "replicates", 1)
        if self.timesteps is not None:
            _require_int(self.timesteps, "timesteps", 1)
        _require_int(self.growth, "growth", 1)
        if self.rounds is not None:
            _require_int(self.rounds, "rounds", 1)
        return self

    def to_dict(self) -> dict:
        data = {
            "axis": self.axis,
            "objective": self.objective,
            "minimize": self.minimize,
            "keep": self.keep,
            "replicates": self.replicates,
            "growth": self.growth,
        }
        if self.timesteps is not None:
            data["timesteps"] = self.timesteps
        if self.rounds is not None:
            data["rounds"] = self.rounds
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "HalvingSchedule":
        known = {
            "axis", "objective", "minimize", "keep", "replicates",
            "timesteps", "growth", "rounds",
        }
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown HalvingSchedule fields {unknown}; known fields: {sorted(known)}",
        )
        require(
            "axis" in data and "objective" in data,
            "a halving schedule requires 'axis' and 'objective'",
        )
        return cls(
            axis=data["axis"],
            objective=data["objective"],
            minimize=data.get("minimize", True),
            keep=data.get("keep", 0.5),
            replicates=data.get("replicates", 1),
            timesteps=data.get("timesteps"),
            growth=data.get("growth", 2),
            rounds=data.get("rounds"),
        )


@dataclass(frozen=True)
class AdaptiveSpec:
    """The ``adaptive`` block of a :class:`~repro.scenarios.sweep.SweepSpec`.

    Declares exactly one schedule: ``stopping`` (replicate-aware adaptive
    sampling) or ``halving`` (successive halving over one axis).
    """

    stopping: StoppingRule | None = None
    halving: HalvingSchedule | None = None

    @property
    def mode(self) -> str:
        """Return ``"stopping"`` or ``"halving"``."""
        return "stopping" if self.stopping is not None else "halving"

    def validate(self, sweep: SweepSpec | None = None) -> "AdaptiveSpec":
        """Check the block, and (when given) its fit with the sweep's axes."""
        require(
            (self.stopping is None) != (self.halving is None),
            "an adaptive block declares exactly one of 'stopping' or 'halving'",
        )
        if self.stopping is not None:
            self.stopping.validate()
        if self.halving is not None:
            self.halving.validate()
            if sweep is not None:
                require(
                    self.halving.axis in sweep.axes,
                    f"halving axis {self.halving.axis!r} is not one of the "
                    f"sweep's axes {sorted(sweep.axes)}",
                )
                require(
                    len(sweep.axes[self.halving.axis]) > 1,
                    f"halving axis {self.halving.axis!r} needs at least two "
                    f"values to eliminate between",
                )
                require(
                    self.halving.timesteps is None or "timesteps" not in sweep.axes,
                    "a halving timesteps budget cannot be combined with a "
                    "'timesteps' axis (the budget becomes the timesteps value)",
                )
        return self

    def to_dict(self) -> dict:
        if self.stopping is not None:
            return {"stopping": self.stopping.to_dict()}
        return {"halving": self.halving.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "AdaptiveSpec":
        require(isinstance(data, dict), "an adaptive block must be a JSON object")
        known = {"stopping", "halving"}
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown AdaptiveSpec fields {unknown}; known fields: {sorted(known)}",
        )
        stopping = data.get("stopping")
        halving = data.get("halving")
        return cls(
            stopping=None if stopping is None else StoppingRule.from_dict(stopping),
            halving=None if halving is None else HalvingSchedule.from_dict(halving),
        ).validate()


# -- pure decision functions ---------------------------------------------------


def select_survivors(arms: list, scores: list, keep: float, minimize: bool = True) -> list:
    """Return the arms surviving one elimination, in their declared order.

    Pure and total: keeps ``ceil(len(arms) * keep)`` arms, clamped so at
    least one survives and at least one is dropped (the schedule always
    makes progress).  Ranking ties break by declared arm order, and the
    survivors come back in declared order — the decision is a pure function
    of ``(arms, scores)``, independent of sort stability or float formatting.
    """
    require(bool(arms) and len(arms) == len(scores), "need one score per arm")
    count = max(1, min(math.ceil(len(arms) * keep), len(arms) - 1))
    ranked = sorted(
        range(len(arms)),
        key=lambda i: (scores[i] if minimize else -scores[i], i),
    )
    chosen = set(ranked[:count])
    return [arm for i, arm in enumerate(arms) if i in chosen]


def _metric_value(summary: dict, label: str, metric: str) -> float:
    """Extract one finite numeric metric from a recorded summary row."""
    value = summary.get(metric)
    numeric = [
        key
        for key, column in summary.items()
        if isinstance(column, (int, float)) and not isinstance(column, bool)
    ]
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"point {label!r} has no numeric summary column {metric!r}; "
        f"numeric columns: {sorted(numeric)}",
    )
    require(
        math.isfinite(value),
        f"point {label!r} recorded a non-finite {metric!r} ({value!r}); "
        f"adaptive decisions refuse to rank on it",
    )
    return float(value)


# -- the round driver ----------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of :func:`run_adaptive`.

    ``specs`` is the final cumulative spec list (every point the schedule
    decided to run, in decision order — the list ``MANIFEST.json`` covers);
    ``rounds`` mirrors the ``rounds.jsonl`` ledger.  ``executed`` counts
    points freshly run by *this* invocation, ``skipped`` the points resumed
    from the directory.  ``points_saved`` is the schedule's dividend: the
    exhaustive grid at the final budget (``exhaustive_points``) minus the
    points actually materialized.
    """

    directory: Path
    mode: str
    rounds: list = field(default_factory=list)
    specs: list = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    exhaustive_points: int = 0

    @property
    def points_saved(self) -> int:
        """Return how many points the schedule avoided vs the exhaustive grid."""
        return self.exhaustive_points - len(self.specs)


class _RoundRunner:
    """Shared plumbing both schedules drive: execute rounds, read summaries."""

    def __init__(self, sweep, directory, workers, max_pending, compress,
                 policy, retry_failed, executor):
        self.sweep = sweep
        self.directory = Path(directory)
        self.workers = workers
        self.max_pending = max_pending
        self.compress = compress
        self.policy = policy if policy is not None else sweep.policy
        self.retry_failed = retry_failed
        self.executor = executor if executor is not None else sweep.executor
        self.executed = 0
        self._summaries: dict[str, dict] = {}

    def run(self, specs: list[ScenarioSpec]) -> None:
        """Execute (resume-style) the cumulative spec list for one round."""
        import warnings

        from repro.scenarios.runner import run_scenarios

        with warnings.catch_warnings():
            # While replaying recorded rounds, the cumulative list is a strict
            # prefix of the directory's points, so the runner's orphan warning
            # is expected noise here; run_adaptive re-checks for *genuine*
            # orphans once the schedule has fully re-derived its point set.
            warnings.filterwarnings(
                "ignore", message=".*not part of this sweep.*", category=RuntimeWarning
            )
            result = run_scenarios(
                specs,
                workers=self.workers,
                max_pending=self.max_pending,
                resume=self.directory,
                compress=self.compress,
                policy=self.policy,
                retry_failed=self.retry_failed,
                executor=self.executor,
            )
        self.executed += result.executed

    def summaries(self, specs: list[ScenarioSpec]) -> dict[str, dict]:
        """Return ``fingerprint -> summary row`` for every given spec.

        Artifacts are read once per fingerprint across the whole adaptive
        run (artifact bytes are immutable once recorded).  A spec with no
        verified artifact was quarantined — the schedule cannot decide on
        partial data, so that is an error pointing at ``--retry-failed``,
        not a silent skip.
        """
        from repro.scenarios.artifacts import iter_artifact
        from repro.scenarios.stream import SweepStream

        needed = [(spec.fingerprint(), spec.label) for spec in specs]
        missing = [pair for pair in needed if pair[0] not in self._summaries]
        if missing:
            completed = SweepStream(self.directory).completed()
            quarantined = [label for fp, label in missing if fp not in completed]
            require(
                not quarantined,
                f"adaptive round cannot score quarantined point(s) "
                f"{quarantined[:3]}{'...' if len(quarantined) > 3 else ''}; "
                f"re-offer them by resuming {self.directory} with retry_failed "
                f"(repro sweep ... --resume {self.directory} --retry-failed)",
            )
            for fp, label in missing:
                path = self.directory / completed[fp]["artifact"]
                summary = None
                for kind, data in iter_artifact(path):
                    if kind == "summary":
                        summary = data
                        break
                require(summary is not None, f"artifact {path} has no 'summary' line")
                self._summaries[fp] = summary
        return {fp: self._summaries[fp] for fp, _ in needed}


def _run_stopping(runner: _RoundRunner, rule: StoppingRule, on_round):
    """Drive the replicate-stopping schedule; return (rounds, final specs)."""
    from repro.analysis.report import bootstrap_ci
    from repro.scenarios.stream import record_round

    sweep = runner.sweep
    assignments = sweep.points()
    labels = [point_label(sweep.label, assignment) for assignment in assignments]
    counts = [rule.min_replicates] * len(assignments)
    active = list(range(len(assignments)))
    ledger: list[dict] = []
    round_no = 0
    while True:
        specs: list[ScenarioSpec] = []
        groups: list[list[ScenarioSpec]] = []
        for assignment, count in zip(assignments, counts):
            group = [
                replicate_spec(sweep.base, sweep.label, assignment, rep)
                for rep in range(count)
            ]
            groups.append(group)
            specs.extend(group)
        runner.run(specs)
        rows = runner.summaries(specs)
        decisions = []
        still: list[int] = []
        for i in active:
            column = [
                _metric_value(rows[spec.fingerprint()], spec.label, rule.metric)
                for spec in groups[i]
            ]
            # The stopping oracle IS the report's CI: same resampler, same
            # per-(base point, metric) seed labels, same value order — a
            # stopped point's reported ci95 meets the target by construction.
            low, high = bootstrap_ci(column, labels[i], rule.metric)
            half = (high - low) / 2.0
            if half <= rule.target_half_width:
                status = "converged"
            elif counts[i] >= rule.max_replicates:
                status = "exhausted"
            else:
                status = "continue"
                still.append(i)
            decisions.append(
                {
                    "point": labels[i],
                    "replicates": counts[i],
                    "mean": sum(column) / len(column),
                    "ci_low": low,
                    "ci_high": high,
                    "half_width": half,
                    "status": status,
                }
            )
        entry = record_round(
            runner.directory,
            {
                "round": round_no,
                "mode": "stopping",
                "metric": rule.metric,
                "target_half_width": rule.target_half_width,
                "decisions": decisions,
            },
        )
        ledger.append(entry)
        if on_round is not None:
            on_round(entry)
        if not still:
            return ledger, specs
        for i in still:
            counts[i] = min(counts[i] + rule.batch, rule.max_replicates)
        active = still
        round_no += 1


def _run_halving(runner: _RoundRunner, schedule: HalvingSchedule, on_round):
    """Drive the successive-halving schedule; return (rounds, cumulative specs)."""
    from repro.scenarios.stream import record_round

    sweep = runner.sweep
    other_axes = {
        key: list(values) for key, values in sweep.axes.items() if key != schedule.axis
    }
    arms = list(sweep.axes[schedule.axis])
    cumulative: list[ScenarioSpec] = []
    seen: set[str] = set()
    ledger: list[dict] = []
    round_no = 0
    while True:
        reps = schedule.replicates * schedule.growth**round_no
        steps = (
            schedule.timesteps * schedule.growth**round_no
            if schedule.timesteps is not None
            else None
        )
        axes = dict(other_axes)
        axes[schedule.axis] = list(arms)
        if steps is not None:
            # The budget rides as a single-value pseudo-axis: it lands in the
            # point's name/seed/fingerprint (distinct per round) and the
            # report's axis inference picks it up as a varying key.
            axes["timesteps"] = [steps]
        round_sweep = SweepSpec(base=sweep.base, axes=axes, name=sweep.name)
        pairs = [
            (assignment, replicate_spec(sweep.base, sweep.label, assignment, rep))
            for assignment in round_sweep.points()
            for rep in range(reps)
        ]
        for _, spec in pairs:
            fingerprint = spec.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                cumulative.append(spec)
        runner.run(cumulative)
        rows = runner.summaries([spec for _, spec in pairs])
        arm_rows = []
        for arm in arms:
            values = [
                _metric_value(rows[spec.fingerprint()], spec.label, schedule.objective)
                for assignment, spec in pairs
                if assignment[schedule.axis] == arm
            ]
            arm_rows.append(
                {"arm": arm, "points": len(values), "score": sum(values) / len(values)}
            )
        last = len(arms) == 1 or (
            schedule.rounds is not None and round_no >= schedule.rounds - 1
        )
        survivors = (
            list(arms)
            if last
            else select_survivors(
                arms, [row["score"] for row in arm_rows], schedule.keep, schedule.minimize
            )
        )
        entry = record_round(
            runner.directory,
            {
                "round": round_no,
                "mode": "halving",
                "axis": schedule.axis,
                "objective": schedule.objective,
                "minimize": schedule.minimize,
                "budget": {"replicates": reps, "timesteps": steps},
                "scores": arm_rows,
                "survivors": survivors,
            },
        )
        ledger.append(entry)
        if on_round is not None:
            on_round(entry)
        if last:
            return ledger, cumulative
        arms = survivors
        round_no += 1


def run_adaptive(
    sweep: SweepSpec,
    directory: str | Path,
    workers: int = 1,
    max_pending: int | None = None,
    compress: bool | None = None,
    policy=None,
    retry_failed: bool = False,
    executor: str | None = None,
    resume: bool = False,
    on_round=None,
) -> AdaptiveResult:
    """Run a sweep's adaptive schedule over a durable stream directory.

    ``resume=False`` requires a directory with no recorded points (the
    ``stream_to`` contract); ``resume=True`` continues a killed run —
    recorded points verify-and-skip, recorded rounds replay (and are checked
    against the ledger), and the run picks up exactly where it stopped,
    byte-identical to never having been interrupted.  ``policy`` /
    ``executor`` default to the sweep file's own, like ``run_sweep``;
    ``on_round(entry)`` fires after each round's decision is durably
    recorded.
    """
    sweep.validate()
    adaptive = sweep.adaptive
    require(
        isinstance(adaptive, AdaptiveSpec),
        "run_adaptive needs a sweep with an 'adaptive' block",
    )
    directory = Path(directory)
    prior: set[str] = set()
    if not resume:
        from repro.scenarios.stream import index_paths

        existing = index_paths(directory) if directory.exists() else []
        require(
            not existing,
            f"{existing[0] if existing else directory} already records points; "
            f"pass resume=True (repro sweep ... --resume) to continue that "
            f"adaptive sweep, or stream to a fresh directory",
        )
    elif directory.exists():
        # Snapshot what the directory records *before* any round runs: a
        # resume with the wrong sweep file can overwrite same-named artifacts,
        # so the orphan check at the end must compare against this snapshot.
        from repro.scenarios.stream import SweepStream

        prior = set(SweepStream(directory).completed())
    runner = _RoundRunner(
        sweep, directory, workers, max_pending, compress, policy, retry_failed, executor
    )
    if adaptive.mode == "stopping":
        rule = adaptive.stopping
        ledger, specs = _run_stopping(runner, rule, on_round)
        exhaustive = rule.max_replicates * len(sweep.points())
    else:
        schedule = adaptive.halving
        ledger, specs = _run_halving(runner, schedule, on_round)
        grid = 1
        for values in sweep.axes.values():
            grid *= len(values)
        final_reps = ledger[-1]["budget"]["replicates"]
        exhaustive = grid * final_reps
    orphans = prior - {spec.fingerprint() for spec in specs}
    if orphans:
        import warnings

        warnings.warn(
            f"{directory} records {len(orphans)} point(s) that are not part of "
            f"this adaptive schedule (resumed with a different sweep file?); "
            f"their artifacts remain on disk but are excluded from MANIFEST.json",
            RuntimeWarning,
            stacklevel=2,
        )
    return AdaptiveResult(
        directory=directory,
        mode=adaptive.mode,
        rounds=ledger,
        specs=specs,
        executed=runner.executed,
        skipped=len(specs) - runner.executed,
        exhaustive_points=exhaustive,
    )
