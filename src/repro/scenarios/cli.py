"""The ``repro`` command line: run, sweep, report, list and replay scenarios.

Installed as the ``repro`` console script (see ``setup.py``) and runnable as
``python -m repro``::

    python -m repro list                       # registered components
    python -m repro run spec.json              # one scenario -> summary table
    python -m repro run spec.json --artifact run.jsonl
    python -m repro sweep sweep.json --workers 4 --artifact-dir out/
    python -m repro sweep sweep.json --stream-to out/   # durable, append-as-you-go
    python -m repro sweep sweep.json --stream-to out/ --compress --replicates 5
    python -m repro sweep sweep.json --resume out/      # re-run only missing points
    python -m repro sweep sweep.json --stream-to out/ \
        --halving healer_kwargs.kappa=amortized_msgs    # adaptive sweep search
    python -m repro sweep sweep.json --stream-to out/ \
        --target-ci amortized_msgs=0.5                  # CI-driven replicates
    python -m repro report out/ --out report/  # aggregate tables from artifacts
    python -m repro report out/ --watch        # live: tail a running sweep
    python -m repro replay run.jsonl           # bit-identical re-execution

Spec files are :meth:`~repro.scenarios.spec.ScenarioSpec.to_json` documents;
sweep files are :meth:`~repro.scenarios.sweep.SweepSpec.to_json` documents
(``{"base": {...}, "axes": {...}}``).  ``replay`` exits non-zero when the
replayed summary deviates from the recorded one, so it doubles as an
integrity check in CI.  A crashed ``--stream-to`` sweep loses nothing:
``--resume`` fingerprints every point and executes exactly the missing ones
(most-expensive-first, estimated from recorded costs), with byte-identical
final artifacts; ``--compress`` gzips each artifact and is auto-detected on
resume, replay and report.  ``--replicates N`` expands every grid point into
N independently-seeded replicates, which ``report`` aggregates back per base
point (``--ci`` adds a bootstrap confidence interval).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _describe_component(component) -> tuple[str, str]:
    """Return ``(signature, first docstring line)`` for a registered component.

    Built for ``list --verbose``: makes a new pack discoverable without
    reading source.  Unintrospectable plugins degrade to empty strings
    rather than failing the listing.
    """
    import inspect

    try:
        signature = str(inspect.signature(component))
    except (TypeError, ValueError):
        signature = ""
    doc = inspect.getdoc(component) or ""
    first_line = doc.strip().splitlines()[0].strip() if doc.strip() else ""
    return signature, first_line


def _cmd_list(args) -> int:
    from repro.scenarios.registry import (
        ADVERSARIES,
        EXECUTORS,
        HEALERS,
        TOPOLOGIES,
        list_adversaries,
        list_executors,
        list_healers,
        list_topologies,
    )

    sections = {
        "healers": (list_healers, HEALERS),
        "adversaries": (list_adversaries, ADVERSARIES),
        "topologies": (list_topologies, TOPOLOGIES),
        "executors": (list_executors, EXECUTORS),
    }
    wanted = sections if args.kind == "all" else {args.kind: sections[args.kind]}
    verbose = getattr(args, "verbose", False)
    for kind, (lister, registry) in wanted.items():
        print(f"{kind}:")
        for name in lister():
            if not verbose:
                print(f"  {name}")
                continue
            signature, first_line = _describe_component(registry.get(name))
            print(f"  {name}{signature}")
            if first_line:
                print(f"      {first_line}")
    return 0


def _load_spec(path: str):
    from repro.scenarios.spec import ScenarioSpec

    return ScenarioSpec.from_json(Path(path).read_text(encoding="utf-8"))


def _print_records(records, title: str) -> None:
    from repro.harness.reporting import print_table

    rows = []
    for record in records:
        row = {"scenario": record.spec.label}
        row.update(record.summary)
        rows.append(row)
    print_table(rows, title=title)


def _cmd_run(args) -> int:
    from repro.scenarios.artifacts import save_run

    spec = _load_spec(args.spec)
    if args.timesteps is not None:
        spec = spec.with_overrides(timesteps=args.timesteps)
    record = spec.validate().run()
    _print_records([record], title=f"run: {spec.label}")
    if args.artifact:
        path = save_run(record, args.artifact)
        print(f"artifact written to {path}")
    return 0


def _check_resume_replicates(resume_dir: Path, replicates: int) -> None:
    """Refuse resuming a directory recorded under a different replicate count.

    A mismatched ``--replicates`` silently re-runs the whole grid (every
    fingerprint differs) and strands the old points as orphans — an error
    message beats a doubled directory.
    """
    from repro.scenarios.stream import iter_all_index_entries

    recorded = [
        entry.get("replicate")
        for entry in iter_all_index_entries(Path(resume_dir))
        if "replicate" in entry
    ]
    if not recorded:
        return
    ids = [value for value in recorded if isinstance(value, int)]
    if replicates == 1 and ids:
        raise ValueError(
            f"--resume {resume_dir} records replicate points (ids up to "
            f"{max(ids)}) but this sweep has replicates=1; pass --replicates "
            f"{max(ids) + 1} (or more) to continue it"
        )
    if replicates > 1 and len(ids) < len(recorded):
        raise ValueError(
            f"--resume {resume_dir} was streamed without replicates but "
            f"--replicates {replicates} was given; resume it with the "
            f"replicate count it was recorded with"
        )
    if ids and max(ids) >= replicates > 1:
        raise ValueError(
            f"--resume {resume_dir} records replicate ids up to {max(ids)} "
            f"but --replicates {replicates} only expands ids 0..{replicates - 1}; "
            f"was the sweep streamed with a different --replicates?"
        )


def _merge_adaptive(sweep, args):
    """Fold the ``--target-ci`` / ``--halving`` flags into the sweep's block.

    A flag overrides the corresponding field(s) of the sweep file's own rule
    or schedule and keeps its other fields — the same field-wise merge the
    policy flags use.
    """
    from dataclasses import replace

    from repro.scenarios.adaptive import AdaptiveSpec, HalvingSchedule, StoppingRule

    if args.target_ci and args.halving:
        raise ValueError(
            "--target-ci and --halving are different adaptive modes; pass one"
        )
    adaptive = sweep.adaptive
    if args.target_ci:
        metric, sep, width = args.target_ci.rpartition("=")
        if not sep or not metric:
            raise ValueError(
                "--target-ci expects METRIC=WIDTH (e.g. --target-ci amortized_msgs=0.5)"
            )
        try:
            width = float(width)
        except ValueError:
            raise ValueError(f"--target-ci width {width!r} is not a number") from None
        rule = (
            adaptive.stopping
            if adaptive is not None and adaptive.stopping is not None
            else StoppingRule(metric=metric, target_half_width=width)
        )
        rule = replace(rule, metric=metric, target_half_width=width)
        return replace(sweep, adaptive=AdaptiveSpec(stopping=rule))
    if args.halving:
        axis, sep, objective = args.halving.partition("=")
        if not sep or not axis or not objective:
            raise ValueError(
                "--halving expects AXIS=OBJECTIVE "
                "(e.g. --halving healer_kwargs.kappa=amortized_msgs)"
            )
        schedule = (
            adaptive.halving
            if adaptive is not None and adaptive.halving is not None
            else HalvingSchedule(axis=axis, objective=objective)
        )
        schedule = replace(schedule, axis=axis, objective=objective)
        return replace(sweep, adaptive=AdaptiveSpec(halving=schedule))
    return sweep


def _cmd_sweep_adaptive(args, sweep, policy, executor) -> int:
    """The adaptive branch of ``repro sweep``: round-scheduled execution."""
    from repro.scenarios.adaptive import run_adaptive

    if not (args.stream_to or args.resume):
        raise ValueError(
            "adaptive sweeps are round-scheduled over a durable directory; "
            "pass --stream-to DIR (or --resume DIR)"
        )
    if args.replicates is not None:
        raise ValueError(
            "--replicates conflicts with an adaptive sweep (the schedule "
            "decides per-point replicate counts)"
        )
    directory = Path(args.stream_to or args.resume)
    mode = sweep.adaptive.mode
    print(f"adaptive sweep {sweep.label}: mode={mode}, workers={args.workers}")

    def on_round(entry: dict) -> None:
        if entry["mode"] == "halving":
            budget = entry.get("budget", {})
            steps = (
                f" timesteps={budget.get('timesteps')}"
                if budget.get("timesteps")
                else ""
            )
            print(
                f"[round {entry['round']}] replicates={budget.get('replicates')}"
                f"{steps} arms={len(entry.get('scores', []))} -> "
                f"survivors={len(entry.get('survivors', []))}"
            )
        else:
            statuses = [d.get("status") for d in entry.get("decisions", [])]
            print(
                f"[round {entry['round']}] active={len(statuses)} "
                f"converged={statuses.count('converged')} "
                f"exhausted={statuses.count('exhausted')} "
                f"continuing={statuses.count('continue')}"
            )

    try:
        result = run_adaptive(
            sweep,
            directory,
            workers=args.workers,
            compress=True if args.compress else None,
            policy=policy,
            retry_failed=args.retry_failed,
            executor=executor,
            resume=args.resume is not None,
            on_round=on_round,
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted: completed points and rounds are safe in {directory}/; "
            f"continue with: repro sweep {args.sweep} --resume {directory}",
            file=sys.stderr,
        )
        return 130
    print(
        f"adaptive {mode}: {len(result.rounds)} round(s), {len(result.specs)} "
        f"points (executed {result.executed}, resumed {result.skipped}); "
        f"saved {result.points_saved} of {result.exhaustive_points} "
        f"exhaustive points"
    )
    return 0


def _cmd_sweep(args) -> int:
    from dataclasses import replace

    from repro.scenarios.artifacts import artifact_name, save_run
    from repro.scenarios.policy import PointPolicy
    from repro.scenarios.runner import run_scenarios
    from repro.scenarios.sweep import SweepSpec

    if args.workers < 1:
        # Reject before any backend sees it: ProcessPoolExecutor's own
        # "max_workers must be greater than 0" traceback names no flag.
        raise ValueError(f"--workers must be at least 1 (got {args.workers})")
    sweep = SweepSpec.from_json(Path(args.sweep).read_text(encoding="utf-8"))
    sweep = _merge_adaptive(sweep, args)
    if args.adaptive and sweep.adaptive is None:
        raise ValueError(
            "--adaptive needs an 'adaptive' block in the sweep file, or an "
            "explicit --target-ci METRIC=WIDTH / --halving AXIS=OBJECTIVE"
        )
    if args.replicates is not None and sweep.adaptive is None:
        sweep = replace(sweep, replicates=args.replicates)
    # The sweep file's policy is the base; explicit flags override field-wise.
    policy = (sweep.policy or PointPolicy()).merged_with(
        timeout_s=args.timeout, max_retries=args.max_retries, backoff=args.backoff
    )
    # The sweep file's executor is the default; --executor overrides it.
    executor = args.executor if args.executor is not None else sweep.executor
    if args.artifact_dir and (args.stream_to or args.resume):
        raise ValueError(
            "--artifact-dir buffers in memory; it cannot be combined with "
            "--stream-to/--resume (the streamed directory already holds one "
            "artifact per point)"
        )
    if args.compress and not (args.stream_to or args.resume):
        raise ValueError("--compress only applies to --stream-to/--resume sweeps")
    if args.retry_failed and not args.resume:
        raise ValueError("--retry-failed only applies to --resume sweeps")
    if sweep.adaptive is not None:
        # Round-scheduled execution; the schedule decides the point set, so
        # there is no grid to expand (and the replicate-count resume guard
        # does not apply — adaptive directories legitimately mix counts).
        return _cmd_sweep_adaptive(args, sweep, policy, executor)
    specs = sweep.expand()
    print(f"sweep {sweep.label}: {len(specs)} points, workers={args.workers}")
    if args.stream_to or args.resume:
        # Streamed mode: nothing is buffered, each finished point lands on
        # disk durably, and a resumed run executes only the missing points.
        if args.resume:
            _check_resume_replicates(Path(args.resume), sweep.replicates)
        directory = Path(args.stream_to or args.resume)
        try:
            result = run_scenarios(
                specs,
                workers=args.workers,
                stream_to=args.stream_to,
                resume=args.resume,
                compress=True if args.compress else None,
                policy=policy,
                retry_failed=args.retry_failed,
                executor=executor,
            )
        except KeyboardInterrupt:
            # Everything already recorded survived durably — say so instead
            # of unwinding with a stack trace.
            print(
                f"\ninterrupted: completed points are safe in {directory}/; "
                f"continue with: repro sweep {args.sweep} --resume {directory}",
                file=sys.stderr,
            )
            return 130
        failed = f", failed {result.failed}" if result.failed else ""
        print(
            f"streamed {result.total} points to {result.directory}/ "
            f"(executed {result.executed}, resumed {result.skipped}{failed})"
        )
        if result.failed:
            print(
                f"{result.failed} point(s) quarantined after exhausting retries "
                f"(see {result.failures_path}); re-offer them with: "
                f"repro sweep {args.sweep} --resume {result.directory} --retry-failed",
                file=sys.stderr,
            )
            return 3
        return 0
    records = run_scenarios(specs, workers=args.workers, policy=policy, executor=executor)
    _print_records(records, title=f"sweep: {sweep.label}")
    if args.artifact_dir:
        directory = Path(args.artifact_dir)
        for index, record in enumerate(records):
            save_run(record, directory / artifact_name(index, record.spec.label))
        print(f"{len(records)} artifacts written to {directory}/")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report, watch_report

    if args.watch:

        def on_refresh(watcher, snapshot) -> None:
            points = len(snapshot.points) if snapshot is not None else 0
            failed = len(snapshot.failed) if snapshot is not None else 0
            state = "complete" if watcher.complete else "watching"
            suffix = f", {failed} failed" if failed else ""
            print(f"[watch] {points} point(s){suffix}, {state}", file=sys.stderr)

        report = watch_report(
            args.directory,
            out_dir=args.out,
            interval=args.interval,
            max_refreshes=args.max_refreshes,
            include_timeline=not args.no_timeline,
            ci=args.ci,
            on_refresh=on_refresh,
        )
        if report is None:
            print(f"error: no points appeared in {args.directory}", file=sys.stderr)
            return 2
    else:
        report = generate_report(
            args.directory,
            out_dir=args.out,
            include_timeline=not args.no_timeline,
            ci=args.ci,
        )
    print(report.markdown, end="")
    for path in report.written:
        print(f"wrote {path}", file=sys.stderr)
    if report.failed:
        # Degraded but usable: the report already carries the failed-point
        # table, so this is a note, not an error exit.
        print(
            f"note: {len(report.failed)} quarantined point(s) are missing from "
            f"the aggregates (see the 'Failed points' section)",
            file=sys.stderr,
        )
    return 0


def _cmd_replay(args) -> int:
    from repro.scenarios.artifacts import replay_artifact

    report = replay_artifact(args.artifact)
    print(f"replaying {args.artifact} ({report.record.spec.label})")
    from repro.harness.reporting import print_table

    print_table(
        [
            {"source": "recorded", **report.record.summary},
            {"source": "replayed", **report.replayed_summary},
        ],
        title="recorded vs replayed summary",
    )
    if report.identical:
        print("replay identical: True")
        return 0
    print(f"replay identical: False; differences: {report.differences()}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run Xheal self-healing scenarios from declarative JSON specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered healers/adversaries/topologies/executors"
    )
    list_parser.add_argument(
        "--kind",
        choices=["healers", "adversaries", "topologies", "executors", "all"],
        default="all",
        help="which registry to list (default: all)",
    )
    list_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show each component's constructor signature and summary line",
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario spec")
    run_parser.add_argument("spec", help="path to a ScenarioSpec JSON file")
    run_parser.add_argument("--artifact", help="write a replayable JSONL artifact here")
    run_parser.add_argument(
        "--timesteps", type=int, default=None, help="override the spec's timesteps"
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="expand and run a sweep spec")
    sweep_parser.add_argument("sweep", help="path to a SweepSpec JSON file")
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--executor",
        metavar="NAME",
        default=None,
        help="execution backend: serial, process-pool, subprocess-fleet, or a "
        "third-party repro.executors entry point (default: automatic — "
        "serial for --workers 1, process-pool otherwise; overrides the "
        "sweep file's 'executor' field)",
    )
    sweep_parser.add_argument(
        "--artifact-dir", help="write one replayable JSONL artifact per point here"
    )
    sweep_parser.add_argument(
        "--stream-to",
        metavar="DIR",
        help="durably stream each finished point to DIR as it completes "
        "(crash-resumable; skips the summary table)",
    )
    sweep_parser.add_argument(
        "--resume",
        metavar="DIR",
        help="resume a crashed --stream-to sweep: re-run only the points DIR "
        "does not already record, most-expensive-first",
    )
    sweep_parser.add_argument(
        "--replicates",
        type=int,
        default=None,
        metavar="N",
        help="expand every grid point into N independently-seeded replicates "
        "(overrides the sweep file's 'replicates' field)",
    )
    sweep_parser.add_argument(
        "--compress",
        action="store_true",
        help="gzip each streamed artifact (.jsonl.gz; auto-detected on "
        "resume/replay/report)",
    )
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock budget in seconds; an overrunning worker "
        "is killed and the point charged an attempt",
    )
    sweep_parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts a failing point gets before it is quarantined "
        "into failures.jsonl (default: 0)",
    )
    sweep_parser.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="S",
        help="base delay between attempts (deterministic exponential backoff "
        "with seeded jitter; default: 0, retry immediately)",
    )
    sweep_parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="with --resume: re-offer previously quarantined points with a "
        "fresh attempt budget (by default resume skips them)",
    )
    sweep_parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the sweep file's 'adaptive' block (round-scheduled "
        "replicate stopping or successive halving; requires "
        "--stream-to/--resume). A file carrying the block runs adaptively "
        "even without this flag",
    )
    sweep_parser.add_argument(
        "--target-ci",
        metavar="METRIC=WIDTH",
        default=None,
        help="adaptive replicate stopping: grow each point's [rep=k] "
        "replicates until the bootstrap 95%% CI half-width of METRIC is "
        "<= WIDTH (overrides the sweep file's stopping rule field-wise)",
    )
    sweep_parser.add_argument(
        "--halving",
        metavar="AXIS=OBJECTIVE",
        default=None,
        help="adaptive successive halving: run all values of AXIS at a small "
        "budget, keep the best fraction by the OBJECTIVE summary column, "
        "grow the budget, repeat (overrides the sweep file's halving "
        "schedule field-wise)",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    report_parser = sub.add_parser(
        "report", help="aggregate a sweep artifact directory into tables"
    )
    report_parser.add_argument("directory", help="a --stream-to / --artifact-dir directory")
    report_parser.add_argument(
        "--out", metavar="DIR", help="also write report.md and the CSV tables here"
    )
    report_parser.add_argument(
        "--no-timeline", action="store_true", help="omit per-point timeline tables"
    )
    report_parser.add_argument(
        "--ci",
        action="store_true",
        help="add a bootstrap 95%% confidence-interval column to the "
        "replicate aggregation",
    )
    report_parser.add_argument(
        "--watch",
        action="store_true",
        help="tail a live --stream-to directory, rewriting the report as "
        "points land; exits when the sweep completes",
    )
    report_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="--watch poll interval in seconds (default: 2.0)",
    )
    report_parser.add_argument(
        "--max-refreshes",
        type=int,
        default=None,
        metavar="N",
        help="stop --watch after N refreshes even if the sweep is unfinished",
    )
    report_parser.set_defaults(func=_cmd_report)

    replay_parser = sub.add_parser(
        "replay", help="re-execute a run artifact and verify the summary matches"
    )
    replay_parser.add_argument("artifact", help="path to a run artifact (JSONL)")
    replay_parser.set_defaults(func=_cmd_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    # ValueError covers ValidationError (bad specs/names), JSONDecodeError
    # (malformed spec files) and corrupt-artifact errors; OSError covers
    # missing/unreadable paths.  Anything else is a bug and should traceback.
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Streamed sweeps catch this themselves (with a resume hint); for
        # everything else, ^C is still not a traceback-worthy event.
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
