"""Grid/matrix sweep expansion over scenario parameter axes.

A :class:`SweepSpec` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus named axes, each a list of values.  ``expand()`` cross-products the axes
into one concrete spec per grid point — the declarative replacement for the
hand-rolled loops :mod:`repro.harness.sweeps` used to require.

Axis keys address either a run parameter (``"timesteps"``) or a component
keyword through a dotted path (``"healer_kwargs.kappa"``).  By default every
point inherits the base seed, so the only thing varying along an axis is the
axis itself (a kappa sweep compares the same initial graph and the same
churn trace); set ``derive_seeds=True`` for replicate-style sweeps, where
each point gets a deterministic seed derived from its axis assignment.
Either way expansion is a pure function of the sweep document — independent
of execution order and worker count — so
``run_scenarios(sweep.expand(), workers=4)`` is bit-identical to
``workers=1``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.scenarios.spec import ScenarioSpec, canonical_fingerprint
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Axis prefixes that address component kwargs via a dotted path.
_KWARGS_FIELDS = ("healer_kwargs", "adversary_kwargs", "topology_kwargs")


def _axis_targets() -> set[str]:
    """Return the top-level spec fields an axis may address directly."""
    return {f.name for f in fields(ScenarioSpec)} - set(_KWARGS_FIELDS) - {"name"}


def apply_axis(spec: ScenarioSpec, key: str, value) -> ScenarioSpec:
    """Return ``spec`` with one axis assignment applied.

    ``key`` is either a ScenarioSpec field name or
    ``"<component>_kwargs.<param>"``.
    """
    if "." in key:
        prefix, _, param = key.partition(".")
        require(
            prefix in _KWARGS_FIELDS,
            f"axis {key!r}: dotted axes must start with one of {list(_KWARGS_FIELDS)}",
        )
        kwargs = dict(getattr(spec, prefix))
        kwargs[param] = value
        updated = spec.with_overrides(**{prefix: kwargs})
        # The healer's kappa and the run-parameter kappa (Theorem-2 bounds,
        # Lemma-5 accounting) must agree — sweeping one moves the other.
        if prefix == "healer_kwargs" and param == "kappa" and isinstance(value, int):
            updated = updated.with_overrides(kappa=value)
        return updated
    require(
        key in _axis_targets(),
        f"axis {key!r} is not a sweepable field; choose a run parameter from "
        f"{sorted(_axis_targets())} or a dotted kwargs path like 'healer_kwargs.kappa'",
    )
    if key == "kappa" and "kappa" in spec.healer_kwargs:
        kwargs = dict(spec.healer_kwargs)
        kwargs["kappa"] = value
        return spec.with_overrides(kappa=value, healer_kwargs=kwargs)
    return spec.with_overrides(**{key: value})


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario crossed with parameter axes.

    Attributes
    ----------
    base:
        The scenario every grid point starts from.
    axes:
        ``axis key -> list of values``; the cross product of all axes is the
        grid.  Axes iterate in sorted key order (the lexicographically last
        axis varies fastest), so the grid order is canonical — independent of
        authoring order and stable across JSON round-trips.
    name:
        Optional sweep label (defaults to the base label).
    derive_seeds:
        When false (default), every point inherits ``base.seed`` — the same
        initial graph and adversary stream at every grid point, so axis
        effects are not confounded with RNG changes.  When true, each
        point's ``seed`` is ``derive_seed(base.seed, "sweep", <canonical
        assignment>)`` — deterministic but independent per point (use for
        replicate-style sweeps).  Ignored when an axis sweeps ``seed``
        itself.
    """

    base: ScenarioSpec
    axes: dict = field(default_factory=dict)
    name: str | None = None
    derive_seeds: bool = False

    @property
    def label(self) -> str:
        """Return the sweep's name (or the base scenario's label)."""
        return self.name or self.base.label

    def validate(self) -> "SweepSpec":
        """Check the base spec and every axis key/value list."""
        self.base.validate()
        require(bool(self.axes), "a sweep needs at least one axis")
        for key, values in self.axes.items():
            require(
                isinstance(values, (list, tuple)) and len(values) > 0,
                f"axis {key!r} must map to a non-empty list of values",
            )
            # Surface bad keys now rather than at expansion time.
            apply_axis(self.base, key, values[0])
        return self

    def points(self) -> list[dict]:
        """Return the grid as a list of ``{axis: value}`` assignments."""
        self.validate()
        assignments: list[dict] = [{}]
        for key in sorted(self.axes):
            values = self.axes[key]
            assignments = [
                {**assignment, key: value} for assignment in assignments for value in values
            ]
        return assignments

    def expand(self) -> list[ScenarioSpec]:
        """Cross-product the axes into concrete, individually-seeded specs."""
        specs: list[ScenarioSpec] = []
        sweeps_seed = any(key == "seed" for key in self.axes)
        for assignment in self.points():
            spec = self.base
            for key, value in assignment.items():
                spec = apply_axis(spec, key, value)
            suffix = ",".join(f"{key}={value}" for key, value in assignment.items())
            point_name = f"{self.label}[{suffix}]"
            overrides: dict = {"name": point_name}
            if self.derive_seeds and not sweeps_seed:
                canonical = json.dumps(assignment, sort_keys=True)
                overrides["seed"] = derive_seed(self.base.seed, "sweep", canonical)
            specs.append(spec.with_overrides(**overrides))
        return specs

    def fingerprint(self) -> str:
        """Return the sweep's canonical-JSON SHA-256 identity.

        Stable across axis *authoring* order (dict key order is canonicalized
        away); axis *value* order is semantic — it sets the grid order and
        point names — and therefore changes the fingerprint.
        """
        return canonical_fingerprint(self.to_dict())

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Return the sweep as a plain dict."""
        return {
            "base": self.base.to_dict(),
            "axes": {key: list(values) for key, values in self.axes.items()},
            "name": self.name,
            "derive_seeds": self.derive_seeds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a sweep from a dict, rejecting unknown keys."""
        known = {"base", "axes", "name", "derive_seeds"}
        unknown = sorted(set(data) - known)
        require(not unknown, f"unknown SweepSpec fields {unknown}; known fields: {sorted(known)}")
        require("base" in data and "axes" in data, "SweepSpec requires 'base' and 'axes'")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=dict(data["axes"]),
            name=data.get("name"),
            derive_seeds=data.get("derive_seeds", False),
        )

    def to_json(self) -> str:
        """Return canonical JSON (sorted keys, 2-space indent, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse :meth:`to_json` output back into a sweep."""
        data = json.loads(text)
        require(isinstance(data, dict), "a sweep spec must be a JSON object")
        return cls.from_dict(data)
