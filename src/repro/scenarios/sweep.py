"""Grid/matrix sweep expansion over scenario parameter axes.

A :class:`SweepSpec` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus named axes, each a list of values.  ``expand()`` cross-products the axes
into one concrete spec per grid point — the declarative replacement for the
hand-rolled loops :mod:`repro.harness.sweeps` used to require.

Axis keys address either a run parameter (``"timesteps"``) or a component
keyword through a dotted path (``"healer_kwargs.kappa"``).  By default every
point inherits the base seed, so the only thing varying along an axis is the
axis itself (a kappa sweep compares the same initial graph and the same
churn trace); set ``derive_seeds=True`` for replicate-style sweeps, where
each point gets a deterministic seed derived from its axis assignment.
``replicates=N`` goes further: every grid point expands into ``N`` specs,
each with a seed derived from the axis assignment *and* the replicate id, so
the paper's statistical claims can be estimated over independent RNG draws
at every point (``repro report`` aggregates them back per base point).
Either way expansion is a pure function of the sweep document — independent
of execution order and worker count — so
``run_scenarios(sweep.expand(), workers=4)`` is bit-identical to
``workers=1``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, fields

from repro.scenarios.policy import PointPolicy
from repro.scenarios.spec import ScenarioSpec, canonical_fingerprint
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Axis prefixes that address component kwargs via a dotted path.
_KWARGS_FIELDS = ("healer_kwargs", "adversary_kwargs", "topology_kwargs")

#: The trailing replicate marker ``expand()`` bakes into point names when
#: ``replicates > 1`` — the single format the stream index and the report's
#: per-base-point aggregation parse back out.
_REPLICATE_SUFFIX = re.compile(r"\[rep=(\d+)\]$")


def flatten_dotted(mapping: dict, prefix: str = "") -> dict:
    """Flatten nested dicts to dotted keys; non-dict values pass through.

    This is the single definition of the dotted axis-key space a spec spans
    (``healer_kwargs.kappa``): axis inference in the report generator and
    cost-neighbor detection in the resume scheduler both flatten through
    here, so they can never disagree about what counts as an axis key.
    """
    flat: dict = {}
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_dotted(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def split_replicate(label: str | None) -> tuple[str | None, int | None]:
    """Split a point label into ``(base label, replicate id)``.

    Labels without a trailing ``[rep=N]`` marker return ``(label, None)`` —
    they are single-shot points, not members of a replicate group.
    """
    if not label:
        return label, None
    match = _REPLICATE_SUFFIX.search(label)
    if match is None:
        return label, None
    return label[: match.start()], int(match.group(1))


def assignment_canonical(assignment: dict) -> str:
    """Return the canonical JSON encoding of one axis assignment.

    This string is the seed-derivation label shared by :meth:`SweepSpec.expand`
    and the adaptive round driver (:mod:`repro.scenarios.adaptive`), so a
    replicate's seed never depends on which of the two materialized it.
    """
    return json.dumps(assignment, sort_keys=True)


def point_label(label: str, assignment: dict) -> str:
    """Return the base (replicate-free) name of one grid point."""
    suffix = ",".join(f"{key}={assignment[key]}" for key in sorted(assignment))
    return f"{label}[{suffix}]" if suffix else label


def replicate_spec(base: ScenarioSpec, label: str, assignment: dict, rep: int) -> ScenarioSpec:
    """Materialize replicate ``rep`` of one grid point.

    The single definition of replicate identity: the name carries the
    ``[rep=N]`` marker and the seed derives from the base seed, the canonical
    assignment and the replicate id — so an ``expand()`` grid and an adaptive
    round that reach the same ``(assignment, rep)`` produce the same
    fingerprint and can resume each other's recorded artifacts.
    """
    spec = base
    for key in sorted(assignment):
        spec = apply_axis(spec, key, assignment[key])
    return spec.with_overrides(
        name=f"{point_label(label, assignment)}[rep={rep}]",
        seed=derive_seed(
            base.seed, "sweep", assignment_canonical(assignment), "replicate", rep
        ),
    )


def _axis_targets() -> set[str]:
    """Return the top-level spec fields an axis may address directly."""
    return {f.name for f in fields(ScenarioSpec)} - set(_KWARGS_FIELDS) - {"name"}


def apply_axis(spec: ScenarioSpec, key: str, value) -> ScenarioSpec:
    """Return ``spec`` with one axis assignment applied.

    ``key`` is either a ScenarioSpec field name or
    ``"<component>_kwargs.<param>"``.
    """
    if "." in key:
        prefix, _, param = key.partition(".")
        require(
            prefix in _KWARGS_FIELDS,
            f"axis {key!r}: dotted axes must start with one of {list(_KWARGS_FIELDS)}",
        )
        kwargs = dict(getattr(spec, prefix))
        kwargs[param] = value
        updated = spec.with_overrides(**{prefix: kwargs})
        # The healer's kappa and the run-parameter kappa (Theorem-2 bounds,
        # Lemma-5 accounting) must agree — sweeping one moves the other.
        if prefix == "healer_kwargs" and param == "kappa" and isinstance(value, int):
            updated = updated.with_overrides(kappa=value)
        return updated
    require(
        key in _axis_targets(),
        f"axis {key!r} is not a sweepable field; choose a run parameter from "
        f"{sorted(_axis_targets())} or a dotted kwargs path like 'healer_kwargs.kappa'",
    )
    if key == "kappa" and "kappa" in spec.healer_kwargs:
        kwargs = dict(spec.healer_kwargs)
        kwargs["kappa"] = value
        return spec.with_overrides(kappa=value, healer_kwargs=kwargs)
    return spec.with_overrides(**{key: value})


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario crossed with parameter axes.

    Attributes
    ----------
    base:
        The scenario every grid point starts from.
    axes:
        ``axis key -> list of values``; the cross product of all axes is the
        grid.  Axes iterate in sorted key order (the lexicographically last
        axis varies fastest), so the grid order is canonical — independent of
        authoring order and stable across JSON round-trips.
    name:
        Optional sweep label (defaults to the base label).
    derive_seeds:
        When false (default), every point inherits ``base.seed`` — the same
        initial graph and adversary stream at every grid point, so axis
        effects are not confounded with RNG changes.  When true, each
        point's ``seed`` is ``derive_seed(base.seed, "sweep", <canonical
        assignment>)`` — deterministic but independent per point (use for
        replicate-style sweeps).  Ignored when an axis sweeps ``seed``
        itself.
    replicates:
        How many independently-seeded copies of each grid point to expand
        (default 1 — the pre-replicate behavior, byte-for-byte).  With
        ``N > 1`` every point becomes ``N`` specs named
        ``<point>[rep=0] .. <point>[rep=N-1]``, each seeded
        ``derive_seed(base.seed, "sweep", <canonical assignment>,
        "replicate", rep)`` — so replicate fingerprints are pairwise
        distinct yet stable under axis reordering.  Incompatible with a
        ``seed`` axis (sweep the seed or replicate, not both).
    policy:
        Optional :class:`~repro.scenarios.policy.PointPolicy` bounding each
        point's execution (timeout, retries, backoff).  Purely operational:
        it never enters the expanded specs or their fingerprints, so
        changing the policy on a resume still matches every recorded
        artifact.  CLI flags (``--timeout`` / ``--max-retries`` /
        ``--backoff``) override it field-wise.
    executor:
        Optional name of the execution backend the sweep prefers
        (``serial``, ``process-pool``, ``subprocess-fleet``, or a
        third-party ``repro.executors`` entry point).  Operational like
        ``policy``: it never enters the expanded specs or their
        fingerprints, so any backend can resume a sweep started under any
        other.  ``repro sweep --executor`` overrides it.
    adaptive:
        Optional :class:`~repro.scenarios.adaptive.AdaptiveSpec` declaring a
        round-structured schedule (CI-driven replicate stopping, or
        successive halving over one axis).  Like ``policy``/``executor`` it
        is omitted from :meth:`to_dict` when unset, so pre-existing sweep
        documents keep their schema and fingerprints; unlike them it *does*
        change what runs — ``run_sweep``/``repro sweep`` route an adaptive
        sweep through :func:`~repro.scenarios.adaptive.run_adaptive` instead
        of expanding the full grid.  Adaptive sweeps manage per-point
        replicate counts themselves, so ``replicates`` must stay 1 and a
        ``seed`` axis is rejected.
    """

    base: ScenarioSpec
    axes: dict = field(default_factory=dict)
    name: str | None = None
    derive_seeds: bool = False
    replicates: int = 1
    policy: PointPolicy | None = None
    executor: str | None = None
    adaptive: "object | None" = None

    @property
    def label(self) -> str:
        """Return the sweep's name (or the base scenario's label)."""
        return self.name or self.base.label

    def validate(self) -> "SweepSpec":
        """Check the base spec, every axis key/value list and the replicate count."""
        self.base.validate()
        require(
            isinstance(self.replicates, int) and not isinstance(self.replicates, bool),
            "replicates must be an integer",
        )
        require(self.replicates >= 1, "replicates must be at least 1")
        require(
            bool(self.axes) or self.replicates > 1 or self.adaptive is not None,
            "a sweep needs at least one axis (or replicates > 1)",
        )
        require(
            not (self.replicates > 1 and "seed" in self.axes),
            "replicates > 1 derives a seed per replicate; it cannot be combined "
            "with a 'seed' axis — sweep the seed or replicate, not both",
        )
        if self.adaptive is not None:
            require(
                self.replicates == 1,
                "adaptive sweeps manage per-point replicate counts themselves; "
                "leave replicates at 1",
            )
            require(
                "seed" not in self.axes,
                "adaptive sweeps derive replicate seeds; they cannot be combined "
                "with a 'seed' axis",
            )
            self.adaptive.validate(self)
        if self.policy is not None:
            self.policy.validate()
        if self.executor is not None:
            # Resolve the name now (typo -> did-you-mean error at load time,
            # not after the grid has been half-executed).
            from repro.scenarios.registry import EXECUTORS

            EXECUTORS.get(self.executor)
        for key, values in self.axes.items():
            require(
                isinstance(values, (list, tuple)) and len(values) > 0,
                f"axis {key!r} must map to a non-empty list of values",
            )
            # Surface bad keys now rather than at expansion time.
            apply_axis(self.base, key, values[0])
        return self

    def points(self) -> list[dict]:
        """Return the grid as a list of ``{axis: value}`` assignments."""
        self.validate()
        assignments: list[dict] = [{}]
        for key in sorted(self.axes):
            values = self.axes[key]
            assignments = [
                {**assignment, key: value} for assignment in assignments for value in values
            ]
        return assignments

    def expand(self) -> list[ScenarioSpec]:
        """Cross-product the axes into concrete, individually-seeded specs.

        With ``replicates > 1`` the replicate id varies fastest: the grid is
        ``point0[rep=0..N-1], point1[rep=0..N-1], ...``, so a resumed run's
        artifact indices stay aligned with the un-replicated grid order.
        """
        specs: list[ScenarioSpec] = []
        sweeps_seed = any(key == "seed" for key in self.axes)
        for assignment in self.points():
            if self.replicates > 1:
                specs.extend(
                    replicate_spec(self.base, self.label, assignment, rep)
                    for rep in range(self.replicates)
                )
                continue
            spec = self.base
            for key, value in assignment.items():
                spec = apply_axis(spec, key, value)
            overrides: dict = {"name": point_label(self.label, assignment)}
            if self.derive_seeds and not sweeps_seed:
                overrides["seed"] = derive_seed(
                    self.base.seed, "sweep", assignment_canonical(assignment)
                )
            specs.append(spec.with_overrides(**overrides))
        return specs

    def fingerprint(self) -> str:
        """Return the sweep's canonical-JSON SHA-256 identity.

        Stable across axis *authoring* order (dict key order is canonicalized
        away); axis *value* order is semantic — it sets the grid order and
        point names — and therefore changes the fingerprint.
        """
        return canonical_fingerprint(self.to_dict())

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Return the sweep as a plain dict.

        ``policy``, ``executor`` and ``adaptive`` are omitted when unset, so
        the schema (and every sweep fingerprint) of documents predating them
        is unchanged byte for byte.
        """
        data = {
            "base": self.base.to_dict(),
            "axes": {key: list(values) for key, values in self.axes.items()},
            "name": self.name,
            "derive_seeds": self.derive_seeds,
            "replicates": self.replicates,
        }
        if self.policy is not None:
            data["policy"] = self.policy.to_dict()
        if self.executor is not None:
            data["executor"] = self.executor
        if self.adaptive is not None:
            data["adaptive"] = self.adaptive.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a sweep from a dict, rejecting unknown keys."""
        known = {
            "base", "axes", "name", "derive_seeds", "replicates", "policy",
            "executor", "adaptive",
        }
        unknown = sorted(set(data) - known)
        require(not unknown, f"unknown SweepSpec fields {unknown}; known fields: {sorted(known)}")
        require("base" in data and "axes" in data, "SweepSpec requires 'base' and 'axes'")
        policy = data.get("policy")
        adaptive = data.get("adaptive")
        if adaptive is not None:
            from repro.scenarios.adaptive import AdaptiveSpec

            adaptive = AdaptiveSpec.from_dict(adaptive)
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=dict(data["axes"]),
            name=data.get("name"),
            derive_seeds=data.get("derive_seeds", False),
            replicates=data.get("replicates", 1),
            policy=None if policy is None else PointPolicy.from_dict(policy),
            executor=data.get("executor"),
            adaptive=adaptive,
        )

    def to_json(self) -> str:
        """Return canonical JSON (sorted keys, 2-space indent, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse :meth:`to_json` output back into a sweep."""
        data = json.loads(text)
        require(isinstance(data, dict), "a sweep spec must be a JSON object")
        return cls.from_dict(data)
