"""Regenerate the checked-in golden fixtures for `repro report`.

Usage::

    PYTHONPATH=src python scripts/regen_report_golden.py

Rewrites ``tests/golden/report_sweep/`` (a small streamed sweep directory)
and ``tests/golden/report_expected/`` (the report.md / summary.csv /
timeline.csv that ``repro report`` must render from it), plus
``tests/golden/report_replicates_sweep/`` (a gzip-compressed streamed sweep
with ``replicates=3``) and ``tests/golden/report_replicates_expected/``
(report.md / summary.csv / replicates.csv / timeline.csv, rendered with the
bootstrap-CI column).  The regression test ``tests/test_analysis_report.py``
compares byte-for-byte, so report formatting changes are deliberate: rerun
this script and review the diff.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.report import generate_report  # noqa: E402
from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios  # noqa: E402

SWEEP_DIR = REPO / "tests" / "golden" / "report_sweep"
EXPECTED_DIR = REPO / "tests" / "golden" / "report_expected"

#: Deliberately tiny: 4 points x 5 timesteps on 12 nodes keeps the checked-in
#: artifacts small and the regression test fast, while exercising two axes,
#: timelines and both healers' summary shapes.
BASE = ScenarioSpec(
    name="golden",
    # No healer_kwargs: the run-parameter kappa is injected for kappa-aware
    # healers, and the "no-heal" axis value does not accept one at all.
    healer="xheal",
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 12, "degree": 4},
    timesteps=5,
    metric_every=2,
    exact_expansion_limit=12,
    stretch_sample_pairs=20,
    seed=5,
)

SWEEP = SweepSpec(base=BASE, axes={"healer": ["xheal", "no-heal"], "timesteps": [3, 5]})

REPLICATES_SWEEP_DIR = REPO / "tests" / "golden" / "report_replicates_sweep"
REPLICATES_EXPECTED_DIR = REPO / "tests" / "golden" / "report_replicates_expected"

#: The replicate golden: one axis x 3 replicates, streamed compressed — pins
#: the per-base-point mean/std/min/max + bootstrap-CI aggregation and the
#: transparent .jsonl.gz read path at once.
REPLICATES_SWEEP = SweepSpec(
    base=BASE.with_overrides(name="golden-rep", timesteps=4, seed=11),
    axes={"healer": ["xheal", "no-heal"]},
    replicates=3,
)


def main() -> None:
    for directory in (
        SWEEP_DIR,
        EXPECTED_DIR,
        REPLICATES_SWEEP_DIR,
        REPLICATES_EXPECTED_DIR,
    ):
        if directory.exists():
            shutil.rmtree(directory)
    result = run_scenarios(SWEEP.expand(), stream_to=SWEEP_DIR)
    print(f"streamed {result.total} points to {SWEEP_DIR}")
    report = generate_report(SWEEP_DIR, out_dir=EXPECTED_DIR)
    print(f"wrote {[path.name for path in report.written]} to {EXPECTED_DIR}")

    result = run_scenarios(
        REPLICATES_SWEEP.expand(), stream_to=REPLICATES_SWEEP_DIR, compress=True
    )
    print(f"streamed {result.total} compressed points to {REPLICATES_SWEEP_DIR}")
    report = generate_report(REPLICATES_SWEEP_DIR, out_dir=REPLICATES_EXPECTED_DIR, ci=True)
    print(f"wrote {[path.name for path in report.written]} to {REPLICATES_EXPECTED_DIR}")


if __name__ == "__main__":
    main()
