#!/usr/bin/env python
"""Regenerate the reference summary-row golden file.

``tests/golden/reference_summaries.json`` pins ``summary_row()`` outputs for
a matrix of scenarios spanning every healer family, several adversaries and
topologies.  The file was first generated with the pre-data-oriented (pure
NetworkX) simulation core; ``tests/test_harness_reference.py`` replays the
same specs through the current core and asserts byte-identical rows, which
is what keeps the struct-of-arrays rewrite honest.

Run from the repo root::

    PYTHONPATH=src python scripts/regen_reference_golden.py

Only regenerate when a summary-row change is *intended* (and say so in the
commit); an unintended diff here is a behaviour regression, not noise.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.experiment import run_experiment
from repro.scenarios.spec import ScenarioSpec

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "reference_summaries.json"


def reference_specs() -> list[ScenarioSpec]:
    """The pinned scenario matrix (small, fast, but crossing every code path)."""
    specs: list[ScenarioSpec] = []

    def add(**kwargs) -> None:
        defaults = dict(
            topology="random-regular",
            topology_kwargs={"n": 24, "degree": 4},
            timesteps=30,
            stretch_sample_pairs=50,
            seed=11,
        )
        defaults.update(kwargs)
        specs.append(ScenarioSpec(**defaults))

    # Xheal under every adversary family (the hot path the rewrite targets).
    add(healer="xheal", adversary="random")
    add(healer="xheal", adversary="deletion-only", timesteps=18)
    add(healer="xheal", adversary="max-degree", timesteps=16)
    add(healer="xheal", adversary="min-degree", timesteps=16, seed=5)
    add(healer="xheal", adversary="star-center", topology="star", topology_kwargs={"n": 20})
    add(healer="xheal", adversary="cascade", timesteps=20, seed=3)
    add(healer="xheal", adversary="churn", timesteps=40)
    add(healer="xheal", adversary="insertion-only", timesteps=25)
    # Cadenced snapshots + invariant checks ride the same engine cache.
    add(healer="xheal", adversary="random", metric_every=5, check_invariants_every=10)
    # Other kappas and topologies.
    add(healer="xheal", adversary="random", kappa=3, seed=2)
    add(healer="xheal", adversary="random", topology="erdos-renyi",
        topology_kwargs={"n": 26, "average_degree": 5.0})
    add(healer="xheal", adversary="hub-attack", topology="power-law",
        topology_kwargs={"n": 24, "m": 2}, timesteps=20)
    add(healer="xheal", adversary="deletion-only", topology="two-cliques",
        topology_kwargs={"n": 22}, timesteps=14)
    add(healer="xheal", adversary="random", topology="grid",
        topology_kwargs={"rows": 5, "cols": 5}, timesteps=24)
    # Ablations and the distributed protocol share the Xheal edge machinery.
    add(healer="xheal-always-merge", adversary="random", timesteps=20)
    add(healer="xheal-clique-clouds", adversary="deletion-only", timesteps=16)
    add(healer="distributed-xheal", adversary="random", timesteps=16, seed=7)
    # Baselines exercise the plain SelfHealer event path on the store.
    add(healer="no-heal", adversary="random")
    add(healer="line-heal", adversary="deletion-only", timesteps=18)
    add(healer="cycle-heal", adversary="random", timesteps=24)
    add(healer="clique-heal", adversary="deletion-only", topology="ring",
        topology_kwargs={"n": 18}, timesteps=12)
    add(healer="random-k-heal", adversary="cascade", timesteps=20)
    add(healer="forgiving-graph", adversary="random", timesteps=24)
    add(healer="forgiving-tree", adversary="deletion-only", timesteps=16)
    return specs


def main() -> None:
    entries = []
    for spec in reference_specs():
        result = run_experiment(spec.validate().compile())
        entries.append({"spec": spec.to_dict(), "summary": result.summary_row()})
        print(f"{spec.label}: {result.summary_row()['nodes']} nodes, "
              f"theorem2={result.summary_row()['theorem2_holds']}")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(entries)} reference rows to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
