#!/usr/bin/env python
"""Record old-vs-new metric kernel timings into ``BENCH_metrics.json``.

Runs every kernel the `repro.perf` engine accelerated against its slow
``*_reference`` formulation on expander workloads (n in {64, 256, 1024}) plus
the exact-enumeration sizes, and writes per-kernel timings + speedups so
future PRs have a perf trajectory to regress against.

``--sweeps`` instead records a streamed-sweep throughput datapoint (points/s
serial vs parallel, compressed vs uncompressed, bytes on disk, resume-scan
overhead) into ``BENCH_sweeps.json`` — the trajectory the million-point
sweep work regresses against.

Usage::

    python scripts/bench_record.py            # writes ./BENCH_metrics.json
    python scripts/bench_record.py --out path
    python scripts/bench_record.py --sweeps   # writes ./BENCH_sweeps.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import networkx as nx  # noqa: E402

from repro.adversary import RandomAdversary  # noqa: E402
from repro.core.xheal import Xheal  # noqa: E402
from repro.harness.experiment import ExperimentConfig, run_experiment  # noqa: E402
from repro.perf.engine import MetricsEngine  # noqa: E402
from repro.spectral.expansion import (  # noqa: E402
    exact_minimum_cut_reference,
    minimum_expansion_cut,
)
from repro.spectral.laplacian import (  # noqa: E402
    algebraic_connectivity,
    algebraic_connectivity_reference,
    normalized_lambda2_reference,
    normalized_laplacian_second_eigenvalue,
)
from repro.spectral.stretch import (  # noqa: E402
    stretch_against_ghost,
    stretch_against_ghost_reference,
)

EXPANDER_SIZES = (64, 256, 1024)
STRETCH_SAMPLE_PAIRS = 200


def _time(callable_, repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall-clock seconds plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _expander(n: int, seed: int) -> nx.Graph:
    return nx.random_regular_graph(8, n, seed=seed)


def bench_stretch() -> dict[str, dict]:
    """Sampled stretch: all-pairs reference vs sampled-source BFS."""
    rows = {}
    for n in EXPANDER_SIZES:
        healed = _expander(n, seed=1)
        ghost = _expander(n, seed=2)
        repeat = 3 if n <= 256 else 1
        old_s, old_val = _time(
            lambda: stretch_against_ghost_reference(
                healed, ghost, sample_pairs=STRETCH_SAMPLE_PAIRS, seed=0
            ),
            repeat=repeat,
        )
        new_s, new_val = _time(
            lambda: stretch_against_ghost(
                healed, ghost, sample_pairs=STRETCH_SAMPLE_PAIRS, seed=0
            ),
            repeat=repeat,
        )
        assert old_val == new_val, f"stretch mismatch at n={n}"
        rows[f"stretch_sampled_n{n}"] = {
            "n": n,
            "sample_pairs": STRETCH_SAMPLE_PAIRS,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s,
            "identical_output": True,
        }
    return rows


def bench_exact_expansion() -> dict[str, dict]:
    """Exact minimum-expansion cut: per-subset rescan vs Gray-code kernel."""
    rows = {}
    for n, repeat in ((14, 3), (18, 1)):
        graph = nx.random_regular_graph(4, n, seed=1)
        old_s, old_res = _time(lambda: exact_minimum_cut_reference(graph), repeat=repeat)
        new_s, new_res = _time(lambda: minimum_expansion_cut(graph), repeat=repeat)
        assert old_res.value == new_res.value, f"expansion mismatch at n={n}"
        rows[f"exact_expansion_n{n}"] = {
            "n": n,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s,
            "value": old_res.value,
        }
    # Headline capability: n=22 is now affordable at all (the reference would
    # need ~2^21 Python-level edge rescans, i.e. minutes).
    graph22 = nx.random_regular_graph(4, 22, seed=1)
    new_s, new_res = _time(lambda: minimum_expansion_cut(graph22), repeat=1)
    rows["exact_expansion_n22_fast_only"] = {
        "n": 22,
        "old_s": None,
        "new_s": new_s,
        "speedup": None,
        "value": new_res.value,
        "note": "exact limit lifted 18 -> 22; reference impractical at this size",
    }
    return rows


def bench_spectral() -> dict[str, dict]:
    """lambda_2 solvers: dense full spectrum vs sparse Lanczos (warm-startable)."""
    rows = {}
    for n in EXPANDER_SIZES:
        graph = _expander(n, seed=3)
        repeat = 3 if n <= 256 else 2
        old_s, old_val = _time(lambda: algebraic_connectivity_reference(graph), repeat=repeat)
        new_s, new_val = _time(lambda: algebraic_connectivity(graph), repeat=repeat)
        assert abs(old_val - new_val) < 1e-8
        rows[f"algebraic_connectivity_n{n}"] = {
            "n": n,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s,
        }
        old_s, old_val = _time(lambda: normalized_lambda2_reference(graph), repeat=repeat)
        new_s, new_val = _time(
            lambda: normalized_laplacian_second_eigenvalue(graph), repeat=repeat
        )
        assert abs(old_val - new_val) < 1e-8
        rows[f"normalized_lambda2_n{n}"] = {
            "n": n,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s,
        }
    return rows


def bench_cached_snapshot() -> dict[str, dict]:
    """Version-cached re-snapshot of an unchanged graph vs recomputing it."""
    rows = {}
    for n in (256, 1024):
        graph = _expander(n, seed=4)
        engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=STRETCH_SAMPLE_PAIRS)
        cold_s, _ = _time(lambda: engine.snapshot(graph, version=1), repeat=1)
        warm_s, _ = _time(lambda: engine.snapshot(graph, version=1), repeat=3)
        rows[f"snapshot_unchanged_graph_n{n}"] = {
            "n": n,
            "old_s": cold_s,  # what every repeated snapshot used to cost
            "new_s": warm_s,
            "speedup": cold_s / warm_s,
        }
    return rows


def bench_experiment_loop() -> dict[str, dict]:
    """The ISSUE's end-to-end workload: 200-step, 256-node snapshot loop."""
    config = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: RandomAdversary(seed=2, delete_probability=0.55),
        initial_graph=nx.random_regular_graph(8, 256, seed=3),
        timesteps=200,
        metric_every=25,
        check_invariants_every=25,
        exact_expansion_limit=16,
        stretch_sample_pairs=100,
    )
    elapsed, result = _time(lambda: run_experiment(config), repeat=1)
    return {
        "experiment_200steps_n256": {
            "n": 256,
            "timesteps": 200,
            "new_s": elapsed,
            "cache_stats": result.cache_stats,
        }
    }


def bench_sweep_throughput() -> dict[str, dict]:
    """Streamed-sweep throughput: serial/parallel x plain/gzip + resume scan."""
    import shutil
    import tempfile

    from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios

    base = ScenarioSpec(
        name="bench-sweep",
        healer="xheal",
        adversary="random",
        adversary_kwargs={"delete_probability": 0.6},
        topology="random-regular",
        topology_kwargs={"n": 16, "degree": 4},
        timesteps=5,
        exact_expansion_limit=0,
        stretch_sample_pairs=10,
        seed=7,
    )
    sweep = SweepSpec(
        base=base, axes={"timesteps": [3, 5, 7]}, replicates=8
    )  # 24 points
    specs = sweep.expand()

    def dir_bytes(directory: pathlib.Path) -> int:
        return sum(path.stat().st_size for path in directory.iterdir())

    rows: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        for label, workers, compress in (
            ("serial_plain", 1, False),
            ("serial_gzip", 1, True),
            ("parallel4_plain", 4, False),
            ("parallel4_gzip", 4, True),
        ):
            directory = tmp / label
            start = time.perf_counter()
            run_scenarios(specs, workers=workers, stream_to=directory, compress=compress)
            elapsed = time.perf_counter() - start
            rows[f"stream_{label}"] = {
                "points": len(specs),
                "workers": workers,
                "compress": compress,
                "wall_s": elapsed,
                "points_per_s": len(specs) / elapsed,
                "dir_bytes": dir_bytes(directory),
            }
        rows["compression_ratio"] = {
            "plain_bytes": rows["stream_serial_plain"]["dir_bytes"],
            "gzip_bytes": rows["stream_serial_gzip"]["dir_bytes"],
            "ratio": rows["stream_serial_plain"]["dir_bytes"]
            / rows["stream_serial_gzip"]["dir_bytes"],
        }
        # Per-backend throughput of the same grid (ISSUE 7 executor
        # registry): the fleet's row prices its subprocess + JSONL-pipe
        # overhead against the in-process pool.
        for name in ("serial", "process-pool", "subprocess-fleet"):
            directory = tmp / f"executor-{name}"
            start = time.perf_counter()
            run_scenarios(specs, workers=4, stream_to=directory, executor=name)
            elapsed = time.perf_counter() - start
            rows[f"executor_{name.replace('-', '_')}"] = {
                "points": len(specs),
                "workers": 4,
                "executor": name,
                "wall_s": elapsed,
                "points_per_s": len(specs) / elapsed,
            }
            shutil.rmtree(directory)
        # Data-oriented core throughput: the same 24 points run in-process
        # (no artifact I/O), with and without the final snapshot trio.  The
        # snapshot_every=0 row is the per-point cost a million-point grid
        # actually pays for simulation once snapshots are off the hot path.
        from repro.harness.experiment import run_experiment as run_one

        start = time.perf_counter()
        for spec in specs:
            run_one(spec.validate().compile())
        elapsed = time.perf_counter() - start
        rows["core_with_snapshots"] = {
            "points": len(specs),
            "wall_s": elapsed,
            "points_per_s": len(specs) / elapsed,
        }
        start = time.perf_counter()
        for spec in specs:
            run_one(spec.with_overrides(snapshot_every=0).validate().compile())
        elapsed = time.perf_counter() - start
        rows["core_points_per_s"] = {
            "points": len(specs),
            "snapshot_every": 0,
            "wall_s": elapsed,
            "points_per_s": len(specs) / elapsed,
        }
        # Resume of a fully recorded directory = pure verify-scan cost.
        start = time.perf_counter()
        result = run_scenarios(specs, resume=tmp / "serial_gzip")
        elapsed = time.perf_counter() - start
        assert result.executed == 0
        rows["resume_scan_gzip"] = {
            "points": len(specs),
            "wall_s": elapsed,
            "points_per_s": len(specs) / elapsed,
        }
        # The adaptive schedule's dividend (ISSUE 10): successive halving
        # over kappa reaches the same final-budget winner while materializing
        # only a fraction of the exhaustive grid at that budget.
        from repro.scenarios.adaptive import AdaptiveSpec, HalvingSchedule, run_adaptive

        adaptive = SweepSpec(
            base=base,
            axes={"healer_kwargs.kappa": [2, 3, 4, 5]},
            adaptive=AdaptiveSpec(
                halving=HalvingSchedule(
                    axis="healer_kwargs.kappa",
                    objective="amortized_msgs",
                    replicates=2,
                    growth=2,
                )
            ),
        )
        start = time.perf_counter()
        adaptive_result = run_adaptive(adaptive, tmp / "adaptive")
        elapsed = time.perf_counter() - start
        rows["adaptive_points_saved"] = {
            "rounds": len(adaptive_result.rounds),
            "points_run": len(adaptive_result.specs),
            "exhaustive_points": adaptive_result.exhaustive_points,
            "points_saved": adaptive_result.points_saved,
            "saved_fraction": adaptive_result.points_saved
            / adaptive_result.exhaustive_points,
            "wall_s": elapsed,
        }
        shutil.rmtree(tmp / "serial_plain")
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: repo root BENCH_metrics.json, "
        "or BENCH_sweeps.json with --sweeps)",
    )
    parser.add_argument(
        "--sweeps",
        action="store_true",
        help="record streamed-sweep throughput into BENCH_sweeps.json "
        "instead of the metric kernels",
    )
    args = parser.parse_args()
    root = pathlib.Path(__file__).resolve().parents[1]

    if args.sweeps:
        print("benchmarking streamed sweeps ...", flush=True)
        kernels = bench_sweep_throughput()
        payload = {
            "schema": "bench_sweeps/v1",
            "workload": "24-point sweep (3 timesteps x 8 replicates), n=16 expanders",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "sweeps": kernels,
        }
        out = pathlib.Path(args.out) if args.out else root / "BENCH_sweeps.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
        for key, row in kernels.items():
            rate = row.get("points_per_s")
            shown = f"{rate:7.1f} pts/s" if isinstance(rate, float) else "    n/a     "
            print(f"  {key:28s} {shown}")
        return
    args.out = args.out or str(root / "BENCH_metrics.json")

    kernels: dict[str, dict] = {}
    for name, bench in (
        ("stretch", bench_stretch),
        ("exact expansion", bench_exact_expansion),
        ("spectral", bench_spectral),
        ("cached snapshot", bench_cached_snapshot),
        ("experiment loop", bench_experiment_loop),
    ):
        print(f"benchmarking {name} ...", flush=True)
        kernels.update(bench())

    payload = {
        "schema": "bench_metrics/v1",
        "workloads": f"random 8-regular expanders, n in {list(EXPANDER_SIZES)}",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "kernels": kernels,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\nwrote {out}")
    for key, row in kernels.items():
        speedup = row.get("speedup")
        shown = f"{speedup:6.1f}x" if isinstance(speedup, float) else "   n/a "
        print(f"  {key:38s} {shown}  new={row.get('new_s', 0):.4f}s")


if __name__ == "__main__":
    main()
