"""Long sweeps: stream each point durably, crash, resume, report.

PR 2's ``run_scenarios`` buffered every record in memory and a crash lost
everything.  This walkthrough shows the streaming path end to end:

1. stream a sweep to a directory — each finished point lands on disk
   (fsync'd JSONL artifact + index line) the moment it completes,
2. simulate a crash partway through (here: run only a prefix of the grid),
3. resume — every expanded spec is fingerprinted (canonical-JSON SHA-256)
   and only the points the directory does not record are executed,
4. verify the resumed directory is byte-identical to an uninterrupted run,
5. aggregate the artifacts into per-axis tables with the report generator.

Run with::

    python examples/long_sweep_resume.py

The shell equivalent is::

    python -m repro sweep examples/specs/resume_smoke_sweep.json --stream-to out/
    # ... crash / ^C / power loss ...
    python -m repro sweep examples/specs/resume_smoke_sweep.json --resume out/
    python -m repro report out/
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.report import generate_report
from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios

BASE = ScenarioSpec(
    name="long-sweep",
    healer="xheal",
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 24, "degree": 4},
    timesteps=10,
    metric_every=5,
    exact_expansion_limit=12,
    stretch_sample_pairs=50,
    seed=17,
)

SWEEP = SweepSpec(
    base=BASE,
    axes={"healer_kwargs.kappa": [2, 4], "timesteps": [6, 10]},
)


def canonical_files(directory: Path) -> dict[str, bytes]:
    """Artifacts + manifest; index.jsonl records completion order, not content."""
    return {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if path.name != "index.jsonl"
    }


def main() -> None:
    specs = SWEEP.expand()
    with tempfile.TemporaryDirectory() as tmp:
        full_dir, crash_dir = Path(tmp) / "full", Path(tmp) / "crashed"

        full = run_scenarios(specs, workers=2, stream_to=full_dir)
        print(f"uninterrupted: executed {full.executed}/{full.total} points")

        # A "crash" after 2 of 4 points: only a prefix of the grid ran.
        run_scenarios(specs[:2], stream_to=crash_dir)
        resumed = run_scenarios(specs, workers=2, resume=crash_dir)
        print(
            f"resumed:       executed {resumed.executed}, "
            f"skipped {resumed.skipped} already-recorded points"
        )

        identical = canonical_files(full_dir) == canonical_files(crash_dir)
        print(f"resumed directory byte-identical to uninterrupted run: {identical}")

        report = generate_report(full_dir)
        print()
        print(report.markdown)


if __name__ == "__main__":
    main()
