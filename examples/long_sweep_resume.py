"""Long sweeps: stream each point durably, crash, resume, report.

PR 2's ``run_scenarios`` buffered every record in memory and a crash lost
everything.  This walkthrough shows the streaming path end to end:

1. stream a sweep to a directory — each finished point lands on disk
   (fsync'd artifact + index line, gzip-compressed here) the moment it
   completes, with its wall clock recorded in the index,
2. simulate a crash partway through (here: run only a prefix of the grid),
3. resume — every expanded spec is fingerprinted (canonical-JSON SHA-256)
   and only the points the directory does not record are executed,
   scheduled most-expensive-first from the recorded costs (compression is
   auto-detected, nothing needs to be re-specified),
4. verify the resumed directory is byte-identical to an uninterrupted run
   (manifests compared through ``strip_costs`` — the wall-clock columns are
   the one legitimately nondeterministic part),
5. aggregate the artifacts into per-axis and per-replicate tables with the
   report generator (``watch_report`` is the live-tail variant of step 5
   for sweeps still running).

Run with::

    python examples/long_sweep_resume.py

The shell equivalent is::

    python -m repro sweep sweep.json --stream-to out/ --compress --replicates 2
    # ... crash / ^C / power loss ...   meanwhile, in another terminal:
    python -m repro report out/ --watch
    python -m repro sweep sweep.json --resume out/ --replicates 2
    python -m repro report out/ --ci
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.analysis.report import generate_report
from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios, strip_costs

BASE = ScenarioSpec(
    name="long-sweep",
    healer="xheal",
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 24, "degree": 4},
    timesteps=10,
    metric_every=5,
    exact_expansion_limit=12,
    stretch_sample_pairs=50,
    seed=17,
)

SWEEP = SweepSpec(
    base=BASE,
    axes={"healer_kwargs.kappa": [2, 4], "timesteps": [6, 10]},
    replicates=2,
)


def canonical_files(directory: Path) -> dict[str, object]:
    """Artifacts byte-for-byte + cost-stripped manifest; the index records
    completion order, not content, and is excluded."""
    files: dict[str, object] = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if path.name not in ("index.jsonl", "MANIFEST.json")
    }
    manifest = directory / "MANIFEST.json"
    if manifest.is_file():
        files["MANIFEST.json"] = strip_costs(json.loads(manifest.read_text()))
    return files


def main() -> None:
    specs = SWEEP.expand()
    with tempfile.TemporaryDirectory() as tmp:
        full_dir, crash_dir = Path(tmp) / "full", Path(tmp) / "crashed"

        full = run_scenarios(specs, workers=2, stream_to=full_dir, compress=True)
        print(f"uninterrupted: executed {full.executed}/{full.total} points (gzip)")

        # A "crash" after 3 of 8 points: only a prefix of the grid ran.
        run_scenarios(specs[:3], stream_to=crash_dir, compress=True)
        (crash_dir / "MANIFEST.json").unlink()  # a real crash never finalizes
        resumed = run_scenarios(specs, workers=2, resume=crash_dir)
        print(
            f"resumed:       executed {resumed.executed}, "
            f"skipped {resumed.skipped} already-recorded points "
            f"(compression auto-detected, missing points most-expensive-first)"
        )

        identical = canonical_files(full_dir) == canonical_files(crash_dir)
        print(f"resumed directory byte-identical to uninterrupted run: {identical}")

        report = generate_report(full_dir, ci=True)
        print()
        print(report.markdown)


if __name__ == "__main__":
    main()
