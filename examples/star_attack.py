"""The paper's worst case: deleting the centre of a star.

Section 1 of the paper argues that tree-based self-healing (Forgiving Tree /
Forgiving Graph) collapses the expansion of a star from a constant to O(1/n)
when the centre is deleted, while Xheal's expander cloud keeps it constant.
This example walks through that single deletion step by step and prints what
each healer actually built.

Run with::

    python examples/star_attack.py
"""

from __future__ import annotations

import networkx as nx

from repro.baselines import ForgivingGraphHeal, ForgivingTreeHeal, LineHeal
from repro.core.clouds import CloudKind
from repro.core.xheal import Xheal
from repro.harness.reporting import print_table
from repro.harness.workloads import star_workload
from repro.spectral.cheeger import cheeger_constant
from repro.spectral.expansion import edge_expansion
from repro.spectral.laplacian import algebraic_connectivity
from repro.spectral.stretch import stretch_against_ghost


def heal_and_describe(name, healer, n):
    star = star_workload(n)
    healer.initialize(star)
    healer.handle_deletion(0)
    graph = healer.graph
    ghost_alive = star.subgraph(range(1, n)).copy()
    row = {
        "healer": name,
        "n": n,
        "edges added": graph.number_of_edges(),
        "max degree": max((degree for _, degree in graph.degree()), default=0),
        "h(Gt)": round(edge_expansion(graph, exact_limit=0), 4),
        "phi(Gt)": round(cheeger_constant(graph, exact_limit=0), 4),
        "lambda(Gt)": round(algebraic_connectivity(graph), 4),
        "connected": nx.is_connected(graph) if graph.number_of_nodes() else False,
    }
    return row, healer


def main() -> None:
    n = 64
    print(f"Star on {n} nodes; the adversary deletes the centre (node 0).")
    print("Every healer must reconnect the 63 now-isolated leaves.\n")

    rows = []
    xheal_row, xheal = heal_and_describe("xheal (kappa=6)", Xheal(kappa=6, seed=1), n)
    rows.append(xheal_row)
    for name, healer in (
        ("forgiving-tree", ForgivingTreeHeal(seed=1)),
        ("forgiving-graph", ForgivingGraphHeal(seed=1)),
        ("line-heal", LineHeal(seed=1)),
    ):
        rows.append(heal_and_describe(name, healer, n)[0])

    print_table(rows, title="After deleting the star centre")
    print()
    clouds = xheal.registry.clouds(CloudKind.PRIMARY)
    print(f"Xheal's repair: {len(clouds)} primary expander cloud over "
          f"{clouds[0].size()} leaves with {len(clouds[0].edges)} colored edges "
          f"(each leaf gained at most kappa={xheal.kappa} edges).")
    print("The tree healers add fewer edges but leave a 1-edge cut near the root —")
    print("that is the O(1/n) expansion the paper warns about; the cycle healer is worse still.")
    print()
    print("Expected shape (paper): expansion constant for Xheal, ~1/n for tree/cycle repairs.")
    print(f"Measured: {xheal_row['h(Gt)']:.3f} (Xheal) vs "
          f"{rows[1]['h(Gt)']:.3f} (forgiving-tree) vs {rows[3]['h(Gt)']:.3f} (line).")


if __name__ == "__main__":
    main()
