"""Wireless-mesh failover: cascading node failures healed in place.

The second reconfigurable-network family the paper names is wireless mesh
networks.  A mesh is a grid-like topology with large diameters, so the
quantity under threat is *stretch*: when relays fail, routes must not get
much longer than they were.  This example drives a grid mesh with a cascading
failure (each failure takes out a neighbour of the previous one), heals it
with the *distributed* Xheal protocol, and reports stretch, expansion and the
measured message/round cost of every repair.

Run with::

    python examples/wireless_mesh_failover.py
"""

from __future__ import annotations

import math

import networkx as nx

from repro.adversary import CascadeAdversary
from repro.core.ghost import GhostGraph
from repro.distributed import DistributedXheal
from repro.harness.reporting import print_table
from repro.harness.workloads import grid_workload
from repro.spectral.stretch import stretch_against_ghost


def main() -> None:
    rows, cols = 8, 8
    failures = 20
    graph = grid_workload(rows, cols)
    print(f"Wireless mesh: {rows}x{cols} grid, {failures} cascading relay failures,")
    print("healed by the distributed Xheal protocol (kappa=4, measured LOCAL-model costs).\n")

    healer = DistributedXheal(kappa=4, seed=3)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = CascadeAdversary(seed=9)
    adversary.bind(graph)

    checkpoints = []
    for timestep in range(1, failures + 1):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        ghost.record_deletion(event.node)
        report = healer.handle_deletion(event.node)
        if timestep % 5 == 0:
            summary = stretch_against_ghost(
                healer.graph, ghost.alive_subgraph(), sample_pairs=300, seed=1
            )
            checkpoints.append(
                {
                    "failures": timestep,
                    "nodes left": healer.graph.number_of_nodes(),
                    "connected": nx.is_connected(healer.graph),
                    "max stretch": round(summary.max_stretch, 2),
                    "log2(n)": round(math.log2(ghost.number_of_nodes()), 2),
                    "last repair msgs": report.messages,
                    "last repair rounds": report.rounds,
                }
            )

    print_table(checkpoints, title="Mesh health during the cascade")
    print()
    stats = healer.measured_costs()
    total_messages = sum(stat.messages for stat in stats)
    print(f"Across {len(stats)} repairs: {total_messages} protocol messages total, "
          f"worst repair {healer.max_rounds()} rounds "
          f"(log2(n) = {math.log2(graph.number_of_nodes()):.1f}).")
    print("Routes never stretch beyond the O(log n) factor Theorem 2(2) promises, and")
    print("every repair stays local to the failed relay's neighbourhood.")


if __name__ == "__main__":
    main()
