"""Quickstart: heal a peer-to-peer overlay under random churn with Xheal.

Run with::

    python examples/quickstart.py

The script declares the whole experiment as a :class:`ScenarioSpec` — healer,
adversary and initial topology by registry name — runs it, and prints the
Theorem 2 quantities of the final network next to the insertions-only ghost
graph.  The identical experiment is reachable from a shell::

    python -m repro run examples/specs/quickstart.json

(any spec can be serialized with ``spec.to_json()`` and replayed later).
"""

from __future__ import annotations

from repro.harness.reporting import print_table
from repro.scenarios import ScenarioSpec


SPEC = ScenarioSpec(
    name="quickstart-churn",
    healer="xheal",
    healer_kwargs={"kappa": 4, "seed": 1},
    adversary="random",
    adversary_kwargs={"seed": 7, "delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 60, "degree": 4, "seed": 3},
    timesteps=60,
    kappa=4,
    metric_every=20,
    exact_expansion_limit=0,
    stretch_sample_pairs=200,
)


def main() -> None:
    from repro.harness.experiment import run_experiment

    result = run_experiment(SPEC.compile())

    print("Xheal quickstart — random 4-regular overlay, 60 steps of churn")
    print(f"  events executed : {result.timesteps_executed} "
          f"({result.insertions} insertions, {result.deletions} deletions)")
    print(f"  final network   : {result.final_metrics.nodes} nodes, "
          f"{result.final_metrics.edges} edges, connected={result.connected}")
    print()
    print_table([result.summary_row()], title="Final Theorem 2 quantities (healed vs ghost)")
    print()
    verdict = result.final_verdict
    print("Theorem 2 verdict:")
    print(f"  degree bound   holds: {verdict.degree.holds}   "
          f"(worst ratio {verdict.degree.worst_ratio:.2f}, bound kappa*d'+2kappa)")
    print(f"  stretch bound  holds: {verdict.stretch.holds}   "
          f"(max stretch {verdict.stretch.max_stretch:.2f} vs bound {verdict.stretch.bound:.2f})")
    print(f"  expansion      holds: {verdict.expansion.holds}   "
          f"(h(Gt)={verdict.expansion.healed_expansion:.3f} vs "
          f"min(alpha, h(G't))={verdict.expansion.bound:.3f})")
    print(f"  spectral gap   holds: {verdict.spectral.holds}   "
          f"(lambda(Gt)={verdict.spectral.healed_lambda:.4f} >= {verdict.spectral.bound:.2e})")
    print(f"  connected           : {verdict.connected}")
    print()
    print(f"Amortized repair cost: {result.cost_summary.amortized_messages:.1f} messages/deletion "
          f"(Lemma 5 lower bound {result.cost_summary.lower_bound:.1f}, "
          f"Theorem 5 bound {result.cost_summary.upper_bound:.1f})")
    print()
    print("The same experiment as declarative JSON (python -m repro run <file>):")
    print(SPEC.to_json())


if __name__ == "__main__":
    main()
