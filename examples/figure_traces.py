"""F1-F6: textual traces of the paper's illustrative figures.

The paper's six figures are diagrams, not measurements.  This script
regenerates each of them as a structural trace of the actual data structures
the library builds, so a reader can line the output up against the paper:

* Figure 1 — the model loop (adversarial event, then healing) as an event log.
* Figure 2 — a node belonging to several primary clouds.
* Figure 3 — Case 2.2: a deleted bridge node, its secondary cloud F and the
  affected primary clouds.
* Figure 4 — Case 1: the deleted node's ball replaced by a kappa-regular
  expander over its neighbours.
* Figure 5 — G_t vs G'_t after an insertion (colored clouds vs black edges).
* Figure 6 — Case 2: black neighbours and cloud neighbours reconnected by a
  new colored cloud.

Run with::

    python examples/figure_traces.py
"""

from __future__ import annotations

import networkx as nx

from repro.core.clouds import CloudKind
from repro.core.colors import BLACK
from repro.core.xheal import Xheal
from repro.harness.workloads import star_workload
from repro.util.eventlog import EventKind


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def figure_1_and_4() -> Xheal:
    banner("Figure 1 / Figure 4 — model loop and Case 1 repair (star centre deleted)")
    healer = Xheal(kappa=4, seed=2)
    healer.initialize(star_workload(10))
    healer.handle_insertion(100, [1, 2])
    healer.handle_deletion(0)
    for event in healer.event_log:
        print(f"  t={event.timestep:<2} {event.kind.value:<18} {event.payload}")
    cloud = healer.registry.clouds(CloudKind.PRIMARY)[0]
    print(f"  -> ball of node 0 replaced by expander cloud {cloud.cloud_id} "
          f"over {sorted(cloud.members)} with {len(cloud.edges)} colored edges")
    return healer


def figure_2_and_3() -> None:
    banner("Figure 2 / Figure 3 — multi-cloud membership and Case 2.2")
    # Two overlapping stars: their centres' deletions create two primary
    # clouds sharing nodes; further deletions create a secondary cloud and a
    # bridge node whose deletion exercises Case 2.2.
    graph = nx.Graph()
    graph.add_edges_from((0, leaf) for leaf in range(2, 10))
    graph.add_edges_from((1, leaf) for leaf in range(6, 14))
    healer = Xheal(kappa=4, seed=4)
    healer.initialize(graph)
    healer.handle_deletion(0)
    healer.handle_deletion(1)
    shared = [
        node for node in healer.graph.nodes()
        if len(healer.registry.primary_clouds_of(node)) >= 2
    ]
    print(f"  nodes in two primary clouds (Figure 2's x): {sorted(shared)}")
    for node in sorted(healer.graph.nodes()):
        clouds = healer.registry.primary_clouds_of(node)
        secondary = healer.registry.secondary_cloud_of(node)
        role = "bridge" if secondary is not None else ("free" if clouds else "plain")
        print(f"    node {node:<3} primary clouds={clouds} secondary={secondary} ({role})")
    secondaries = healer.registry.clouds(CloudKind.SECONDARY)
    if secondaries:
        target = sorted(secondaries[0].members)[0]
        print(f"  deleting bridge node {target} (Figure 3's x, part of secondary cloud "
              f"{secondaries[0].cloud_id} = F)...")
        report = healer.handle_deletion(target)
        print(f"  -> repair action: {report.action.value}; "
              f"clouds repaired {report.clouds_repaired}, created {report.clouds_created}, "
              f"merged {report.clouds_merged}")
    print(f"  network still connected: {nx.is_connected(healer.graph)}")


def figure_5_and_6(healer: Xheal) -> None:
    banner("Figure 5 / Figure 6 — G_t vs G'_t colours after insertions and repairs")
    healer.handle_insertion(200, [1, 3])
    black = sum(1 for _, _, data in healer.graph.edges(data=True) if data["color"] is BLACK)
    colored = healer.graph.number_of_edges() - black
    print(f"  G_t now has {black} black edges (original + adversary) and "
          f"{colored} colored edges (healing clouds).")
    print("  G'_t would contain only the black-origin edges, including those of deleted nodes.")
    member = sorted(healer.registry.clouds(CloudKind.PRIMARY)[0].members)[1]
    report = healer.handle_deletion(member)
    print(f"  deleting cloud member {member} (Figure 6): action={report.action.value}, "
          f"new clouds {report.clouds_created}, edges added {len(report.edges_added)}")
    by_kind = healer.cloud_summary()
    print(f"  cloud inventory: {by_kind}")


def main() -> None:
    healer = figure_1_and_4()
    figure_2_and_3()
    figure_5_and_6(healer)
    print()
    print("Traces above correspond one-to-one with the paper's Figures 1-6.")


if __name__ == "__main__":
    main()
