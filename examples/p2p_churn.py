"""Peer-to-peer overlay under sustained churn: Xheal vs the prior self-healers.

The paper's motivating scenario (Skype-style P2P outages) is an overlay whose
nodes join and leave continuously while an attacker removes hubs.  This
example replays the *same* hub-attack trace against Xheal, Forgiving Tree,
Forgiving Graph and cycle healing on a power-law (preferential-attachment)
overlay, then tabulates all four Theorem 2 quantities side by side.

Run with::

    python examples/p2p_churn.py
"""

from __future__ import annotations

from repro.adversary import MaxDegreeAdversary
from repro.baselines import ForgivingGraphHeal, ForgivingTreeHeal, LineHeal
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment, run_healer_on_trace
from repro.harness.reporting import print_comparison
from repro.harness.workloads import power_law_workload


def main() -> None:
    initial = power_law_workload(80, 2, seed=11)
    print("P2P overlay: 80-node preferential-attachment graph, 30-step hub attack")
    print("(the adversary always removes the current highest-degree peer)")
    print()

    reference = run_experiment(
        ExperimentConfig(
            healer_factory=lambda: Xheal(kappa=4, seed=5),
            adversary_factory=lambda: MaxDegreeAdversary(seed=2),
            initial_graph=initial,
            timesteps=30,
            kappa=4,
            exact_expansion_limit=0,
            stretch_sample_pairs=200,
        )
    )
    results = [reference]
    for factory in (
        lambda: ForgivingTreeHeal(seed=5),
        lambda: ForgivingGraphHeal(seed=5),
        lambda: LineHeal(seed=5),
    ):
        results.append(
            run_healer_on_trace(
                factory(), initial, reference.trace, kappa=4,
                exact_expansion_limit=0, stretch_sample_pairs=200,
            )
        )

    print_comparison(results, title="Same hub-attack trace, four healers")
    print()
    xheal = results[0]
    print("Reading the table:")
    print(f"  * Xheal keeps h(Gt)={xheal.final_metrics.edge_expansion:.2f} and "
          f"lambda={xheal.final_metrics.algebraic_connectivity:.2f} — the overlay stays an expander,")
    print("    so broadcast/mixing-based P2P protocols keep working at full speed.")
    print("  * The tree-based healers keep degrees low but their spectral quantities sag —")
    print("    exactly the gap the paper's introduction describes.")
    print("  * Cycle healing has the smallest degree growth and the worst expansion of all.")


if __name__ == "__main__":
    main()
