"""Peer-to-peer overlay under sustained churn: Xheal vs the prior self-healers.

The paper's motivating scenario (Skype-style P2P outages) is an overlay whose
nodes join and leave continuously while an attacker removes hubs.  This
example replays the *same* hub-attack trace against Xheal, Forgiving Tree,
Forgiving Graph and cycle healing on a power-law (preferential-attachment)
overlay, then tabulates all four Theorem 2 quantities side by side.

The comparison runs through :func:`repro.harness.sweeps.compare_healers`,
which also shares the full-ghost metrics cache across the four runs — the
ghost graph is identical for every healer on a fixed trace, so its reference
metrics are computed exactly once.

Run with::

    python examples/p2p_churn.py
"""

from __future__ import annotations

from repro.harness.reporting import print_comparison
from repro.harness.sweeps import compare_healers, healer_factory
from repro.scenarios import ScenarioSpec

SPEC = ScenarioSpec(
    name="p2p-hub-attack-comparison",
    healer="xheal",
    healer_kwargs={"kappa": 4, "seed": 5},
    adversary="max-degree",
    adversary_kwargs={"seed": 2},
    topology="power-law",
    topology_kwargs={"n": 80, "m": 2, "seed": 11},
    timesteps=30,
    kappa=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=200,
)

CHALLENGERS = ("forgiving-tree", "forgiving-graph", "line-heal")


def main() -> None:
    print("P2P overlay: 80-node preferential-attachment graph, 30-step hub attack")
    print("(the adversary always removes the current highest-degree peer)")
    print()

    config = SPEC.compile()
    factories = [config.healer_factory] + [
        healer_factory(name, seed=5) for name in CHALLENGERS
    ]
    results = compare_healers(config, factories)

    print_comparison(results, title="Same hub-attack trace, four healers")
    print()
    xheal = results[0]
    print("Reading the table:")
    print(f"  * Xheal keeps h(Gt)={xheal.final_metrics.edge_expansion:.2f} and "
          f"lambda={xheal.final_metrics.algebraic_connectivity:.2f} — the overlay stays an expander,")
    print("    so broadcast/mixing-based P2P protocols keep working at full speed.")
    print("  * The tree-based healers keep degrees low but their spectral quantities sag —")
    print("    exactly the gap the paper's introduction describes.")
    print("  * Cycle healing has the smallest degree growth and the worst expansion of all.")


if __name__ == "__main__":
    main()
