"""Declarative sweeps: cross-product axes, parallel execution, replayable runs.

This example shows the full scenario-API loop the CLI is built on:

1. declare a base :class:`ScenarioSpec` (components by registry name),
2. cross it with two parameter axes via :class:`SweepSpec` (every point
   inherits the base seed, so only the axes vary — the healer comparison
   below faces the same cascade trace on the same mesh),
3. run the grid on several worker processes (results are byte-identical to a
   serial run: all seeds are fixed at expansion time and records are
   assembled by submission order),
4. persist one point as a JSONL artifact and replay it bit-identically.

Run with::

    python examples/scenario_sweep.py

The shell equivalent is::

    python -m repro sweep examples/specs/churn_kappa_sweep.json --workers 4

Everything here buffers records in memory; for long grids that must survive
crashes, see ``examples/long_sweep_resume.py`` — the streaming counterpart
(``--stream-to`` / ``--resume`` / ``repro report``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.harness.reporting import print_table
from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios, save_run

BASE = ScenarioSpec(
    name="mesh-cascade",
    healer="xheal",
    adversary="cascade",
    topology="grid",
    topology_kwargs={"rows": 7, "cols": 7},
    timesteps=15,
    kappa=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=100,
    seed=2,
)

SWEEP = SweepSpec(
    base=BASE,
    axes={
        "healer": ["xheal", "forgiving-tree", "line-heal"],
        "topology_kwargs.rows": [5, 7],
    },
)


def main() -> None:
    specs = SWEEP.expand()
    print(f"Sweep {SWEEP.label}: {len(SWEEP.axes)} axes -> {len(specs)} scenario points")
    records = run_scenarios(specs, workers=4)

    rows = []
    for record in records:
        rows.append({"scenario": record.spec.label, **record.summary})
    print_table(rows, title="Healer x mesh-size grid under a cascading failure")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "point0.jsonl"
        save_run(records[0], artifact)
        report = ScenarioSpec.replay(artifact)
        print(f"Persisted point 0 to JSONL and replayed it: identical={report.identical}")
    print("Every row above can be serialized, shipped, and re-executed bit-identically —")
    print("that is what `python -m repro replay <artifact>` checks in CI.")


if __name__ == "__main__":
    main()
