"""Packaging for the Xheal reproduction (kept `wheel`-free for offline installs)."""
from setuptools import find_packages, setup

setup(
    name="repro-xheal",
    version="1.5.0",
    description=(
        "Reproduction of 'Xheal: Localized Self-healing using Expanders' "
        "(Pandurangan & Trehan, PODC 2011) with a declarative scenario API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["networkx", "numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro=repro.scenarios.cli:main",
        ],
        # Scenario plugin groups (see repro.scenarios.registry): third-party
        # packages declare the same groups to extend the registries without
        # any import on our side.  "repro.plugins" entries are load-only —
        # importing the module runs its @register_* decorators; the
        # component groups register the loaded object under the entry name.
        # The built-ins below are declared both ways as the reference usage
        # (re-registering the same object under the same name is a no-op).
        "repro.plugins": [
            "builtin-xheal=repro.core.xheal",
            "builtin-ablations=repro.core.ablations",
            "builtin-baselines=repro.baselines",
            "builtin-distributed=repro.distributed.protocol",
            "builtin-adversaries=repro.adversary.strategies",
            "builtin-correlated=repro.adversary.correlated",
            "builtin-budgeted=repro.core.budget",
            "builtin-topologies=repro.harness.workloads",
        ],
        "repro.healers": [
            "xheal=repro.core.xheal:Xheal",
        ],
        "repro.adversaries": [
            "random=repro.adversary.strategies:RandomAdversary",
        ],
        "repro.topologies": [
            "random-regular=repro.harness.workloads:random_regular_workload",
        ],
        "repro.executors": [
            "serial=repro.scenarios.executors:SerialExecutor",
            "process-pool=repro.scenarios.executors:ProcessPoolBackend",
            "subprocess-fleet=repro.scenarios.fleet:SubprocessFleetExecutor",
        ],
    },
)
