"""Packaging for the Xheal reproduction (kept `wheel`-free for offline installs)."""
from setuptools import find_packages, setup

setup(
    name="repro-xheal",
    version="1.1.0",
    description=(
        "Reproduction of 'Xheal: Localized Self-healing using Expanders' "
        "(Pandurangan & Trehan, PODC 2011) with a declarative scenario API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["networkx", "numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro=repro.scenarios.cli:main",
        ],
    },
)
