"""Property-based tests (hypothesis) for core data structures and invariants."""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.forgiving_graph import half_full_tree_edges
from repro.baselines.forgiving_tree import balanced_tree_edges
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.expanders.construction import build_clique_edges, expander_or_clique
from repro.expanders.hgraph import HGraph
from repro.spectral.expansion import edge_expansion, edge_expansion_of_cut
from repro.util.ids import IdAllocator
from repro.util.rng import SeededRng, derive_seed

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=50, deadline=None)


@FAST
@given(st.integers(min_value=0, max_value=10**6), st.lists(st.text(max_size=5), max_size=4))
def test_derive_seed_is_stable_and_in_range(seed, labels):
    value = derive_seed(seed, *labels)
    assert value == derive_seed(seed, *labels)
    assert 0 <= value < 2**64


@FAST
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
def test_id_allocator_never_reissues(existing):
    allocator = IdAllocator.from_existing(existing)
    fresh = [allocator.allocate() for _ in range(10)]
    assert len(set(fresh)) == 10
    assert not (set(fresh) & set(existing))


@FAST
@given(st.integers(min_value=2, max_value=40))
def test_clique_edges_count_formula(n):
    edges = build_clique_edges(range(n))
    assert len(edges) == n * (n - 1) // 2


@SLOW
@given(
    st.integers(min_value=3, max_value=30),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10**6),
)
def test_hgraph_simple_projection_bounded_degree_and_connected(n, d, seed):
    hgraph = HGraph(range(n), d=d, rng=SeededRng(seed))
    graph = hgraph.to_graph()
    assert graph.number_of_nodes() == n
    assert max(degree for _, degree in graph.degree()) <= 2 * d
    assert nx.is_connected(graph)
    hgraph.validate()


@SLOW
@given(
    st.integers(min_value=4, max_value=25),
    st.integers(min_value=0, max_value=10**6),
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=15),
)
def test_hgraph_churn_keeps_invariants(n, seed, operations):
    hgraph = HGraph(range(n), d=2, rng=SeededRng(seed))
    next_id = n
    for op in operations:
        if op % 2 == 0 and len(hgraph) > 4:
            victim = sorted(hgraph.nodes())[op % len(hgraph)]
            hgraph.delete(victim)
        else:
            hgraph.insert(next_id)
            next_id += 1
        hgraph.validate()
        assert nx.is_connected(hgraph.to_graph())


@SLOW
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=10**6),
)
def test_expander_or_clique_degree_bound(n, kappa, seed):
    edges = expander_or_clique(list(range(n)), kappa, SeededRng(seed))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    effective = kappa + (kappa % 2)
    if n <= kappa + 1:
        assert graph.number_of_edges() == n * (n - 1) // 2
    else:
        assert max(degree for _, degree in graph.degree()) <= effective
    if n >= 2:
        assert nx.is_connected(graph)


@FAST
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=40, unique=True))
def test_tree_patch_builders_produce_spanning_trees(nodes):
    for builder in (balanced_tree_edges, half_full_tree_edges):
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(builder(list(nodes)))
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == len(nodes) - 1


@SLOW
@given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=100))
def test_expansion_cut_certificate(n, seed):
    graph = nx.gnp_random_graph(n, 0.5, seed=seed)
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        return
    from repro.spectral.expansion import minimum_expansion_cut

    result = minimum_expansion_cut(graph)
    assert result.value == edge_expansion_of_cut(graph, result.cut)
    # No strictly better singleton cut exists.
    for node in graph.nodes():
        assert edge_expansion_of_cut(graph, [node]) >= result.value - 1e-12


@SLOW
@given(
    st.integers(min_value=0, max_value=10**6),
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=10),
)
def test_xheal_invariants_under_arbitrary_deletion_order(seed, choices):
    graph = nx.random_regular_graph(4, 18, seed=seed % 1000)
    if not nx.is_connected(graph):
        return
    healer = Xheal(kappa=4, seed=seed)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    for choice in choices:
        nodes = sorted(healer.graph.nodes())
        if len(nodes) <= 4:
            break
        victim = nodes[choice % len(nodes)]
        ghost.record_deletion(victim)
        healer.handle_deletion(victim)
        healer.check_invariants()
        assert nx.is_connected(healer.graph)
        assert nx.number_of_selfloops(healer.graph) == 0
        for node in healer.graph.nodes():
            assert healer.graph.degree(node) <= 4 * ghost.degree(node) + 8


@SLOW
@given(st.integers(min_value=5, max_value=14), st.integers(min_value=0, max_value=1000))
def test_healed_star_expansion_at_least_ghost_or_constant(n, seed):
    star = nx.star_graph(n)
    healer = Xheal(kappa=4, seed=seed)
    healer.initialize(star)
    ghost = GhostGraph(star)
    ghost.record_deletion(0)
    healer.handle_deletion(0)
    healed_h = edge_expansion(healer.graph, exact_limit=14)
    ghost_h = edge_expansion(ghost.alive_subgraph(), exact_limit=14) if n >= 3 else 0.0
    assert healed_h >= min(1.0, ghost_h) - 1e-9
