"""Tests for the parallel sweep runner, run artifacts, replay and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.sweeps import compare_healers, healer_factory
from repro.scenarios import ScenarioSpec, SweepSpec
from repro.scenarios.artifacts import load_run, replay_artifact, save_run
from repro.scenarios.cli import main as cli_main
from repro.scenarios.runner import RunRecord, execute_spec, run_scenarios

SPEC = ScenarioSpec(
    name="runner-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 24, "degree": 4},
    timesteps=12,
    metric_every=6,
    exact_expansion_limit=0,
    stretch_sample_pairs=50,
    seed=11,
)


def test_run_record_round_trips():
    record = execute_spec(SPEC)
    assert record.spec == SPEC
    assert record.summary["healer"] == "xheal"
    assert len(record.trace) == 12
    assert len(record.timeline) == 2
    rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert rebuilt == record


def test_parallel_sweep_matches_serial_byte_for_byte():
    sweep = SweepSpec(
        base=SPEC, axes={"healer_kwargs.kappa": [2, 4], "timesteps": [6, 12]}
    )
    specs = sweep.expand()
    serial = run_scenarios(specs, workers=1)
    parallel = run_scenarios(specs, workers=3)
    serial_rows = [json.dumps(r.summary, sort_keys=True) for r in serial]
    parallel_rows = [json.dumps(r.summary, sort_keys=True) for r in parallel]
    assert serial_rows == parallel_rows
    # Results come back in submission order regardless of completion order.
    assert [r.spec.name for r in parallel] == [s.name for s in specs]


def test_artifact_save_load_replay_identical(tmp_path):
    record = execute_spec(SPEC)
    path = save_run(record, tmp_path / "run.jsonl")
    loaded = load_run(path)
    assert loaded == record
    report = replay_artifact(path)
    assert report.identical, report.differences()
    # The replayed result is a real ExperimentResult driven through
    # run_healer_on_trace with the original adversary label.
    assert report.result.adversary_name == record.summary["adversary"]
    assert report.result.summary_row() == record.summary


def test_replay_detects_tampered_summary(tmp_path):
    record = execute_spec(SPEC)
    path = save_run(record, tmp_path / "run.jsonl")
    lines = path.read_text().splitlines()
    tampered = []
    for line in lines:
        entry = json.loads(line)
        if entry["kind"] == "summary":
            entry["data"]["edges"] = entry["data"]["edges"] + 1
        tampered.append(json.dumps(entry))
    path.write_text("\n".join(tampered) + "\n")
    report = replay_artifact(path)
    assert not report.identical
    assert "edges" in report.differences()


def test_compare_healers_shares_ghost_metrics():
    config = SPEC.compile()
    factories = [
        config.healer_factory,
        healer_factory("forgiving-tree", seed=1),
        healer_factory("line-heal", seed=1),
    ]
    results = compare_healers(config, factories)
    assert [r.healer_name for r in results] == ["xheal", "forgiving-tree", "line-heal"]
    # Same trace -> identical full-ghost reference metrics for every healer.
    reference_ghost = results[0].ghost_metrics
    for result in results[1:]:
        assert result.ghost_metrics == reference_ghost
    # And they match an unshared standalone run exactly (sharing only skips
    # recomputation, never changes values).
    standalone = run_experiment(SPEC.compile())
    assert standalone.ghost_metrics == reference_ghost


def test_ghost_engine_sharing_skips_recomputation():
    import networkx as nx

    from repro.core.ghost import GhostGraph
    from repro.harness.experiment import _ghost_full_snapshot
    from repro.perf.engine import MetricsEngine

    ghost = GhostGraph(nx.random_regular_graph(4, 20, seed=1))
    shared = MetricsEngine(exact_limit=0)
    local1, local2 = MetricsEngine(exact_limit=0), MetricsEngine(exact_limit=0)
    first = _ghost_full_snapshot(local1, ghost, shared)
    misses_after_first = shared.cache.misses
    second = _ghost_full_snapshot(local2, ghost, shared)
    assert second == first
    # The second run's snapshot is a pure cache hit on the shared engine...
    assert shared.cache.misses == misses_after_first
    # ...and the run-local engine was pre-seeded, so the subsequent
    # check_theorem2 ghost lookups (expansion/lambda by plain version) hit too.
    hits_before = local2.cache.hits
    assert (
        local2.edge_expansion(ghost.graph, version=ghost.graph_version, label="ghost_full")
        == first.edge_expansion
    )
    assert (
        local2.algebraic_connectivity(ghost.graph, version=ghost.graph_version, label="ghost_full")
        == first.algebraic_connectivity
    )
    assert local2.cache.hits == hits_before + 2


def test_cli_rejects_malformed_spec_file(tmp_path, capsys):
    bad = tmp_path / "broken.json"
    bad.write_text("{not json")
    assert cli_main(["run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_list_run_sweep_replay(tmp_path, capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "xheal" in out and "max-degree" in out and "two-cliques" in out

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(SPEC.to_json())
    artifact = tmp_path / "run.jsonl"
    assert cli_main(["run", str(spec_path), "--artifact", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "runner-test" in out
    assert artifact.exists()

    assert cli_main(["replay", str(artifact)]) == 0
    assert "replay identical: True" in capsys.readouterr().out

    sweep_path = tmp_path / "sweep.json"
    sweep_path.write_text(
        SweepSpec(base=SPEC, axes={"timesteps": [4, 8]}).to_json()
    )
    assert cli_main(["sweep", str(sweep_path), "--workers", "2",
                     "--artifact-dir", str(tmp_path / "points")]) == 0
    assert len(list((tmp_path / "points").glob("*.jsonl"))) == 2

    # Unknown names surface as exit code 2 with the error on stderr.
    bad = tmp_path / "bad.json"
    bad.write_text(SPEC.with_overrides(healer="xhea").to_json())
    assert cli_main(["run", str(bad)]) == 2
    assert "did you mean" in capsys.readouterr().err


def test_run_scenarios_validates_before_scheduling():
    good = SPEC
    bad = SPEC.with_overrides(adversary="not-an-adversary")
    with pytest.raises(Exception, match="unknown adversary"):
        run_scenarios([good, bad], workers=2)
