"""Unit tests for ``Xheal._fix_secondary`` (Algorithm 3.5) branch by branch.

Two historically buggy spots are pinned here:

* the early return when the secondary cloud has already dissolved must hand
  back the bridged primary only when it is genuinely alive, and
* the association of the replacement bridge must be the bridged primary when
  that cloud is alive, falling back to the cloud the free node came from —
  which triggers the node-sharing path when the two differ.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.events import RepairReport
from repro.core.xheal import Xheal


@pytest.fixture
def healer():
    instance = Xheal(kappa=2, seed=0)
    instance.initialize(nx.complete_graph(10))
    return instance


def _two_primaries_and_secondary(healer):
    registry = healer.registry
    p1 = registry.new_primary_cloud({0, 1, 2})
    p2 = registry.new_primary_cloud({3, 4, 5})
    secondary = registry.new_secondary_cloud({p1.cloud_id: 0, p2.cloud_id: 3})
    return p1, p2, secondary


class TestEarlyReturnWhenSecondaryDissolved:
    def test_live_bridged_primary_is_returned(self, healer):
        p1, _, _ = _two_primaries_and_secondary(healer)
        report = RepairReport(timestep=1)
        assert healer._fix_secondary(9999, p1.cloud_id, report) == p1.cloud_id

    def test_none_bridged_primary_returns_none(self, healer):
        _two_primaries_and_secondary(healer)
        report = RepairReport(timestep=1)
        assert healer._fix_secondary(9999, None, report) is None

    def test_dead_bridged_primary_returns_none(self, healer):
        registry = healer.registry
        dead = registry.new_primary_cloud({6, 7})
        registry.dissolve(dead.cloud_id)
        report = RepairReport(timestep=1)
        assert healer._fix_secondary(9999, dead.cloud_id, report) is None

    def test_early_return_does_no_repair_work(self, healer):
        p1, _, _ = _two_primaries_and_secondary(healer)
        report = RepairReport(timestep=1)
        healer._fix_secondary(9999, p1.cloud_id, report)
        assert report.clouds_repaired == []
        assert report.clouds_merged == []
        assert report.free_nodes_shared == []


class TestAssociationOfReplacementBridge:
    def test_live_bridged_primary_with_free_node_is_the_association(self, healer):
        p1, p2, secondary = _two_primaries_and_secondary(healer)
        report = RepairReport(timestep=1)
        anchor = healer._fix_secondary(secondary.cloud_id, p1.cloud_id, report)
        assert anchor == p1.cloud_id
        # Replacement came from p1 itself, so no sharing was needed.
        assert report.free_nodes_shared == []
        assert secondary.bridge_of[p1.cloud_id] == 1  # smallest free member of p1
        assert 1 in secondary.members
        assert report.clouds_repaired == [secondary.cloud_id]

    def test_none_bridged_primary_falls_back_to_source_cloud(self, healer):
        p1, p2, secondary = _two_primaries_and_secondary(healer)
        report = RepairReport(timestep=1)
        anchor = healer._fix_secondary(secondary.cloud_id, None, report)
        # Candidates are scanned in sorted bridge_of order, so the free node
        # comes from p1 and p1 becomes the association.
        assert anchor == p1.cloud_id
        assert report.free_nodes_shared == []
        assert secondary.bridge_of[p1.cloud_id] == 1

    def test_dead_bridged_primary_falls_back_to_source_cloud(self, healer):
        p1, p2, secondary = _two_primaries_and_secondary(healer)
        registry = healer.registry
        dead = registry.new_primary_cloud({6, 7})
        registry.dissolve(dead.cloud_id)
        report = RepairReport(timestep=1)
        anchor = healer._fix_secondary(secondary.cloud_id, dead.cloud_id, report)
        assert anchor == p1.cloud_id
        assert report.free_nodes_shared == []

    def test_sharing_when_bridged_primary_has_no_free_node(self, healer):
        p1, p2, secondary = _two_primaries_and_secondary(healer)
        registry = healer.registry
        # Exhaust p2's free nodes: 3 already bridges `secondary`; 4 and 5 take
        # bridge duty in fresh secondary clouds of their own.
        registry.new_secondary_cloud({p2.cloud_id: 4})
        registry.new_secondary_cloud({p2.cloud_id: 5})
        assert registry.free_members(p2.cloud_id) == []

        report = RepairReport(timestep=1)
        anchor = healer._fix_secondary(secondary.cloud_id, p2.cloud_id, report)
        # The free node comes from p1 but the association stays the (live)
        # bridged primary p2: the node is shared into p2 and bridges for it.
        assert anchor == p2.cloud_id
        assert report.free_nodes_shared == [1]
        assert 1 in registry.get(p2.cloud_id).members
        assert secondary.bridge_of[p2.cloud_id] == 1
        assert report.clouds_repaired == [secondary.cloud_id]

    def test_no_free_node_anywhere_merges_primaries(self, healer):
        registry = healer.registry
        p1 = registry.new_primary_cloud({0, 1})
        p2 = registry.new_primary_cloud({2, 3})
        secondary = registry.new_secondary_cloud({p1.cloud_id: 0, p2.cloud_id: 2})
        registry.new_secondary_cloud({p1.cloud_id: 1})
        registry.new_secondary_cloud({p2.cloud_id: 3})
        report = RepairReport(timestep=1)
        anchor = healer._fix_secondary(secondary.cloud_id, p1.cloud_id, report)
        assert secondary.cloud_id not in registry
        assert anchor is not None and anchor in registry
        merged = registry.get(anchor)
        assert merged.members >= {0, 1, 2, 3}
        assert p1.cloud_id in report.clouds_merged or secondary.cloud_id in report.clouds_merged
