"""Correlated-failure pack under every executor backend, chaos included.

ISSUE 9 acceptance: a ``domain-kill`` + ``budgeted`` sweep must be
byte-identical across ``serial`` / ``process-pool`` / ``subprocess-fleet``,
under a seeded ``REPRO_CHAOS`` schedule, and across a mid-run kill-and-resume
on every backend — batched adversary events and the wrapper's extra summary
columns ride the existing determinism guarantees, they don't weaken them.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import ChaosSpec, PointPolicy, ScenarioSpec, SweepSpec, run_scenarios
from repro.scenarios.chaos import ENV_VAR
from repro.scenarios.stream import FAILURES_NAME, MANIFEST_NAME, is_index_name, strip_costs

BACKENDS = ("serial", "process-pool", "subprocess-fleet")

BASE = ScenarioSpec(
    name="scenario-pack",
    healer="budgeted",
    healer_kwargs={"inner": "xheal", "budget": 2},
    adversary="domain-kill",
    adversary_kwargs={"kill_every": 2, "min_nodes": 5, "order": "round-robin"},
    topology="racked-clos",
    topology_kwargs={"racks": 3, "nodes_per_rack": 4},
    timesteps=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=10,
    seed=9,
)

SWEEP = SweepSpec(base=BASE, axes={"healer_kwargs.budget": [1, 4], "seed": [9, 10]})

#: Same shape as test_chaos.py's schedule; the fault draws are keyed on point
#: fingerprints, so this grid needs a deeper retry budget than that suite's
#: known-good seed (a point here draws four faults in a row before a clean
#: attempt).
CHAOS = ChaosSpec(crash_prob=0.3, raise_prob=0.25, torn_write_prob=0.25, seed=43)


def canonical_files(directory):
    """The byte-identity surface of a sweep directory (same as test_executors)."""
    files = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if not is_index_name(path.name)
        and path.name not in (MANIFEST_NAME, FAILURES_NAME)
        and not path.name.startswith(".")
    }
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        files[MANIFEST_NAME] = strip_costs(json.loads(manifest.read_text()))
    return files


def test_domain_kill_sweep_is_byte_identical_across_all_backends(tmp_path):
    specs = SWEEP.expand()
    surfaces = {}
    for name in BACKENDS:
        result = run_scenarios(specs, workers=2, stream_to=tmp_path / name, executor=name)
        assert result.failed == 0 and result.executed == len(specs)
        surfaces[name] = canonical_files(result.directory)
    assert surfaces["serial"] == surfaces["process-pool"] == surfaces["subprocess-fleet"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_domain_kill_sweep_killed_and_resumed_matches_uninterrupted(tmp_path, backend):
    """The acceptance criterion: mid-run kill, resume, byte-identical bytes."""
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    # "Kill" the run after two points, then resume the full grid on `backend`.
    run_scenarios(specs[:2], workers=2, stream_to=tmp_path / "crash", executor=backend)
    resumed = run_scenarios(specs, workers=2, resume=tmp_path / "crash", executor=backend)
    assert resumed.failed == 0
    assert resumed.executed == len(specs) - 2 and resumed.skipped == 2
    assert canonical_files(clean.directory) == canonical_files(resumed.directory)


def test_domain_kill_sweep_under_chaos_converges_to_clean_bytes(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    chaotic = run_scenarios(
        specs,
        workers=2,
        stream_to=tmp_path / "chaos",
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=6),
    )
    assert chaotic.failed == 0 and chaotic.executed == len(specs)
    assert canonical_files(clean.directory) == canonical_files(chaotic.directory)


def test_budgeted_columns_flow_into_the_streamed_summaries(tmp_path):
    result = run_scenarios(SWEEP.expand(), stream_to=tmp_path / "out")
    rows = []
    for artifact in sorted(result.directory.glob("0*.jsonl")):
        for line in artifact.read_text().splitlines():
            data = json.loads(line)
            if data["kind"] == "summary":
                rows.append(data["data"])
    assert len(rows) == 4
    for row in rows:
        assert row["healer"].startswith("budgeted(xheal,b=")
        for column in ("deferred_repairs", "budget_stalls", "pending_repairs", "time_to_recover"):
            assert column in row
    # budget=1 points defer at least as much as budget=4 points.
    by_budget = {}
    for row in rows:
        by_budget.setdefault(row["healer"], []).append(row["deferred_repairs"])
    assert sum(by_budget["budgeted(xheal,b=1)"]) >= sum(by_budget["budgeted(xheal,b=4)"])
