"""Tests for the baseline healers."""

import networkx as nx
import pytest

from repro.baselines import (
    ALL_BASELINES,
    CliqueHeal,
    ForgivingGraphHeal,
    ForgivingTreeHeal,
    LineHeal,
    NoHeal,
    RandomKHeal,
)
from repro.baselines.forgiving_graph import half_full_tree_edges
from repro.baselines.forgiving_tree import balanced_tree_edges
from repro.spectral.expansion import edge_expansion
from repro.util.validation import ValidationError


def heal_star(healer_cls, n=12, **kwargs):
    healer = healer_cls(**kwargs)
    healer.initialize(nx.star_graph(n - 1))
    healer.handle_deletion(0)
    return healer


def test_no_heal_disconnects_star():
    healer = heal_star(NoHeal)
    assert healer.graph.number_of_edges() == 0
    assert not nx.is_connected(healer.graph)


def test_line_heal_builds_cycle():
    healer = heal_star(LineHeal, n=9)
    assert nx.is_connected(healer.graph)
    assert all(degree == 2 for _, degree in healer.graph.degree())


def test_line_heal_two_neighbors_single_edge():
    healer = LineHeal()
    healer.initialize(nx.path_graph(3))
    healer.handle_deletion(1)
    assert healer.graph.has_edge(0, 2)
    assert healer.graph.number_of_edges() == 1


def test_clique_heal_builds_complete_graph():
    healer = heal_star(CliqueHeal, n=8)
    assert healer.graph.number_of_edges() == 7 * 6 // 2
    assert nx.is_connected(healer.graph)


def test_random_k_heal_adds_bounded_edges():
    healer = heal_star(RandomKHeal, n=14, k=2, seed=1)
    assert nx.is_connected(healer.graph) or healer.graph.number_of_edges() >= 13
    assert max(degree for _, degree in healer.graph.degree()) <= 2 * 13


def test_random_k_heal_validation():
    with pytest.raises(ValidationError):
        RandomKHeal(k=0)


def test_balanced_tree_edges_structure():
    edges = balanced_tree_edges([0, 1, 2, 3, 4, 5, 6])
    graph = nx.Graph(edges)
    assert graph.number_of_edges() == 6
    assert nx.is_tree(graph)
    assert max(degree for _, degree in graph.degree()) <= 3


def test_forgiving_tree_heals_into_tree():
    healer = heal_star(ForgivingTreeHeal, n=16)
    assert nx.is_connected(healer.graph)
    assert nx.is_tree(healer.graph)
    # Tree patch -> expansion collapses towards O(1/n) (the paper's critique).
    assert edge_expansion(healer.graph, exact_limit=15) < 1.0


def test_half_full_tree_edges_connect_all_leaves():
    for size in (1, 2, 3, 5, 6, 7, 12):
        leaves = list(range(size))
        graph = nx.Graph()
        graph.add_nodes_from(leaves)
        graph.add_edges_from(half_full_tree_edges(leaves))
        if size > 1:
            assert nx.is_connected(graph)
            assert nx.is_tree(graph)


def test_forgiving_graph_heals_into_tree_and_tracks_degrees():
    healer = ForgivingGraphHeal(seed=0)
    healer.initialize(nx.star_graph(11))
    healer.handle_insertion(50, [1, 2])
    healer.handle_deletion(0)
    assert nx.is_connected(healer.graph)
    assert healer._ghost_degree[50] == 2


def test_forgiving_baselines_keep_low_degree_increase():
    for healer_cls in (ForgivingTreeHeal, ForgivingGraphHeal):
        healer = heal_star(healer_cls, n=20)
        assert max(degree for _, degree in healer.graph.degree()) <= 4


def test_all_baselines_run_under_churn():
    for healer_cls in ALL_BASELINES:
        healer = healer_cls()
        healer.initialize(nx.random_regular_graph(4, 16, seed=1))
        healer.handle_insertion(100, [0, 1])
        healer.handle_deletion(2)
        healer.handle_deletion(3)
        assert healer.timestep == 3


def test_small_neighborhood_baselines_no_crash():
    for healer_cls in ALL_BASELINES:
        healer = healer_cls()
        healer.initialize(nx.path_graph(3))
        healer.handle_deletion(0)  # degree-1 deletion
        assert 0 not in healer.graph
