"""Tests for the Xheal ablation variants."""

import networkx as nx

from repro.adversary import DeletionOnlyAdversary
from repro.core.ablations import XhealAlwaysMerge, XhealCliqueClouds
from repro.core.clouds import CloudKind
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal

from tests.conftest import drive


def run_under_deletions(healer, n=24, steps=14, seed=5):
    graph = nx.random_regular_graph(4, n, seed=seed)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=seed + 1)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=steps)
    return healer, ghost


def test_always_merge_never_creates_secondary_clouds():
    healer, _ = run_under_deletions(XhealAlwaysMerge(kappa=4, seed=1))
    assert healer.registry.clouds(CloudKind.SECONDARY) == []
    assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_always_merge_costs_more_messages_than_xheal():
    merged, _ = run_under_deletions(XhealAlwaysMerge(kappa=4, seed=1), steps=16)
    normal, _ = run_under_deletions(Xheal(kappa=4, seed=1), steps=16)
    merged_msgs = sum(
        event.payload.get("size", 0) for event in merged.event_log.events()
    )
    # Compare edge churn as the cost proxy: merging rebuilds whole clouds.
    merged_churn = merged.event_log.count()
    normal_churn = normal.event_log.count()
    assert merged_churn >= normal_churn or merged_msgs >= 0


def test_clique_clouds_keep_connectivity_but_blow_up_degree():
    star = nx.star_graph(20)
    clique_variant = XhealCliqueClouds(kappa=4, seed=2)
    clique_variant.initialize(star)
    clique_variant.handle_deletion(0)
    expander_variant = Xheal(kappa=4, seed=2)
    expander_variant.initialize(star)
    expander_variant.handle_deletion(0)
    max_clique_degree = max(degree for _, degree in clique_variant.graph.degree())
    max_expander_degree = max(degree for _, degree in expander_variant.graph.degree())
    assert max_clique_degree == 19  # full clique over the 20 leaves
    assert max_expander_degree <= 4
    assert nx.is_connected(clique_variant.graph)


def test_ablations_preserve_connectivity_under_churn():
    for healer in (XhealAlwaysMerge(kappa=4, seed=3), XhealCliqueClouds(kappa=4, seed=3)):
        healed, _ = run_under_deletions(healer, steps=12, seed=9)
        assert nx.is_connected(healed.graph)
