"""Property tests pinning :class:`EdgeStore` to a plain ``nx.Graph`` shadow.

The struct-of-arrays store must be observationally identical to the
dict-of-dicts ``nx.Graph`` it replaced: same node iteration order, same edge
set, same per-edge colour/was_black/owners attributes, same degrees — under
arbitrary interleavings of node/edge insertion, removal and attribute edits.
A second layer checks the :class:`SelfHealer`-level contract: version bumps
on mutation and materialization caching.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.no_heal import NoHeal
from repro.core.colors import BLACK, primary_color, secondary_color
from repro.core.edgestore import EdgeStore

SETTINGS = settings(max_examples=60, deadline=None)

# One op is (code, a, b, k): code selects the mutation, a/b pick nodes from a
# small universe (collisions are the point), k varies colours and owner ids.
_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=4),
    ),
    max_size=80,
)


def _pick_color(k: int):
    return (BLACK, primary_color(k), secondary_color(k))[k % 3]


def _apply(store: EdgeStore, shadow: nx.Graph, op) -> None:
    code, a, b, k = op
    if code == 0:
        if a not in shadow:
            store.add_node(a)
            shadow.add_node(a)
    elif code == 1:
        if a != b:
            color = _pick_color(k)
            was_black = bool(k % 2)
            owners = {k} if k % 2 else set()
            store.add_edge(a, b, color=color, was_black=was_black, owners=owners)
            shadow.add_edge(a, b, color=color, was_black=was_black, owners=set(owners))
    elif code == 2:
        if shadow.has_edge(a, b):
            store.remove_edge(a, b)
            shadow.remove_edge(a, b)
    elif code == 3:
        if a in shadow:
            store.remove_node(a)
            shadow.remove_node(a)
    elif code == 4:
        if shadow.has_edge(a, b):
            color = _pick_color(k + 1)
            store.set_slot_color(store.edge_slot(a, b), color)
            shadow.edges[a, b]["color"] = color
    elif code == 5:
        if shadow.has_edge(a, b):
            store.add_slot_owner(store.edge_slot(a, b), k)
            shadow.edges[a, b]["owners"].add(k)
    elif code == 6:
        if shadow.has_edge(a, b):
            store.discard_slot_owner(store.edge_slot(a, b), k)
            shadow.edges[a, b]["owners"].discard(k)


def _assert_equivalent(store: EdgeStore, shadow: nx.Graph) -> None:
    assert list(store.nodes()) == list(shadow.nodes())
    assert len(store) == shadow.number_of_nodes()
    assert store.number_of_nodes() == shadow.number_of_nodes()
    assert store.number_of_edges() == shadow.number_of_edges()
    assert {frozenset(edge) for edge in store.edges()} == {
        frozenset(edge) for edge in shadow.edges()
    }
    for node in shadow.nodes():
        assert node in store
        assert store.has_node(node)
        assert store.degree(node) == shadow.degree(node)
        assert set(store.neighbors(node)) == set(shadow.neighbors(node))
    for u, v, data in shadow.edges(data=True):
        assert store.has_edge(u, v) and store.has_edge(v, u)
        slot = store.edge_slot(u, v)
        assert slot == store.edge_slot(v, u)
        assert store.color(u, v) == data["color"]
        assert store.was_black(u, v) is data["was_black"]
        assert store.owners_of_slot(slot) == data["owners"]


@SETTINGS
@given(_OPS)
def test_store_matches_nx_shadow_under_arbitrary_churn(ops):
    store = EdgeStore()
    shadow = nx.Graph()
    for op in ops:
        _apply(store, shadow, op)
    _assert_equivalent(store, shadow)
    # The materializer must reproduce the shadow exactly, attrs included.
    materialized = store.to_networkx()
    assert list(materialized.nodes()) == list(shadow.nodes())
    assert set(map(frozenset, materialized.edges())) == set(map(frozenset, shadow.edges()))
    for u, v, data in shadow.edges(data=True):
        assert materialized.edges[u, v]["color"] == data["color"]
        assert materialized.edges[u, v]["was_black"] is data["was_black"]
        assert materialized.edges[u, v]["owners"] == data["owners"]


@SETTINGS
@given(_OPS)
def test_store_equivalence_holds_at_every_intermediate_state(ops):
    store = EdgeStore()
    shadow = nx.Graph()
    for op in ops[:30]:
        _apply(store, shadow, op)
        _assert_equivalent(store, shadow)


def test_edge_slots_are_recycled_but_node_slots_are_not():
    store = EdgeStore()
    store.add_edge(1, 2)
    first_slot = store.edge_slot(1, 2)
    store.remove_edge(1, 2)
    assert store.edge_slot(1, 2) is None
    assert store.add_edge(3, 4) == first_slot  # edge slot reused from free list
    # Node slots are append-only: reinsertion lands on a fresh slot, so slot
    # order always equals insertion order (the tracker's argmax relies on it).
    slot_of_1 = store.slot_of(1)
    store.remove_node(1)
    store.add_node(1)
    assert store.slot_of(1) > slot_of_1


def test_remove_node_cleans_neighbor_adjacency_and_degrees():
    store = EdgeStore()
    for u, v in [(1, 2), (1, 3), (2, 3)]:
        store.add_edge(u, v)
    store.remove_node(1)
    assert 1 not in store
    assert store.number_of_edges() == 1
    assert store.degree(2) == 1 and store.degree(3) == 1
    assert set(store.neighbors(2)) == {3}
    assert store.edges() == [(2, 3)]


@SETTINGS
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=9)),
        min_size=1,
        max_size=25,
    )
)
def test_healer_graph_version_bumps_and_materialization_cache(events):
    """Every applied adversarial event bumps graph_version; reads are cached."""
    healer = NoHeal(seed=0)
    healer.initialize(nx.path_graph(10))
    for is_deletion, node in events:
        before = healer.graph_version
        if is_deletion:
            if not healer.has_node(node):
                continue
            healer.handle_deletion(node)
        else:
            if healer.has_node(node + 100) or len(healer.nodes()) == 0:
                continue
            anchor = next(iter(healer.graph_store.nodes()))
            healer.handle_insertion(node + 100, [anchor])
        assert healer.graph_version > before
        snapshot = healer.graph
        assert healer.graph is snapshot  # cached until the next mutation
        assert list(snapshot.nodes()) == list(healer.graph_store.nodes())
        assert snapshot.number_of_edges() == healer.graph_store.number_of_edges()
