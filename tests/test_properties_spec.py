"""Property-based tests (hypothesis) for the scenario spec layer.

ISSUE 3 satellite: random ``ScenarioSpec``/``SweepSpec`` values round-trip
``to_json``/``from_json`` exactly, fingerprints are canonical (stable across
dict insertion orders, sensitive to every field value), and ``derive_seed``
separates roles — the healer, adversary, topology and sweep streams derived
from one base seed never collide.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioSpec, SweepSpec, list_adversaries, list_healers, list_topologies
from repro.scenarios.spec import canonical_fingerprint
from repro.util.rng import derive_seed
from repro.util.validation import ValidationError

FAST = settings(max_examples=60, deadline=None)

#: Roles the spec layer derives independent seeds for (see
#: ScenarioSpec.component_kwargs and SweepSpec.expand).
SEED_ROLES = ("healer", "adversary", "topology", "sweep")

# JSON-native scalars whose Python values round-trip json.dumps/loads
# exactly (NaN breaks equality; floats otherwise round-trip via repr).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)
_kwargs = st.dictionaries(st.text(min_size=1, max_size=10), _json_values, max_size=4)


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """Random specs over the real registries (not necessarily *valid* ones —
    serialization must be exact regardless of component signatures)."""
    return ScenarioSpec(
        healer=draw(st.sampled_from(list_healers())),
        adversary=draw(st.sampled_from(list_adversaries())),
        topology=draw(st.sampled_from(list_topologies())),
        healer_kwargs=draw(_kwargs),
        adversary_kwargs=draw(_kwargs),
        topology_kwargs=draw(_kwargs),
        name=draw(st.none() | st.text(max_size=12)),
        timesteps=draw(st.integers(min_value=1, max_value=10**6)),
        metric_every=draw(st.integers(min_value=0, max_value=100)),
        kappa=draw(st.integers(min_value=1, max_value=64)),
        check_invariants_every=draw(st.integers(min_value=0, max_value=100)),
        exact_expansion_limit=draw(st.integers(min_value=0, max_value=30)),
        stretch_sample_pairs=draw(st.none() | st.integers(min_value=1, max_value=1000)),
        seed=draw(st.integers(min_value=0, max_value=2**63)),
    )


@st.composite
def sweep_specs(draw) -> SweepSpec:
    axes = draw(
        st.dictionaries(
            st.sampled_from(
                ["timesteps", "kappa", "seed", "healer_kwargs.kappa", "topology_kwargs.n"]
            ),
            st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=3),
            min_size=1,
            max_size=3,
        )
    )
    return SweepSpec(
        base=draw(scenario_specs()),
        axes=axes,
        name=draw(st.none() | st.text(max_size=12)),
        derive_seeds=draw(st.booleans()),
    )


@FAST
@given(scenario_specs())
def test_scenario_spec_round_trips_exactly(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # And through a second parse of the canonical document (idempotent).
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert rebuilt.to_json() == spec.to_json()


@FAST
@given(sweep_specs())
def test_sweep_spec_round_trips_exactly(sweep):
    assert SweepSpec.from_json(sweep.to_json()) == sweep


@FAST
@given(scenario_specs(), st.integers(min_value=0, max_value=10**6))
def test_fingerprint_is_stable_across_kwargs_orderings(spec, shuffle_seed):
    import random

    def reordered(mapping: dict) -> dict:
        keys = list(mapping)
        random.Random(shuffle_seed).shuffle(keys)
        return {key: mapping[key] for key in keys}

    permuted = spec.with_overrides(
        healer_kwargs=reordered(spec.healer_kwargs),
        adversary_kwargs=reordered(spec.adversary_kwargs),
        topology_kwargs=reordered(spec.topology_kwargs),
    )
    assert permuted == spec  # dict equality ignores insertion order...
    assert permuted.fingerprint() == spec.fingerprint()  # ...and so must identity


@FAST
@given(sweep_specs(), st.integers(min_value=0, max_value=10**6))
def test_sweep_fingerprint_is_stable_across_axis_orderings(sweep, shuffle_seed):
    import random

    keys = list(sweep.axes)
    random.Random(shuffle_seed).shuffle(keys)
    permuted = SweepSpec(
        base=sweep.base,
        axes={key: sweep.axes[key] for key in keys},
        name=sweep.name,
        derive_seeds=sweep.derive_seeds,
    )
    assert permuted.fingerprint() == sweep.fingerprint()
    # Point order is canonical too (sorted axis keys), so the expanded grids
    # — and hence the streamed artifact sets — are identical.  (Random specs
    # need not pass component validation; expansion only applies to those
    # that do.)
    try:
        expected = [s.to_json() for s in sweep.expand()]
    except ValidationError:
        return
    assert [s.to_json() for s in permuted.expand()] == expected


@FAST
@given(scenario_specs())
def test_fingerprint_changes_with_any_field(spec):
    assert spec.fingerprint() == ScenarioSpec.from_json(spec.to_json()).fingerprint()
    perturbed = [
        spec.with_overrides(seed=spec.seed + 1),
        spec.with_overrides(timesteps=spec.timesteps + 1),
        spec.with_overrides(name=(spec.name or "") + "x"),
        spec.with_overrides(healer_kwargs={**spec.healer_kwargs, "kappa": -1}),
    ]
    fingerprints = {spec.fingerprint()} | {other.fingerprint() for other in perturbed}
    assert len(fingerprints) == 1 + len(perturbed)


@FAST
@given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=3))
def test_canonical_fingerprint_ignores_key_order(mapping):
    reversed_order = dict(reversed(list(mapping.items())))
    assert canonical_fingerprint(reversed_order) == canonical_fingerprint(mapping)


@FAST
@given(st.integers(min_value=0, max_value=2**63))
def test_derive_seed_never_collides_across_roles(base_seed):
    derived = [derive_seed(base_seed, role) for role in SEED_ROLES]
    assert len(set(derived)) == len(SEED_ROLES)
    # Roles are independent of the base stream itself too.
    assert base_seed not in derived


@FAST
@given(st.integers(min_value=0, max_value=2**63), st.text(max_size=10))
def test_derive_seed_sweep_assignments_do_not_collide_with_roles(base_seed, canonical):
    point_seed = derive_seed(base_seed, "sweep", canonical)
    for role in SEED_ROLES:
        assert point_seed != derive_seed(base_seed, role)
