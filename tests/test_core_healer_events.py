"""Tests for repro.core.healer (SelfHealer base) and repro.core.events."""

import networkx as nx
import pytest

from repro.baselines import NoHeal
from repro.core.colors import BLACK
from repro.core.events import RepairAction, RepairReport
from repro.util.eventlog import EventKind
from repro.util.validation import ValidationError


def make_healer(graph):
    healer = NoHeal(seed=0)
    healer.initialize(graph)
    return healer


def test_initialize_copies_graph_and_colors_black():
    graph = nx.cycle_graph(5)
    healer = make_healer(graph)
    assert healer.graph is not graph
    for _, _, data in healer.graph.edges(data=True):
        assert data["color"] is BLACK
        assert data["was_black"] is True


def test_initialize_rejects_self_loops():
    graph = nx.Graph([(0, 1)])
    graph.add_edge(1, 1)
    with pytest.raises(ValueError):
        make_healer(graph)


def test_insertion_adds_black_edges_and_logs():
    healer = make_healer(nx.path_graph(4))
    report = healer.handle_insertion(10, [0, 3])
    assert report.action is RepairAction.INSERTION
    assert healer.graph.has_edge(10, 0)
    assert healer.event_log.count(EventKind.INSERT) == 1
    assert healer.timestep == 1


def test_insertion_validation():
    healer = make_healer(nx.path_graph(3))
    with pytest.raises(ValidationError):
        healer.handle_insertion(0, [1])  # already present
    with pytest.raises(ValidationError):
        healer.handle_insertion(10, [99])  # unknown neighbour
    with pytest.raises(ValidationError):
        healer.handle_insertion(11, [11])  # self-adjacent


def test_deletion_removes_node_and_reports():
    healer = make_healer(nx.star_graph(4))
    report = healer.handle_deletion(0)
    assert report.deleted_node == 0
    assert 0 not in healer.graph
    assert healer.event_log.count(EventKind.DELETE) == 1


def test_deletion_unknown_node_rejected():
    healer = make_healer(nx.path_graph(3))
    with pytest.raises(ValidationError):
        healer.handle_deletion(77)


def test_degree_and_nodes_accessors():
    healer = make_healer(nx.star_graph(3))
    assert healer.degree(0) == 3
    assert healer.degree(999) == 0
    assert healer.nodes() == {0, 1, 2, 3}


def test_duplicate_black_edge_marks_was_black():
    healer = make_healer(nx.path_graph(3))
    # Simulate a healing edge then an adversarial insertion over the same pair.
    healer._graph.add_edge(0, 2, color=BLACK, was_black=False, owners=set())
    healer.handle_insertion(5, [0])
    assert healer._add_black_edge(0, 2) is False
    assert healer.graph.edges[0, 2]["was_black"] is True


def test_repair_report_note_action_and_counts():
    report = RepairReport(timestep=3)
    report.note_action(RepairAction.CASE_1_NEW_PRIMARY)
    report.note_action(RepairAction.CASE_2_1_SECONDARY)
    assert report.action is RepairAction.CASE_1_NEW_PRIMARY
    assert len(report.actions) == 2
    report.edges_added.append((1, 2))
    report.edges_removed.append((3, 4))
    assert report.total_edge_changes == 2
    counts = report.merge_counts()
    assert counts["edges_added"] == 1
    assert counts["edges_removed"] == 1


def test_insertion_then_deletion_round_trip():
    healer = make_healer(nx.cycle_graph(4))
    healer.handle_insertion(9, [0, 2])
    healer.handle_deletion(9)
    assert 9 not in healer.graph
    assert healer.timestep == 2
