"""Tests for repro.harness.workloads."""

import networkx as nx
import pytest

from repro.harness.workloads import (
    WORKLOADS,
    erdos_renyi_workload,
    grid_workload,
    power_law_workload,
    random_regular_workload,
    ring_workload,
    star_workload,
    two_cliques_workload,
    workload_by_name,
)
from repro.util.validation import ValidationError


def test_star_workload_shape():
    graph = star_workload(10)
    assert graph.number_of_nodes() == 10
    assert graph.degree(0) == 9


def test_star_workload_validation():
    with pytest.raises(ValidationError):
        star_workload(2)


def test_random_regular_workload_connected_and_regular():
    graph = random_regular_workload(30, degree=4, seed=1)
    assert nx.is_connected(graph)
    assert all(degree == 4 for _, degree in graph.degree())


def test_random_regular_workload_validation():
    with pytest.raises(ValidationError):
        random_regular_workload(5, degree=5)
    with pytest.raises(ValidationError):
        random_regular_workload(5, degree=3)  # odd n * degree


def test_erdos_renyi_workload_connected():
    graph = erdos_renyi_workload(40, average_degree=5, seed=3)
    assert nx.is_connected(graph)
    assert graph.number_of_nodes() == 40


def test_grid_workload_integer_labels():
    graph = grid_workload(4, 5)
    assert graph.number_of_nodes() == 20
    assert all(isinstance(node, int) for node in graph.nodes())
    assert nx.is_connected(graph)


def test_ring_workload():
    graph = ring_workload(9)
    assert all(degree == 2 for _, degree in graph.degree())


def test_power_law_workload_has_hubs():
    graph = power_law_workload(60, m=2, seed=1)
    degrees = sorted((degree for _, degree in graph.degree()), reverse=True)
    assert degrees[0] >= 8
    assert nx.is_connected(graph)


def test_two_cliques_workload_structure():
    graph = two_cliques_workload(12, expander_degree=4, seed=1)
    # Each half is a clique (plus the embedded expander edges).
    for offset in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                assert graph.has_edge(offset + i, offset + j)
    assert nx.is_connected(graph)
    with pytest.raises(ValidationError):
        two_cliques_workload(7)


def test_workload_registry_and_lookup():
    assert set(WORKLOADS) >= {"star", "random-regular", "grid", "two-cliques"}
    graph = workload_by_name("ring", n=7)
    assert graph.number_of_nodes() == 7
    with pytest.raises(ValidationError):
        workload_by_name("no-such-workload")
