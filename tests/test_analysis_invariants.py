"""Tests for repro.analysis.invariants."""

import networkx as nx
import pytest

from repro.analysis.invariants import (
    check_degree_invariant,
    check_expansion_invariant,
    check_spectral_invariant,
    check_stretch_invariant,
    check_theorem2,
)
from repro.core.ghost import GhostGraph


def identical_setup(n=16, degree=4, seed=1):
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return graph, GhostGraph(graph)


def test_degree_invariant_holds_on_identical_graphs():
    graph, ghost = identical_setup()
    result = check_degree_invariant(graph, ghost, kappa=4)
    assert result.holds
    assert result.worst_ratio == pytest.approx(1.0)
    assert result.violations == ()


def test_degree_invariant_detects_violation():
    graph, ghost = identical_setup(n=12)
    healed = graph.copy()
    # Blow up node 0's degree far beyond kappa * d' + 2 kappa.
    next_id = 100
    for _ in range(40):
        healed.add_edge(0, next_id)
        next_id += 1
    result = check_degree_invariant(healed, ghost, kappa=2)
    assert not result.holds
    assert 0 in result.violations
    assert result.worst_node == 0


def test_stretch_invariant_identical_graphs():
    graph, ghost = identical_setup()
    result = check_stretch_invariant(graph, ghost, sample_pairs=None)
    assert result.holds
    assert result.max_stretch == pytest.approx(1.0)


def test_stretch_invariant_violated_by_path_replacement():
    ghost_graph = nx.complete_graph(40)
    ghost = GhostGraph(ghost_graph)
    healed = nx.path_graph(40)  # distances blow up from 1 to up to 39 >> 4 log2(40)
    result = check_stretch_invariant(healed, ghost, allowed_constant=4.0, sample_pairs=None)
    assert not result.holds
    assert result.max_stretch > result.bound


def test_stretch_invariant_too_few_common_nodes():
    ghost = GhostGraph(nx.path_graph(3))
    healed = nx.Graph()
    healed.add_node(0)
    result = check_stretch_invariant(healed, ghost)
    assert result.holds


def test_expansion_invariant_identical_graphs():
    graph, ghost = identical_setup(n=14)
    result = check_expansion_invariant(graph, ghost, exact_limit=14)
    assert result.holds
    assert result.healed_expansion == pytest.approx(result.ghost_expansion)


def test_expansion_invariant_detects_tree_patch():
    star = nx.star_graph(15)
    ghost = GhostGraph(star)
    ghost.record_deletion(0)
    # A path over the leaves: expansion ~ 2/n < min(1, h(G')) with h(G') = 1.
    healed = nx.path_graph(range(1, 16))
    result = check_expansion_invariant(healed, ghost, exact_limit=15)
    assert not result.holds


def test_spectral_invariant_identical_graphs():
    graph, ghost = identical_setup(n=14)
    result = check_spectral_invariant(graph, ghost, kappa=4)
    assert result.holds
    assert result.healed_lambda > 0


def test_spectral_invariant_tiny_graphs_trivially_hold():
    ghost = GhostGraph(nx.path_graph(2))
    healed = nx.Graph()
    healed.add_node(0)
    assert check_spectral_invariant(healed, ghost, kappa=4).holds


def test_theorem2_verdict_all_hold():
    graph, ghost = identical_setup(n=14)
    verdict = check_theorem2(graph, ghost, kappa=4, exact_limit=14, sample_pairs=None)
    assert verdict.all_hold
    assert verdict.connected


def test_theorem2_verdict_fails_when_disconnected():
    graph, ghost = identical_setup(n=14)
    healed = graph.copy()
    healed.add_node(999)  # isolated node disconnects the healed graph
    verdict = check_theorem2(healed, ghost, kappa=4, exact_limit=14, sample_pairs=None)
    assert not verdict.connected
    assert not verdict.all_hold
