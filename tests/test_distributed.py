"""Tests for the distributed LOCAL-model simulation (network, node, protocol)."""

import math

import networkx as nx
import pytest

from repro.adversary import DeletionOnlyAdversary, RandomAdversary
from repro.analysis.invariants import check_theorem2
from repro.core.ghost import GhostGraph
from repro.distributed import DistributedXheal, Message, MessageKind, SynchronousNetwork
from repro.distributed.node import Processor
from repro.util.validation import ValidationError

from tests.conftest import drive


def test_network_add_remove_processors():
    network = SynchronousNetwork()
    network.add_processor(1)
    network.add_processor(2)
    assert len(network) == 2
    assert 1 in network
    network.remove_processor(1)
    assert 1 not in network
    with pytest.raises(ValidationError):
        network.processor(1)


def test_message_delivery_counts_rounds_and_messages():
    network = SynchronousNetwork()
    network.add_processor(1)
    network.add_processor(2)
    network.post(Message(1, 2, MessageKind.LEADER_ANNOUNCE))
    network.post(Message(2, 1, MessageKind.ELECTION_ACK))
    delivered = network.run_round()
    assert delivered == 2
    assert network.total_rounds == 1
    assert network.total_messages == 2
    assert len(network.processor(2).inbox) == 1


def test_repair_scoped_accounting():
    network = SynchronousNetwork()
    network.add_processor(1)
    network.add_processor(2)
    stats = network.begin_repair(timestep=1, deleted_node=99)
    network.post(Message(1, 2, MessageKind.CLOUD_ASSIGNMENT))
    network.run_round()
    finished = network.end_repair()
    assert finished is stats
    assert finished.messages == 1
    assert finished.rounds == 1
    with pytest.raises(ValidationError):
        network.end_repair()


def test_message_to_removed_processor_is_dropped():
    network = SynchronousNetwork()
    network.add_processor(1)
    network.add_processor(2)
    network.post(Message(1, 2, MessageKind.BFS_TOKEN))
    network.remove_processor(2)
    delivered = network.run_round()
    assert delivered == 1  # counted as sent, but nobody received it
    assert 2 not in network


def test_flush_runs_until_quiet():
    network = SynchronousNetwork()
    network.add_processor(1)
    network.add_processor(2)
    network.post(Message(1, 2, MessageKind.BFS_TOKEN))
    used = network.flush()
    assert used == 1
    assert network.flush() == 0


def test_processor_state_and_cloud_views():
    processor = Processor(node_id=5, neighbors={1, 2})
    processor.non_table = {1: {5, 9}, 2: {5}}
    view = processor.cloud_view(7, "primary")
    view.leader = 1
    view.members = {1, 2, 5}
    assert 9 in processor.known_addresses()
    assert 1 in processor.known_addresses()
    processor.forget_cloud(7)
    assert 7 not in processor.clouds
    message = Message(1, 5, MessageKind.LEADER_ANNOUNCE)
    processor.receive(message)
    assert processor.drain_inbox() == [message]
    assert processor.drain_inbox() == []


def test_distributed_xheal_measures_positive_costs():
    graph = nx.star_graph(10)
    healer = DistributedXheal(kappa=4, seed=1)
    healer.initialize(graph)
    report = healer.handle_deletion(0)
    assert report.messages > 0
    assert report.rounds >= 1
    assert len(healer.measured_costs()) == 1
    assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_distributed_xheal_matches_centralized_guarantees():
    graph = nx.random_regular_graph(4, 24, seed=7)
    healer = DistributedXheal(kappa=4, seed=2)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=5)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=14)
    healer.check_invariants()
    verdict = check_theorem2(healer.graph, ghost, kappa=4, exact_limit=12, sample_pairs=60)
    assert verdict.connected
    assert verdict.degree.holds
    assert verdict.expansion.holds


def test_distributed_rounds_grow_logarithmically_not_linearly():
    # Recovery time should scale like log n (Theorem 5), far below n.
    graph = nx.random_regular_graph(4, 60, seed=3)
    healer = DistributedXheal(kappa=4, seed=4)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=9)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=20)
    n = graph.number_of_nodes()
    assert healer.max_rounds() <= 6 * math.log2(n) + 10
    assert healer.max_rounds() < n / 2


def test_distributed_processor_topology_stays_in_sync():
    graph = nx.random_regular_graph(4, 20, seed=5)
    healer = DistributedXheal(kappa=4, seed=6)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = RandomAdversary(seed=8, delete_probability=0.5)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=16)
    assert set(healer.network.processors) == set(healer.graph.nodes())
    for node in healer.graph.nodes():
        assert healer.network.processor(node).neighbors == set(healer.graph.neighbors(node))


def test_distributed_cloud_views_know_their_leader():
    graph = nx.star_graph(12)
    healer = DistributedXheal(kappa=4, seed=7)
    healer.initialize(graph)
    healer.handle_deletion(0)
    clouds = healer.registry.clouds()
    assert clouds
    cloud = clouds[0]
    leaders = set()
    for member in cloud.members:
        view = healer.network.processor(member).clouds.get(cloud.cloud_id)
        assert view is not None
        leaders.add(view.leader)
    assert len(leaders) == 1
    leader = leaders.pop()
    assert leader in cloud.members
    assert healer.network.processor(leader).clouds[cloud.cloud_id].is_leader


def test_charge_rounds_validation():
    network = SynchronousNetwork()
    with pytest.raises(ValidationError):
        network.charge_rounds(-1)
    network.charge_rounds(3)
    assert network.total_rounds == 3
