"""Tests for repro.util.rng."""

import pytest

from repro.util.rng import SeededRng, derive_seed


def test_same_seed_same_stream():
    first = SeededRng(42)
    second = SeededRng(42)
    assert [first.randint(0, 100) for _ in range(10)] == [second.randint(0, 100) for _ in range(10)]


def test_different_seeds_differ():
    first = SeededRng(1)
    second = SeededRng(2)
    assert [first.randint(0, 10**9) for _ in range(5)] != [second.randint(0, 10**9) for _ in range(5)]


def test_derive_seed_is_deterministic():
    assert derive_seed(7, "adversary", 3) == derive_seed(7, "adversary", 3)


def test_derive_seed_depends_on_labels():
    assert derive_seed(7, "a") != derive_seed(7, "b")


def test_child_streams_are_independent_and_reproducible():
    parent = SeededRng(9)
    child_a = parent.child("x")
    child_b = SeededRng(9).child("x")
    assert child_a.randint(0, 10**9) == child_b.randint(0, 10**9)


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        SeededRng(0).choice([])


def test_shuffle_returns_permutation_without_mutating_input():
    rng = SeededRng(3)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert sorted(shuffled) == original
    assert original == [1, 2, 3, 4, 5]


def test_permutation_covers_range():
    rng = SeededRng(5)
    perm = rng.permutation(10)
    assert sorted(perm) == list(range(10))


def test_coin_probability_bounds():
    rng = SeededRng(0)
    with pytest.raises(ValueError):
        rng.coin(1.5)
    assert rng.coin(1.0) is True
    assert rng.coin(0.0) is False


def test_sample_distinct():
    rng = SeededRng(1)
    sample = rng.sample(list(range(50)), 10)
    assert len(set(sample)) == 10


def test_state_roundtrip():
    rng = SeededRng(8)
    state = rng.getstate()
    first = rng.randint(0, 1000)
    rng.setstate(state)
    assert rng.randint(0, 1000) == first
