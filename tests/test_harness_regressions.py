"""Regression tests for harness accounting bugs fixed alongside the fast core.

Three distinct bugs are pinned here:

* ``run_experiment`` used to pass ``rounds=0`` to the cost ledger instead of
  the repair report's round estimate, so live runs reported zero repair
  rounds while trace replays of the very same events reported the true ones.
* ``run_healer_on_trace`` counted an insertion as executed before discovering
  that none of its anchor neighbours survived, inflating the summary row's
  step counters relative to the work actually replayed.
* ``snapshot_every`` cadence/skip semantics on both entry points.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.adversary.base import AdversaryEvent, EventType
from repro.core.xheal import Xheal
from repro.harness.experiment import run_experiment, run_healer_on_trace
from repro.scenarios.artifacts import replay_artifact, save_run
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import ScenarioSpec


def _deletion_heavy_spec(**overrides) -> ScenarioSpec:
    base = dict(
        healer="xheal",
        topology="random-regular",
        topology_kwargs={"n": 24, "degree": 4},
        adversary="random",
        adversary_kwargs={"delete_probability": 0.9},
        timesteps=25,
        seed=21,
        exact_expansion_limit=0,
        stretch_sample_pairs=10,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRepairRoundAccounting:
    def test_live_run_records_nonzero_repair_rounds(self):
        result = run_experiment(_deletion_heavy_spec().validate().compile())
        assert result.deletions > 0
        # Xheal's cost model charges O(log n) rounds per repaired deletion;
        # before the fix the ledger saw rounds=0 for every live deletion.
        assert result.cost_summary.max_rounds > 0
        assert result.cost_summary.mean_rounds > 0

    def test_live_and_replayed_cost_summaries_agree_on_rounds(self):
        spec = _deletion_heavy_spec()
        config = spec.validate().compile()
        live = run_experiment(config)
        replayed = run_healer_on_trace(
            Xheal(**spec.component_kwargs("healer")),
            spec.build_initial_graph(),
            live.trace,
            kappa=spec.kappa,
            exact_expansion_limit=spec.exact_expansion_limit,
            stretch_sample_pairs=spec.stretch_sample_pairs,
            seed=spec.seed,
        )
        assert live.cost_summary.max_rounds == replayed.cost_summary.max_rounds
        assert live.cost_summary.mean_rounds == replayed.cost_summary.mean_rounds
        assert live.cost_summary.total_messages == replayed.cost_summary.total_messages


class TestTraceReplaySkipCounting:
    def test_unapplicable_insertion_is_not_counted(self):
        initial = nx.path_graph(4)  # nodes 0..3
        trace = [
            AdversaryEvent(EventType.INSERT, 10, (99,)),  # anchor never existed
            AdversaryEvent(EventType.INSERT, 11, (0, 1)),
        ]
        result = run_healer_on_trace(
            Xheal(kappa=2, seed=0),
            initial,
            trace,
            kappa=2,
            exact_expansion_limit=0,
            stretch_sample_pairs=None,
        )
        assert result.timesteps_executed == 1
        assert result.insertions == 1
        assert not result.final_graph.has_node(10)
        assert result.final_graph.has_node(11)

    def test_artifact_replay_of_undegraded_run_is_byte_identical(self, tmp_path):
        spec = _deletion_heavy_spec(timesteps=15)
        record = RunRecord.from_result(
            spec, run_experiment(spec.validate().compile())
        )
        path = save_run(record, tmp_path / "run.jsonl")
        report = replay_artifact(path)
        assert report.identical, report.differences()


class TestSnapshotEvery:
    def test_snapshot_every_zero_skips_final_snapshots(self):
        spec = _deletion_heavy_spec(snapshot_every=0)
        result = run_experiment(spec.validate().compile())
        assert result.final_metrics is None
        assert result.ghost_metrics is None
        assert result.final_verdict is None
        row = result.summary_row()
        for column in ("h(Gt)", "h(G't)", "lambda(Gt)", "lambda(G't)", "theorem2_holds"):
            assert row[column] is None
        # Counter columns stay exact even without snapshots.
        assert row["steps"] == result.timesteps_executed > 0
        assert row["nodes"] == result.final_graph.number_of_nodes()
        assert row["edges"] == result.final_graph.number_of_edges()
        assert row["max_degree_ratio"] > 0

    def test_snapshot_every_zero_replay_matches_live_row(self, tmp_path):
        spec = _deletion_heavy_spec(timesteps=15, snapshot_every=0)
        record = RunRecord.from_result(
            spec, run_experiment(spec.validate().compile())
        )
        report = replay_artifact(save_run(record, tmp_path / "run.jsonl"))
        assert report.identical, report.differences()

    def test_snapshot_cadence_records_timeline_entries(self):
        spec = _deletion_heavy_spec(timesteps=20, snapshot_every=5)
        result = run_experiment(spec.validate().compile())
        recorded = [entry.timestep for entry in result.timeline.entries]
        assert recorded  # at least the cadence points that were reached
        assert all(timestep % 5 == 0 for timestep in recorded)
        assert result.final_metrics is not None  # cadence N>=1 keeps the final trio

    def test_default_none_keeps_legacy_behavior(self):
        spec = _deletion_heavy_spec(timesteps=10)
        result = run_experiment(spec.validate().compile())
        assert result.final_metrics is not None
        assert result.final_verdict is not None
        assert spec.to_dict().get("snapshot_every", "absent") == "absent"

    def test_validate_rejects_negative_snapshot_every(self):
        spec = _deletion_heavy_spec(snapshot_every=-1)
        with pytest.raises(Exception):
            spec.validate()
