"""Executor backends: registry, dispatch, and the three-way differential.

The contract under test (ISSUE 7 tentpole): execution placement is
operational, never part of a sweep's identity.  ``serial``, ``process-pool``
and ``subprocess-fleet`` runs of one spec list produce byte-identical
artifacts and (cost-stripped) manifests — buffered and streamed, fault-free
and under a seeded ``REPRO_CHAOS`` schedule, straight through and across a
kill-and-resume.  The fleet additionally proves exact per-point fault
attribution (one leased point per worker) and worker respawn without losing
in-flight points.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import (
    ChaosSpec,
    PointPolicy,
    ScenarioSpec,
    SweepSpec,
    list_executors,
    run_scenarios,
)
from repro.scenarios.chaos import ENV_VAR
from repro.scenarios.executors import (
    ExecutionContext,
    ProcessPoolBackend,
    SerialExecutor,
    resolve_executor,
)
from repro.scenarios.fleet import RemoteWorkerError, SubprocessFleetExecutor
from repro.scenarios.registry import EXECUTORS, UnknownNameError
from repro.scenarios.stream import (
    FAILURES_NAME,
    MANIFEST_NAME,
    is_index_name,
    strip_costs,
)
from repro.util.validation import ValidationError

BACKENDS = ("serial", "process-pool", "subprocess-fleet")

BASE = ScenarioSpec(
    name="executor-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=5,
    metric_every=3,
    exact_expansion_limit=0,
    stretch_sample_pairs=20,
    seed=3,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 5], "healer_kwargs.kappa": [2, 4]})

#: The schedule test_chaos.py pins (seed 43 faults every SWEEP point's first
#: attempt across crash/raise/torn-write, with a clean attempt within 3
#: retries) — reused here so the fleet faces worker deaths, injected raises
#: AND torn shard writes in one differential.
CHAOS = ChaosSpec(crash_prob=0.3, raise_prob=0.25, torn_write_prob=0.25, seed=43)


def canonical_files(directory: Path):
    """Byte-identity surface of a sweep directory, shard-index aware.

    Excludes every completion log — the legacy ``index.jsonl`` *and* any
    ``index-<worker>.jsonl`` shard — plus the quarantine ledger: all
    append-only operational history.  The manifest participates through
    :func:`strip_costs`.
    """
    directory = Path(directory)
    files = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if not is_index_name(path.name)
        and path.name not in (MANIFEST_NAME, FAILURES_NAME)
        and not path.name.startswith(".")
    }
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        files[MANIFEST_NAME] = strip_costs(json.loads(manifest.read_text()))
    return files


# -- registry -----------------------------------------------------------------


def test_executor_registry_lists_the_three_shipped_backends():
    names = list_executors()
    for name in BACKENDS:
        assert name in names


def test_executor_aliases_resolve_to_the_registered_backends():
    assert EXECUTORS.get("fleet") is SubprocessFleetExecutor
    assert EXECUTORS.get("pool") is ProcessPoolBackend
    assert EXECUTORS.get("inline") is SerialExecutor


def test_unknown_executor_gets_a_did_you_mean_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'process-pool'"):
        EXECUTORS.get("proces-pool")


def test_resolve_executor_keeps_the_historical_automatic_choice():
    assert isinstance(resolve_executor(None, 1, 10), SerialExecutor)
    assert isinstance(resolve_executor(None, 4, 1), SerialExecutor)
    assert isinstance(resolve_executor(None, 4, 10), ProcessPoolBackend)
    assert isinstance(resolve_executor("fleet", 1, 10), SubprocessFleetExecutor)


# -- sweep-file integration ---------------------------------------------------


def test_sweep_spec_executor_field_roundtrips_and_stays_fingerprint_neutral():
    with_executor = SweepSpec(
        base=BASE, axes={"timesteps": [3, 5]}, executor="subprocess-fleet"
    )
    bare = SweepSpec(base=BASE, axes={"timesteps": [3, 5]})
    assert SweepSpec.from_json(with_executor.to_json()).executor == "subprocess-fleet"
    # Operational, not identity: the expanded points are the same specs.
    assert [s.fingerprint() for s in with_executor.expand()] == [
        s.fingerprint() for s in bare.expand()
    ]
    # Pre-executor documents keep their bytes (and hence sweep fingerprints).
    assert "executor" not in bare.to_dict()
    assert SweepSpec.from_json(bare.to_json()) == bare


def test_sweep_spec_rejects_an_unknown_executor_at_validation_time():
    with pytest.raises(UnknownNameError, match="unknown executor"):
        SweepSpec(base=BASE, axes={"timesteps": [3]}, executor="nope").validate()


# -- the three-way differential -----------------------------------------------


def test_buffered_differential_across_all_backends():
    specs = SWEEP.expand()
    results = {
        name: [r.to_dict() for r in run_scenarios(specs, workers=2, executor=name)]
        for name in BACKENDS
    }
    assert results["serial"] == results["process-pool"] == results["subprocess-fleet"]


def test_streamed_differential_across_all_backends(tmp_path):
    specs = SWEEP.expand()
    surfaces = {}
    for name in BACKENDS:
        result = run_scenarios(specs, workers=2, stream_to=tmp_path / name, executor=name)
        assert result.failed == 0 and result.executed == len(specs)
        surfaces[name] = canonical_files(result.directory)
    assert surfaces["serial"] == surfaces["process-pool"] == surfaces["subprocess-fleet"]


def test_fleet_writes_per_worker_shard_indices_not_the_legacy_index(tmp_path):
    specs = SWEEP.expand()
    result = run_scenarios(
        specs, workers=2, stream_to=tmp_path / "out", executor="subprocess-fleet"
    )
    directory = result.directory
    assert not (directory / "index.jsonl").exists()
    shards = sorted(path.name for path in directory.glob("index-*.jsonl"))
    assert shards and set(shards) <= {"index-w0.jsonl", "index-w1.jsonl"}
    # The shards jointly record every point exactly once.
    entries = [
        json.loads(line)
        for shard in shards
        for line in (directory / shard).read_text().splitlines()
    ]
    assert sorted(entry["index"] for entry in entries) == list(range(len(specs)))


def test_fleet_chaos_differential_with_worker_kills(tmp_path, monkeypatch):
    """Crash faults kill fleet workers mid-sweep; respawn + retries converge.

    Attribution is exact at any fleet size (one leased point per worker), so
    unlike the pool the fleet follows the schedule to the letter even with
    workers=2 — the comparison baseline is the fault-free serial run.
    """
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    chaotic = run_scenarios(
        specs,
        workers=2,
        stream_to=tmp_path / "chaos",
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=3),
    )
    assert chaotic.failed == 0 and chaotic.executed == len(specs)
    assert canonical_files(clean.directory) == canonical_files(chaotic.directory)


def test_fleet_kill_and_resume_converges_to_serial_bytes(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    # "Crash" the coordinator after two points, then resume the full grid
    # under the same schedule — still on the fleet, over its own shards.
    run_scenarios(
        specs[:2],
        workers=2,
        stream_to=tmp_path / "crash",
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=3),
    )
    resumed = run_scenarios(
        specs,
        workers=2,
        resume=tmp_path / "crash",
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=3),
    )
    assert resumed.failed == 0
    assert resumed.executed == len(specs) - 2 and resumed.skipped == 2
    assert canonical_files(clean.directory) == canonical_files(resumed.directory)


def test_any_backend_resumes_a_sweep_started_under_any_other(tmp_path):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    # Legacy single-writer start (serial), fleet finish: the resume scan
    # merges index.jsonl with the fleet's shards into one coherent directory.
    run_scenarios(specs[:2], stream_to=tmp_path / "mixed", executor="serial")
    resumed = run_scenarios(
        specs, workers=2, resume=tmp_path / "mixed", executor="subprocess-fleet"
    )
    assert resumed.executed == len(specs) - 2 and resumed.skipped == 2
    assert (tmp_path / "mixed" / "index.jsonl").exists()
    assert list((tmp_path / "mixed").glob("index-*.jsonl"))
    assert canonical_files(clean.directory) == canonical_files(resumed.directory)


# -- fleet failure semantics --------------------------------------------------


def test_fleet_quarantine_matches_the_pool_ledger_byte_for_byte(tmp_path, monkeypatch):
    """A deterministic raise exhausts retries identically on pool and fleet.

    The worker-side exception's repr crosses the fleet's pipe verbatim
    (RemoteWorkerError), so the manifest ``failed`` sections — which feed
    identity comparisons — agree with the pool's pickled-exception path.
    """
    specs = SWEEP.expand()
    monkeypatch.setenv(ENV_VAR, ChaosSpec(raise_prob=1.0, seed=5).to_json())
    sections = {}
    for name in ("process-pool", "subprocess-fleet"):
        run_scenarios(
            specs,
            workers=2,
            stream_to=tmp_path / name,
            executor=name,
            policy=PointPolicy(max_retries=1),
        )
        manifest = json.loads((tmp_path / name / MANIFEST_NAME).read_text())
        assert len(manifest["failed"]) == len(specs)
        sections[name] = manifest["failed"]
    assert sections["process-pool"] == sections["subprocess-fleet"]
    assert all("ChaosError" in entry["error"] for entry in sections["subprocess-fleet"])


def test_fleet_worker_death_charges_exactly_the_leased_point(tmp_path, monkeypatch):
    """crash_prob=1.0 kills a worker on every attempt of every point.

    Each death must charge exactly the dead worker's own leased point — the
    quarantine ledger then shows precisely max_retries+1 attempts per point,
    which only exact attribution produces.
    """
    specs = SWEEP.expand()[:2]
    monkeypatch.setenv(ENV_VAR, ChaosSpec(crash_prob=1.0, seed=1).to_json())
    result = run_scenarios(
        specs,
        workers=2,
        stream_to=tmp_path / "out",
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=2),
    )
    assert result.failed == len(specs) and result.executed == 0
    ledger = [
        json.loads(line)
        for line in (tmp_path / "out" / FAILURES_NAME).read_text().splitlines()
    ]
    assert sorted(entry["index"] for entry in ledger) == [0, 1]
    assert all(entry["attempts"] == 3 for entry in ledger)
    assert all("worker died running point" in entry["error"] for entry in ledger)


def test_fleet_timeout_uses_the_same_error_message_as_the_pool(tmp_path, monkeypatch):
    specs = [BASE.with_overrides(name="hung-point", timesteps=3)]
    chaos = ChaosSpec(hang_prob=1.0, hang_s=30.0, seed=2)
    monkeypatch.setenv(ENV_VAR, chaos.to_json())
    result = run_scenarios(
        specs,
        stream_to=tmp_path / "out",
        executor="subprocess-fleet",
        policy=PointPolicy(timeout_s=1.0),
    )
    assert result.failed == 1
    entry = json.loads((tmp_path / "out" / FAILURES_NAME).read_text().splitlines()[0])
    assert entry["error"] == repr(
        TimeoutError("point 0 exceeded timeout_s=1.0 on attempt 0")
    )


def test_remote_worker_error_repr_is_the_wire_payload_verbatim():
    error = RemoteWorkerError("ChaosError('injected failure for abcdef123456 attempt 0')")
    assert repr(error) == "ChaosError('injected failure for abcdef123456 attempt 0')"


def test_fleet_raises_after_repeated_spawn_failures(monkeypatch):
    """Workers that die before their ready line must fail the run loudly."""
    monkeypatch.setattr(
        "repro.scenarios.fleet._worker_env",
        lambda: {"PATH": "/nonexistent", "PYTHONPATH": "/nonexistent"},
    )
    with pytest.raises(ValidationError, match="before becoming ready"):
        run_scenarios([BASE], workers=1, executor="subprocess-fleet")


# -- execution context plumbing -----------------------------------------------


def test_serial_backend_delegates_to_the_pool_when_a_policy_is_active():
    calls = []

    def on_complete(index, record, attempt):
        calls.append(index)

    SerialExecutor().execute(
        ExecutionContext(
            spec_list=[BASE.with_overrides(timesteps=3)],
            indices=[0],
            workers=1,
            max_pending=None,
            policy=PointPolicy(timeout_s=60.0),
            timed=False,
            on_complete=on_complete,
        )
    )
    assert calls == [0]
