"""Tests for repro.analysis.amortized and repro.analysis.trackers."""

import math

import networkx as nx
import pytest

from repro.analysis.amortized import (
    CostLedger,
    lemma5_lower_bound,
    theorem5_upper_bound,
)
from repro.analysis.trackers import DegreeRatioTracker, MetricTimeline
from repro.core.ghost import GhostGraph
from repro.util.validation import ValidationError


def test_lemma5_lower_bound_average_of_degrees():
    assert lemma5_lower_bound([4, 6, 2]) == pytest.approx(4.0)
    assert lemma5_lower_bound([]) == 0.0
    # Zero degrees still cost at least one message each.
    assert lemma5_lower_bound([0, 0]) == pytest.approx(1.0)


def test_theorem5_upper_bound_formula():
    degrees = [4, 4, 4]
    assert theorem5_upper_bound(degrees, kappa=4, n=64) == pytest.approx(4 * 6 * 4)
    with pytest.raises(ValidationError):
        theorem5_upper_bound(degrees, kappa=0, n=64)
    with pytest.raises(ValidationError):
        theorem5_upper_bound(degrees, kappa=4, n=1)


def test_cost_ledger_summary():
    ledger = CostLedger(kappa=4)
    ledger.record_deletion(1, black_degree=4, messages=30, rounds=3, network_size=50)
    ledger.record_deletion(2, black_degree=6, messages=50, rounds=5, network_size=49)
    summary = ledger.summary()
    assert summary.deletions == 2
    assert summary.total_messages == 80
    assert summary.amortized_messages == pytest.approx(40.0)
    assert summary.lower_bound == pytest.approx(5.0)
    assert summary.max_rounds == 5
    assert summary.mean_rounds == pytest.approx(4.0)
    assert summary.overhead_vs_lower_bound == pytest.approx(8.0)
    expected_upper = 4 * math.log2(50) * 5.0
    assert summary.upper_bound == pytest.approx(expected_upper)
    assert summary.within_upper_bound == (summary.amortized_messages <= expected_upper)


def test_cost_ledger_empty_summary():
    summary = CostLedger().summary()
    assert summary.deletions == 0
    assert summary.amortized_messages == 0.0


def test_cost_ledger_validation():
    ledger = CostLedger()
    with pytest.raises(ValidationError):
        ledger.record_deletion(1, black_degree=-1, messages=0, rounds=0, network_size=10)
    with pytest.raises(ValidationError):
        ledger.record_deletion(1, black_degree=1, messages=-1, rounds=0, network_size=10)


def test_degree_ratio_tracker_detects_bound():
    graph = nx.random_regular_graph(4, 12, seed=1)
    ghost = GhostGraph(graph)
    tracker = DegreeRatioTracker(kappa=4)
    worst = tracker.observe(graph, ghost)
    assert worst == pytest.approx(1.0)
    assert tracker.bound_respected
    # Now violate the bound artificially.
    healed = graph.copy()
    for extra in range(200, 240):
        healed.add_edge(0, extra)
    tracker.observe(healed, ghost)
    assert not tracker.bound_respected
    assert tracker.worst_node == 0


def test_metric_timeline_records_and_series():
    graph = nx.random_regular_graph(4, 12, seed=2)
    ghost = GhostGraph(graph)
    timeline = MetricTimeline(exact_limit=12, stretch_sample_pairs=None)
    timeline.record(1, graph, ghost, worst_degree_ratio=1.0)
    smaller = graph.copy()
    smaller.remove_node(0)
    ghost.record_deletion(0)
    timeline.record(2, smaller, ghost, worst_degree_ratio=1.5)
    assert len(timeline.entries) == 2
    series = timeline.series("edge_expansion")
    assert len(series) == 2
    ghost_series = timeline.series("nodes", side="ghost")
    assert ghost_series[0] == 12 and ghost_series[1] == 11
    assert timeline.final().timestep == 2


def test_metric_timeline_empty_final():
    assert MetricTimeline().final() is None
