"""Tests for the Law-Siu H-graph construction (repro.expanders.hgraph)."""

import networkx as nx
import pytest

from repro.expanders.hgraph import HGraph
from repro.util.rng import SeededRng
from repro.util.validation import ValidationError


def make(n=12, d=2, seed=0, rebuild=False):
    return HGraph(range(n), d=d, rng=SeededRng(seed), rebuild_at_half_loss=rebuild)


def test_initial_size_and_membership():
    hgraph = make(10)
    assert len(hgraph) == 10
    assert 3 in hgraph
    assert 99 not in hgraph


def test_requires_three_nodes_and_positive_d():
    with pytest.raises(ValidationError):
        HGraph([0, 1], d=2)
    with pytest.raises(ValidationError):
        HGraph(range(5), d=0)


def test_multigraph_is_2d_regular():
    hgraph = make(9, d=3)
    degree = {node: 0 for node in hgraph.nodes()}
    for u, v in hgraph.multigraph_edges():
        degree[u] += 1
        degree[v] += 1
    assert all(value == 6 for value in degree.values())


def test_simple_projection_degree_bounded_by_2d():
    hgraph = make(20, d=4)
    graph = hgraph.to_graph()
    assert max(degree for _, degree in graph.degree()) <= hgraph.degree_bound()


def test_simple_projection_connected():
    # Each Hamilton cycle alone connects the vertex set.
    hgraph = make(15, d=1)
    assert nx.is_connected(hgraph.to_graph())


def test_insert_adds_node_to_every_cycle():
    hgraph = make(8, d=3)
    hgraph.insert(100)
    assert 100 in hgraph
    labels = hgraph.neighbor_labels(100)
    assert set(labels) == {1, 2, 3}
    hgraph.validate()


def test_insert_duplicate_rejected():
    hgraph = make(8)
    with pytest.raises(ValidationError):
        hgraph.insert(0)


def test_delete_reconnects_cycles():
    hgraph = make(8, d=2)
    hgraph.delete(3)
    assert 3 not in hgraph
    assert len(hgraph) == 7
    hgraph.validate()
    assert nx.is_connected(hgraph.to_graph())


def test_delete_unknown_rejected():
    hgraph = make(8)
    with pytest.raises(ValidationError):
        hgraph.delete(1234)


def test_cannot_shrink_below_three():
    hgraph = make(4, d=1)
    hgraph.delete(0)
    with pytest.raises(ValidationError):
        hgraph.delete(1)


def test_neighbor_labels_are_cycle_neighbors():
    hgraph = make(10, d=2)
    labels = hgraph.neighbor_labels(5)
    graph = hgraph.to_graph()
    for predecessor, successor in labels.values():
        assert graph.has_edge(5, predecessor) or predecessor == 5
        assert graph.has_edge(5, successor) or successor == 5


def test_churn_preserves_invariants():
    hgraph = make(12, d=2, seed=5)
    rng = SeededRng(77)
    next_id = 1000
    for _ in range(60):
        if rng.coin(0.5) and len(hgraph) > 4:
            hgraph.delete(rng.choice(sorted(hgraph.nodes())))
        else:
            hgraph.insert(next_id)
            next_id += 1
        hgraph.validate()
        assert nx.is_connected(hgraph.to_graph())


def test_rebuild_policy_triggers_after_half_loss():
    hgraph = HGraph(range(12), d=2, rng=SeededRng(1), rebuild_at_half_loss=True)
    for node in range(5):
        hgraph.delete(node)
    # After losing half the nodes the policy has already rebuilt at least once,
    # so the deletions-since-rebuild counter is back below the threshold.
    assert not hgraph.should_rebuild()
    hgraph.validate()


def test_manual_rebuild_preserves_node_set():
    hgraph = make(10, d=3)
    before = hgraph.nodes()
    hgraph.rebuild()
    assert hgraph.nodes() == before
    hgraph.validate()


def test_same_seed_same_structure():
    first = make(10, d=2, seed=9)
    second = make(10, d=2, seed=9)
    assert first.simple_edges() == second.simple_edges()


def test_different_seeds_differ():
    first = make(12, d=2, seed=1)
    second = make(12, d=2, seed=2)
    assert first.simple_edges() != second.simple_edges()
