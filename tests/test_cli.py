"""CLI error-path coverage: exit codes and stderr for every subcommand.

ISSUE 5 satellite: unknown names must fail with did-you-mean text, missing
and tampered stream directories must fail with a pointed message rather
than a traceback, and ``--resume`` with a mismatched ``--replicates`` must
refuse before silently re-running the whole grid.  All failures exit 2 (a
usage/input error); a replay that *runs* but deviates exits 1.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios
from repro.scenarios.cli import main as cli_main

BASE = ScenarioSpec(
    name="cli-test",
    healer="xheal",
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 12, "degree": 4},
    timesteps=2,
    exact_expansion_limit=0,
    stretch_sample_pairs=5,
    seed=2,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [2, 3]})


@pytest.fixture
def spec_file(tmp_path) -> Path:
    path = tmp_path / "spec.json"
    path.write_text(BASE.to_json())
    return path


@pytest.fixture
def sweep_file(tmp_path) -> Path:
    path = tmp_path / "sweep.json"
    path.write_text(SWEEP.to_json())
    return path


def test_list_exits_zero(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "healers:" in out and "xheal" in out


def test_list_verbose_shows_signatures_and_docstring_summaries(capsys):
    assert cli_main(["list", "--verbose"]) == 0
    out = capsys.readouterr().out
    # Constructor signature with defaults, on the component's own line...
    assert "budgeted(inner:" in out and "budget:" in out
    assert "domain-kill(kill_every:" in out
    assert "trace-replay(path:" in out
    # ... and the first docstring line indented beneath it.
    assert "Kill an entire failure domain at once" in out
    assert "Replay a recorded JSONL churn trace" in out


def test_list_verbose_restricts_to_the_requested_kind(capsys):
    assert cli_main(["list", "--kind", "topologies", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "racked-clos(racks:" in out and "pod-mesh(pods:" in out
    assert "healers:" not in out


def test_run_unknown_healer_suggests_the_nearest_name(tmp_path, capsys):
    spec = tmp_path / "typo.json"
    spec.write_text(BASE.with_overrides(healer="xhea").to_json())
    assert cli_main(["run", str(spec)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown healer 'xhea'" in err
    assert "did you mean 'xheal'?" in err


def test_run_unknown_adversary_suggests_the_nearest_name(tmp_path, capsys):
    spec = tmp_path / "typo.json"
    spec.write_text(BASE.with_overrides(adversary="randm").to_json())
    assert cli_main(["run", str(spec)]) == 2
    assert "did you mean 'random'?" in capsys.readouterr().err


def test_run_missing_spec_file_exits_two(tmp_path, capsys):
    assert cli_main(["run", str(tmp_path / "absent.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_malformed_spec_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert cli_main(["run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_sweep_unknown_axis_names_the_sweepable_fields(tmp_path, capsys):
    path = tmp_path / "sweep.json"
    document = SWEEP.to_dict()
    document["axes"] = {"timestps": [2, 3]}
    path.write_text(json.dumps(document))
    assert cli_main(["sweep", str(path)]) == 2
    err = capsys.readouterr().err
    assert "timestps" in err and "not a sweepable field" in err


def test_sweep_rejects_artifact_dir_with_stream_to(sweep_file, tmp_path, capsys):
    code = cli_main(
        [
            "sweep",
            str(sweep_file),
            "--artifact-dir",
            str(tmp_path / "a"),
            "--stream-to",
            str(tmp_path / "b"),
        ]
    )
    assert code == 2
    assert "--artifact-dir" in capsys.readouterr().err


def test_sweep_rejects_compress_without_streaming(sweep_file, capsys):
    assert cli_main(["sweep", str(sweep_file), "--compress"]) == 2
    assert "--compress" in capsys.readouterr().err


def test_resume_replicates_mismatch_is_refused(sweep_file, tmp_path, capsys):
    directory = tmp_path / "dir"
    assert (
        cli_main(
            ["sweep", str(sweep_file), "--stream-to", str(directory), "--replicates", "3"]
        )
        == 0
    )
    capsys.readouterr()
    # Fewer replicates than recorded.
    assert (
        cli_main(
            ["sweep", str(sweep_file), "--resume", str(directory), "--replicates", "2"]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert "replicate ids up to 2" in err and "--replicates 2" in err
    # No replicates at all against a replicated directory.
    assert cli_main(["sweep", str(sweep_file), "--resume", str(directory)]) == 2
    assert "replicates=1" in capsys.readouterr().err
    # The matching count resumes cleanly (everything already recorded).
    assert (
        cli_main(
            ["sweep", str(sweep_file), "--resume", str(directory), "--replicates", "3"]
        )
        == 0
    )
    assert "executed 0, resumed 6" in capsys.readouterr().out


def test_resume_with_replicates_over_an_unreplicated_directory_is_refused(
    sweep_file, tmp_path, capsys
):
    directory = tmp_path / "dir"
    assert cli_main(["sweep", str(sweep_file), "--stream-to", str(directory)]) == 0
    capsys.readouterr()
    assert (
        cli_main(
            ["sweep", str(sweep_file), "--resume", str(directory), "--replicates", "2"]
        )
        == 2
    )
    assert "streamed without replicates" in capsys.readouterr().err


def test_report_missing_directory_exits_two(tmp_path, capsys):
    assert cli_main(["report", str(tmp_path / "absent")]) == 2
    assert "not a sweep directory" in capsys.readouterr().err


def test_report_empty_directory_exits_two(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert cli_main(["report", str(empty)]) == 2
    assert "no run artifacts" in capsys.readouterr().err


def test_report_tampered_artifact_exits_two(tmp_path, capsys):
    directory = tmp_path / "dir"
    run_scenarios(SWEEP.expand(), stream_to=directory)
    victim = next(directory.glob("0000-*.jsonl"))
    victim.write_text("{torn artifact line\n")
    assert cli_main(["report", str(directory)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "not valid JSONL" in err


def test_report_watch_missing_directory_exits_two(tmp_path, capsys):
    assert cli_main(["report", str(tmp_path / "absent"), "--watch"]) == 2
    assert "not a sweep directory" in capsys.readouterr().err


def test_report_watch_empty_directory_gives_up_after_max_refreshes(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    code = cli_main(
        ["report", str(empty), "--watch", "--max-refreshes", "1", "--interval", "0"]
    )
    assert code == 2
    assert "no points appeared" in capsys.readouterr().err


def test_report_watch_of_a_finished_sweep_matches_one_shot_output(tmp_path, capsys):
    directory = tmp_path / "dir"
    run_scenarios(SWEEP.expand(), stream_to=directory)
    assert cli_main(["report", str(directory)]) == 0
    one_shot = capsys.readouterr().out
    assert cli_main(["report", str(directory), "--watch", "--max-refreshes", "1"]) == 0
    watched = capsys.readouterr()
    assert watched.out == one_shot
    assert "[watch]" in watched.err and "complete" in watched.err


def test_retry_failed_without_resume_exits_two(sweep_file, capsys):
    assert cli_main(["sweep", str(sweep_file), "--retry-failed"]) == 2
    err = capsys.readouterr().err
    assert "--retry-failed" in err and "--resume" in err


def test_sweep_with_quarantined_points_exits_three_with_a_retry_hint(tmp_path, capsys):
    flaky_sweep = SweepSpec(
        base=BASE.with_overrides(
            name="cli-flaky", healer="chaos-flaky", healer_kwargs={"fail_at": 0}
        ),
        axes={"timesteps": [2, 3]},
    )
    path = tmp_path / "flaky.json"
    path.write_text(flaky_sweep.to_json())
    directory = tmp_path / "dir"
    code = cli_main(
        ["sweep", str(path), "--stream-to", str(directory), "--max-retries", "1"]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "failed 2" in captured.out
    assert "quarantined after exhausting retries" in captured.err
    assert "--retry-failed" in captured.err
    assert (directory / "failures.jsonl").is_file()
    # The degraded directory still reports — exit 0, failed points listed.
    assert cli_main(["report", str(directory)]) == 0
    report_out = capsys.readouterr()
    assert "## Failed points" in report_out.out and "cli-flaky" in report_out.out
    assert "quarantined point(s) are missing" in report_out.err


def test_interrupted_streamed_sweep_exits_130_with_a_resume_hint(
    sweep_file, tmp_path, capsys, monkeypatch
):
    import repro.scenarios.runner as runner_module

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_module, "run_scenarios", interrupted)
    directory = tmp_path / "dir"
    code = cli_main(["sweep", str(sweep_file), "--stream-to", str(directory)])
    assert code == 130
    err = capsys.readouterr().err
    assert "completed points are safe" in err
    assert f"--resume {directory}" in err


def test_interrupted_buffered_command_exits_130(sweep_file, capsys, monkeypatch):
    import repro.scenarios.runner as runner_module

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_module, "run_scenarios", interrupted)
    assert cli_main(["sweep", str(sweep_file)]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_replay_missing_artifact_exits_two(tmp_path, capsys):
    assert cli_main(["replay", str(tmp_path / "absent.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_replay_roundtrip_including_compressed_artifact(spec_file, tmp_path, capsys):
    artifact = tmp_path / "run.jsonl.gz"
    assert cli_main(["run", str(spec_file), "--artifact", str(artifact)]) == 0
    capsys.readouterr()
    assert cli_main(["replay", str(artifact)]) == 0
    assert "replay identical: True" in capsys.readouterr().out


# -- executor selection (ISSUE 7) ---------------------------------------------


@pytest.mark.parametrize("workers", ["0", "-2"])
def test_sweep_rejects_non_positive_workers(sweep_file, capsys, workers):
    assert cli_main(["sweep", str(sweep_file), "--workers", workers]) == 2
    err = capsys.readouterr().err
    assert "--workers must be at least 1" in err
    assert f"(got {workers})" in err
    assert "Traceback" not in err


def test_sweep_unknown_executor_suggests_the_nearest_name(sweep_file, capsys):
    code = cli_main(["sweep", str(sweep_file), "--executor", "subproces-fleet"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown executor 'subproces-fleet'" in err
    assert "did you mean 'subprocess-fleet'?" in err


def test_list_includes_the_executor_registry(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "executors:" in out
    for name in ("serial", "process-pool", "subprocess-fleet"):
        assert name in out


def test_list_kind_executors_shows_only_executors(capsys):
    assert cli_main(["list", "--kind", "executors"]) == 0
    out = capsys.readouterr().out
    assert "executors:" in out and "subprocess-fleet" in out
    assert "healers:" not in out


def test_sweep_explicit_executor_runs_to_completion(sweep_file, tmp_path, capsys):
    directory = tmp_path / "fleet-run"
    code = cli_main(
        ["sweep", str(sweep_file), "--stream-to", str(directory),
         "--executor", "subprocess-fleet", "--workers", "2"]
    )
    assert code == 0
    assert "executed 2" in capsys.readouterr().out
    assert list(directory.glob("index-w*.jsonl"))
