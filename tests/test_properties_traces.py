"""Property-based tests (hypothesis) for the JSONL churn-trace format.

ISSUE 9 satellite: for arbitrary event sequences, write → read → write is
byte-identical (the encoding is canonical), batch grouping round-trips, and
a recorded run replayed through the ``trace-replay`` adversary re-records a
byte-identical trace and a bit-identical summary row.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import AdversaryEvent, EventType
from repro.adversary.correlated import TraceReplayAdversary
from repro.adversary.traces import (
    churn_trace_bytes,
    group_into_batches,
    read_churn_trace,
    write_churn_trace,
)
from repro.harness.experiment import run_experiment
from repro.scenarios.spec import ScenarioSpec

FAST = settings(max_examples=60, deadline=None)

_node_ids = st.integers(min_value=0, max_value=10_000)

_events = st.builds(
    lambda kind, node, neighbors: AdversaryEvent(
        EventType(kind), node, tuple(neighbor for neighbor in neighbors if neighbor != node)
    ),
    st.sampled_from(["insert", "delete"]),
    _node_ids,
    st.lists(_node_ids, max_size=4, unique=True),
)


@st.composite
def _traces(draw):
    """A random event list plus an optionally-batched non-decreasing step list."""
    events = draw(st.lists(_events, max_size=12))
    if not events or draw(st.booleans()):
        return events, None
    steps: list[int] = []
    step = 1
    for _ in events:
        step += draw(st.integers(min_value=0, max_value=2))
        steps.append(step)
    return events, steps


@FAST
@given(_traces())
def test_churn_trace_bytes_round_trip_exactly(trace):
    events, steps = trace
    data = churn_trace_bytes(events, steps)
    # Parse back from the exact bytes and re-encode: fixpoint after one trip.
    import tempfile, os

    fd, path = tempfile.mkstemp(suffix=".jsonl")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        parsed_events, parsed_steps = read_churn_trace(path)
    finally:
        os.unlink(path)
    assert parsed_events == events
    if steps is None:
        assert all(step is None for step in parsed_steps)
        assert churn_trace_bytes(parsed_events) == data
    else:
        assert parsed_steps == steps
        assert churn_trace_bytes(parsed_events, parsed_steps) == data


@FAST
@given(_traces())
def test_grouping_preserves_order_and_every_event(trace):
    events, steps = trace
    step_list = steps if steps is not None else [None] * len(events)
    batches = group_into_batches(events, step_list)
    flattened = [event for batch in batches for event in batch]
    assert flattened == list(events)
    assert all(len(batch) >= 1 for batch in batches)
    if steps is not None:
        # Events inside one batch all carried the same recorded step.
        position = 0
        for batch in batches:
            batch_steps = step_list[position : position + len(batch)]
            assert len(set(batch_steps)) == 1
            position += len(batch)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_recorded_runs_replay_byte_identically_for_any_seed(tmp_path_factory, seed):
    """record → trace-replay → byte-identical trace and bit-identical summary."""
    spec = ScenarioSpec(
        healer="budgeted",
        healer_kwargs={"inner": "line-heal", "budget": 2},
        adversary="domain-kill",
        adversary_kwargs={"kill_every": 2, "min_nodes": 5},
        topology="pod-mesh",
        topology_kwargs={"pods": 2, "nodes_per_pod": 4},
        timesteps=4,
        seed=seed,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
        snapshot_every=0,
    )
    original = run_experiment(spec.compile())
    trace_path = tmp_path_factory.mktemp("traces") / "churn.jsonl"
    write_churn_trace(original.trace, trace_path, steps=original.event_steps)

    replay_spec = spec.with_overrides(
        adversary="trace-replay",
        adversary_kwargs={"path": str(trace_path), "label": original.adversary_name},
    )
    replayed = run_experiment(replay_spec.compile())
    assert json.dumps(replayed.summary_row(), sort_keys=True) == json.dumps(
        original.summary_row(), sort_keys=True
    )
    assert (
        churn_trace_bytes(replayed.trace, replayed.event_steps)
        == trace_path.read_bytes()
    )


def test_trace_replay_adversary_is_a_pure_function_of_the_file(tmp_path):
    events = [
        AdversaryEvent(EventType.DELETE, 0),
        AdversaryEvent(EventType.DELETE, 1),
        AdversaryEvent(EventType.INSERT, 9, (2,)),
    ]
    path = write_churn_trace(events, tmp_path / "t.jsonl", steps=[1, 1, 2])
    import networkx as nx

    outputs = []
    for _ in range(2):
        adversary = TraceReplayAdversary(path=str(path), seed=123)
        graph = nx.cycle_graph(6)
        adversary.bind(graph)
        batches = []
        step = 0
        while True:
            step += 1
            batch = adversary.next_events(graph, step)
            if batch is None:
                break
            batches.append(batch)
        outputs.append(batches)
    assert outputs[0] == outputs[1]
    assert [len(batch) for batch in outputs[0]] == [2, 1]
