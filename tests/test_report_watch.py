"""Differential guarantees for `repro report --watch` and compressed reports.

ISSUE 5 satellite: a watch snapshot taken after k of n streamed points must
equal a fresh one-shot ``repro report`` over the same partial directory; the
final watch output (once the sweep's MANIFEST lands) must be byte-identical
to the one-shot report of the finished directory — markdown and every
written CSV; and a compressed sweep directory must report identically to an
uncompressed one of the same grid.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ReportWatcher, generate_report, watch_report
from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="watch-test",
    healer="xheal",
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 12, "degree": 4},
    timesteps=4,
    metric_every=2,
    exact_expansion_limit=10,
    stretch_sample_pairs=10,
    seed=21,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 4]}, replicates=2)


def _out_files(directory):
    return {path.name: path.read_bytes() for path in directory.iterdir()}


@pytest.mark.parametrize("compress", [False, True])
def test_watch_snapshots_equal_one_shot_reports(tmp_path, compress):
    specs = SWEEP.expand()
    directory = tmp_path / "live"
    k = 2
    run_scenarios(specs[:k], stream_to=directory, compress=compress)
    # A prefix run finalizes its own manifest; a genuinely crashed sweep
    # never gets that far, so remove it to model the mid-sweep state.
    (directory / "MANIFEST.json").unlink()

    watcher = ReportWatcher(directory, out_dir=tmp_path / "watch-out", ci=True)
    snapshot = watcher.refresh()
    assert len(snapshot.points) == k
    assert not watcher.complete
    one_shot = generate_report(directory, out_dir=tmp_path / "partial-out", ci=True)
    assert snapshot.markdown == one_shot.markdown
    assert _out_files(tmp_path / "watch-out") == _out_files(tmp_path / "partial-out")

    # Finish the sweep; the next refresh must see the manifest and converge
    # byte-for-byte with a fresh report of the completed directory.
    run_scenarios(specs, resume=directory)
    final = watcher.refresh()
    assert watcher.complete
    assert len(final.points) == len(specs)
    reference = generate_report(directory, out_dir=tmp_path / "full-out", ci=True)
    assert final.markdown == reference.markdown
    assert _out_files(tmp_path / "watch-out") == _out_files(tmp_path / "full-out")
    assert [path.name for path in final.written] == [
        path.name for path in reference.written
    ]


def test_watch_report_polls_until_the_sweep_completes(tmp_path):
    specs = SWEEP.expand()
    directory = tmp_path / "live"
    run_scenarios(specs[:1], stream_to=directory)
    (directory / "MANIFEST.json").unlink()
    sleeps = []

    def sleep_then_finish(seconds: float) -> None:
        sleeps.append(seconds)
        run_scenarios(specs, resume=directory)

    snapshots = []
    report = watch_report(
        directory,
        interval=0.25,
        sleep=sleep_then_finish,
        on_refresh=lambda watcher, snapshot: snapshots.append(
            len(snapshot.points) if snapshot else 0
        ),
    )
    assert sleeps == [0.25]
    assert snapshots == [1, len(specs)]
    assert report.markdown == generate_report(directory).markdown


def test_watch_skips_tampered_artifacts_until_repaired(tmp_path):
    specs = SWEEP.expand()
    directory = tmp_path / "live"
    result = run_scenarios(specs, stream_to=directory)
    result.manifest_path.unlink()  # still "running" from the watcher's view
    victim = result.paths[0]
    victim.write_bytes(b"garbage")

    watcher = ReportWatcher(directory)
    snapshot = watcher.refresh()
    assert len(snapshot.points) == len(specs) - 1
    assert all(point.artifact != victim.name for point in snapshot.points)

    run_scenarios(specs, resume=directory)  # repairs the tampered point
    final = watcher.refresh()
    assert watcher.complete
    assert len(final.points) == len(specs)
    assert final.markdown == generate_report(directory).markdown


def test_watch_retry_list_stays_bounded_across_refreshes(tmp_path):
    """An unverifiable entry is retried once per refresh, never duplicated."""
    specs = SWEEP.expand()
    directory = tmp_path / "live"
    result = run_scenarios(specs[:2], stream_to=directory)
    result.manifest_path.unlink()
    result.paths[0].unlink()  # its index entry can never verify

    watcher = ReportWatcher(directory)
    for _ in range(6):
        snapshot = watcher.refresh()
    assert len(watcher._retry) == 1
    assert len(snapshot.points) == 1


def test_watch_never_completes_over_an_unverifiable_manifest_entry(tmp_path):
    """Manifest stragglers get the same verification as indexed entries."""
    specs = SWEEP.expand()
    result = run_scenarios(specs, stream_to=tmp_path / "done")
    victim = result.paths[0]
    victim.write_text('{"kind": "spec", "data": {}}\n{"kind": "summary", "data": {}}\n')

    watcher = ReportWatcher(tmp_path / "done")
    snapshot = watcher.refresh()
    assert not watcher.complete
    assert len(snapshot.points) == len(specs) - 1
    assert all(point.artifact != victim.name for point in snapshot.points)

    run_scenarios(specs, resume=tmp_path / "done")  # repair
    final = watcher.refresh()
    assert watcher.complete and len(final.points) == len(specs)


def test_watch_attaches_to_an_already_finished_sweep(tmp_path):
    specs = SWEEP.expand()
    run_scenarios(specs, stream_to=tmp_path / "done")
    report = watch_report(tmp_path / "done", max_refreshes=1)
    assert report.markdown == generate_report(tmp_path / "done").markdown


def test_watch_requires_an_existing_directory(tmp_path):
    with pytest.raises(ValidationError, match="not a sweep directory"):
        ReportWatcher(tmp_path / "missing")


def test_compressed_and_uncompressed_directories_report_identically(tmp_path):
    """Same grid, same directory *name* -> byte-identical reports."""
    specs = SWEEP.expand()
    plain_dir = tmp_path / "plain" / "sweep"
    packed_dir = tmp_path / "packed" / "sweep"
    run_scenarios(specs, stream_to=plain_dir)
    run_scenarios(specs, stream_to=packed_dir, compress=True)
    plain = generate_report(plain_dir, out_dir=tmp_path / "plain-out", ci=True)
    packed = generate_report(packed_dir, out_dir=tmp_path / "packed-out", ci=True)
    assert plain.markdown == packed.markdown
    assert _out_files(tmp_path / "plain-out") == _out_files(tmp_path / "packed-out")
