"""Tests for repro.util.ids."""

import pytest

from repro.util.ids import IdAllocator


def test_allocate_monotone():
    allocator = IdAllocator()
    first = allocator.allocate()
    second = allocator.allocate()
    assert second == first + 1


def test_allocate_many_returns_distinct_ids():
    allocator = IdAllocator()
    ids = allocator.allocate_many(10)
    assert len(set(ids)) == 10


def test_allocate_many_negative_rejected():
    allocator = IdAllocator()
    with pytest.raises(ValueError):
        allocator.allocate_many(-1)


def test_from_existing_never_collides():
    allocator = IdAllocator.from_existing([3, 7, 11])
    fresh = allocator.allocate()
    assert fresh == 12
    assert 7 in allocator


def test_from_existing_empty():
    allocator = IdAllocator.from_existing([])
    assert allocator.allocate() == 0


def test_reserve_bumps_next_id():
    allocator = IdAllocator()
    allocator.reserve(5)
    assert allocator.allocate() == 6


def test_reserve_below_next_id_does_not_lower():
    allocator = IdAllocator(next_id=10)
    allocator.reserve(2)
    assert allocator.allocate() == 10


def test_is_allocated_and_contains():
    allocator = IdAllocator()
    value = allocator.allocate()
    assert allocator.is_allocated(value)
    assert value in allocator
    assert (value + 100) not in allocator


def test_len_and_iter_sorted():
    allocator = IdAllocator.from_existing([5, 1, 3])
    allocator.allocate()
    assert len(allocator) == 4
    assert list(allocator) == sorted(allocator)
