"""Tests for repro.spectral.stretch."""

import networkx as nx
import pytest

from repro.spectral.stretch import (
    average_stretch,
    max_stretch,
    pairwise_stretch,
    stretch_against_ghost,
)
from repro.util.validation import ValidationError


def test_identical_graphs_have_stretch_one():
    graph = nx.random_regular_graph(4, 20, seed=1)
    summary = stretch_against_ghost(graph, graph, sample_pairs=None)
    assert summary.max_stretch == pytest.approx(1.0)
    assert summary.average_stretch == pytest.approx(1.0)


def test_removed_shortcut_increases_stretch():
    ghost = nx.cycle_graph(8)
    ghost.add_edge(0, 4)  # a chord
    healed = nx.cycle_graph(8)  # the chord is "missing" in the healed graph
    stretches = pairwise_stretch(healed, ghost, pairs=[(0, 4)])
    assert stretches[(0, 4)] == pytest.approx(4.0)


def test_pairs_disconnected_in_ghost_are_skipped():
    ghost = nx.Graph([(0, 1), (2, 3)])
    healed = nx.path_graph(4)
    stretches = pairwise_stretch(healed, ghost)
    assert (0, 2) not in stretches
    assert (0, 1) in stretches


def test_disconnected_healed_pair_reports_infinity():
    ghost = nx.path_graph(4)
    healed = nx.Graph()
    healed.add_nodes_from(range(4))
    healed.add_edge(0, 1)
    healed.add_edge(2, 3)
    stretches = pairwise_stretch(healed, ghost)
    assert stretches[(0, 3)] == float("inf")


def test_stretch_only_over_common_nodes():
    ghost = nx.path_graph(6)
    healed = nx.path_graph(4)  # nodes 4, 5 deleted
    summary = stretch_against_ghost(healed, ghost, sample_pairs=None)
    assert summary.pairs_compared == 6  # C(4, 2)


def test_sampling_limits_pairs():
    graph = nx.random_regular_graph(4, 30, seed=2)
    summary = stretch_against_ghost(graph, graph, sample_pairs=10)
    assert summary.pairs_compared <= 10


def test_max_and_average_wrappers():
    graph = nx.cycle_graph(10)
    assert max_stretch(graph, graph) == pytest.approx(1.0)
    assert average_stretch(graph, graph) == pytest.approx(1.0)


def test_too_few_common_nodes_rejected():
    with pytest.raises(ValidationError):
        stretch_against_ghost(nx.path_graph(2), nx.Graph([(5, 6)]))


def test_log_n_ratio_property():
    graph = nx.cycle_graph(16)
    summary = stretch_against_ghost(graph, graph, sample_pairs=None)
    assert summary.log_n_ratio <= 1.0
