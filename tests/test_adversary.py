"""Tests for the adversary strategies."""

import networkx as nx
import pytest

from repro.adversary import (
    AdversaryEvent,
    CascadeAdversary,
    DeletionOnlyAdversary,
    EventType,
    InsertionOnlyAdversary,
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
    ScriptedAdversary,
    StarCenterAdversary,
)
from repro.util.validation import ValidationError


def bound(adversary, graph):
    adversary.bind(graph)
    return adversary


def test_event_flags():
    insert = AdversaryEvent(EventType.INSERT, 5, (1, 2))
    delete = AdversaryEvent(EventType.DELETE, 5)
    assert insert.is_insertion and not insert.is_deletion
    assert delete.is_deletion and not delete.is_insertion


def test_adversary_requires_bind_before_insertion():
    adversary = InsertionOnlyAdversary(seed=1)
    with pytest.raises(RuntimeError):
        adversary.next_event(nx.path_graph(3), 0)


def test_insertion_only_produces_fresh_ids():
    graph = nx.path_graph(5)
    adversary = bound(InsertionOnlyAdversary(seed=2), graph)
    seen = set(graph.nodes())
    for timestep in range(10):
        event = adversary.next_event(graph, timestep)
        assert event.is_insertion
        assert event.node not in seen
        assert all(neighbor in seen for neighbor in event.neighbors)
        seen.add(event.node)
        graph.add_node(event.node)
        graph.add_edges_from((event.node, neighbor) for neighbor in event.neighbors)


def test_deletion_only_respects_min_nodes():
    graph = nx.path_graph(5)
    adversary = bound(DeletionOnlyAdversary(min_nodes=4, seed=1), graph)
    event = adversary.next_event(graph, 0)
    assert event.is_deletion
    small = nx.path_graph(4)
    assert adversary.next_event(small, 1) is None


def test_max_degree_adversary_picks_hub():
    graph = nx.star_graph(6)
    adversary = bound(MaxDegreeAdversary(seed=0), graph)
    event = adversary.next_event(graph, 0)
    assert event.node == 0


def test_min_degree_adversary_picks_leaf():
    graph = nx.star_graph(6)
    adversary = bound(MinDegreeAdversary(seed=0), graph)
    event = adversary.next_event(graph, 0)
    assert event.node != 0


def test_star_center_adversary_prefers_articulation_hub():
    graph = nx.star_graph(8)
    graph.add_edge(1, 2)
    adversary = bound(StarCenterAdversary(seed=0), graph)
    event = adversary.next_event(graph, 0)
    assert event.node == 0


def test_cascade_adversary_follows_neighborhood():
    graph = nx.random_regular_graph(4, 20, seed=1)
    adversary = bound(CascadeAdversary(seed=2), graph)
    first = adversary.next_event(graph, 0)
    neighbors = set(graph.neighbors(first.node))
    graph.remove_node(first.node)
    second = adversary.next_event(graph, 1)
    assert second.node in neighbors


def test_random_adversary_mixes_inserts_and_deletes():
    graph = nx.random_regular_graph(4, 20, seed=3)
    adversary = bound(RandomAdversary(seed=5, delete_probability=0.5), graph)
    kinds = set()
    working = graph.copy()
    for timestep in range(30):
        event = adversary.next_event(working, timestep)
        kinds.add(event.type)
        if event.is_deletion:
            working.remove_node(event.node)
        else:
            working.add_node(event.node)
            working.add_edges_from((event.node, neighbor) for neighbor in event.neighbors)
    assert kinds == {EventType.INSERT, EventType.DELETE}


def test_random_adversary_validation():
    with pytest.raises(ValidationError):
        RandomAdversary(delete_probability=1.5)
    with pytest.raises(ValidationError):
        RandomAdversary(max_attachments=0)


def test_scripted_adversary_replays_and_exhausts():
    events = [AdversaryEvent(EventType.DELETE, 1), AdversaryEvent(EventType.DELETE, 2)]
    adversary = ScriptedAdversary(events)
    adversary.bind(nx.path_graph(5))
    assert adversary.remaining() == 2
    assert adversary.next_event(nx.path_graph(5), 0).node == 1
    assert adversary.next_event(nx.path_graph(5), 1).node == 2
    assert adversary.next_event(nx.path_graph(5), 2) is None


def test_scripted_deleting_helper():
    adversary = ScriptedAdversary.deleting([4, 2])
    adversary.bind(nx.path_graph(6))
    assert adversary.next_event(nx.path_graph(6), 0).node == 4


def test_same_seed_reproducible_decisions():
    graph = nx.random_regular_graph(4, 16, seed=4)
    first = bound(RandomAdversary(seed=9), graph.copy())
    second = bound(RandomAdversary(seed=9), graph.copy())
    events_first = [first.next_event(graph, t) for t in range(5)]
    events_second = [second.next_event(graph, t) for t in range(5)]
    assert events_first == events_second
