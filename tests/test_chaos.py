"""Fault-injection differentials: chaos + retries converge to fault-free bytes.

The contract under test (ISSUE 6 tentpole): the pooled runner survives the
failure modes real worker fleets exhibit — process crashes, hangs, poison
exceptions, torn artifact writes — and, because every fault schedule and
every retry decision is a pure function of seeds and fingerprints, a chaotic
run with enough retries produces a directory *byte-identical* to a fault-free
serial run (modulo the completion log, the quarantine ledger and the
manifest's cost columns).  Points that fail deterministically on every
attempt are quarantined durably instead of sinking the sweep, and the report
layer renders the degraded directory instead of refusing it.
"""

from __future__ import annotations

import json
from concurrent.futures import BrokenExecutor
from pathlib import Path

import pytest

from repro.analysis.report import generate_report, watch_report
from repro.scenarios import ChaosSpec, PointPolicy, ScenarioSpec, SweepSpec, run_scenarios
from repro.scenarios.chaos import ENV_VAR, FAULT_KINDS, chaos_decision
from repro.scenarios.stream import (
    FAILURES_NAME,
    INDEX_NAME,
    MANIFEST_NAME,
    strip_costs,
)
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="chaos-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=5,
    metric_every=3,
    exact_expansion_limit=0,
    stretch_sample_pairs=20,
    seed=3,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 5], "healer_kwargs.kappa": [2, 4]})

#: A schedule verified (see test_chaos_seed_43_covers_every_fault_kind) to
#: fault every point of SWEEP on its first attempt — covering crash, raise
#: and torn-write — while leaving each a fault-free attempt within 3 retries.
#: Used with workers=1, where broken-pool culprit attribution is exact: a
#: crash can never charge an innocent in-flight point an attempt, so the
#: schedule is followed to the letter.
CHAOS = ChaosSpec(crash_prob=0.3, raise_prob=0.25, torn_write_prob=0.25, seed=43)

#: A crash-free schedule (raise + torn-write only) for the parallel
#: differential: without worker deaths every failure is delivered on its own
#: future, so attempt accounting is exact at any worker count.
NOCRASH = ChaosSpec(raise_prob=0.35, torn_write_prob=0.35, seed=28)

#: A point that fails identically on every attempt (exhausts any retry
#: budget): the quarantine fixture.
FLAKY = BASE.with_overrides(
    name="flaky-point", timesteps=3, healer="chaos-flaky", healer_kwargs={"fail_at": 0}
)
POISON = BASE.with_overrides(
    name="poison-point",
    timesteps=3,
    healer="chaos-flaky",
    healer_kwargs={"fail_at": 0, "mode": "poison"},
)
GOOD = BASE.with_overrides(name="good-point", timesteps=3)


def canonical_files(directory: Path):
    """The byte-identity surface of a possibly-degraded sweep directory.

    Same as the stream tests' helper, but the quarantine ledger joins the
    completion log on the excluded list: both are append-only operational
    history (attempt counts, wall clocks, completion order), not part of the
    sweep's identity.  The manifest still participates through
    :func:`strip_costs` — including its ``failed`` section, which is
    deterministic under a seeded fault schedule.
    """
    directory = Path(directory)
    files = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if path.name not in (INDEX_NAME, MANIFEST_NAME, FAILURES_NAME)
        and not path.name.startswith(".")
    }
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        files[MANIFEST_NAME] = strip_costs(json.loads(manifest.read_text()))
    return files


# -- schedule determinism ------------------------------------------------------


def test_chaos_decision_is_a_pure_function_of_its_inputs():
    chaos = ChaosSpec(crash_prob=0.5, raise_prob=0.5, seed=7)
    for attempt in range(5):
        first = chaos_decision(chaos, "f" * 64, attempt)
        assert chaos_decision(chaos, "f" * 64, attempt) == first
        assert first in (None, *FAULT_KINDS)
    # Different fingerprints and seeds draw independently.
    draws = {
        chaos_decision(ChaosSpec(crash_prob=0.5, seed=seed), fp, 0)
        for seed in range(8)
        for fp in ("a" * 64, "b" * 64)
    }
    assert draws == {None, "crash"}


def test_chaos_seed_43_covers_every_fault_kind():
    """Pin the schedule the differential tests rely on (a seed-drift alarm)."""
    schedule = {
        index: [chaos_decision(CHAOS, spec.fingerprint(), attempt) for attempt in range(4)]
        for index, spec in enumerate(SWEEP.expand())
    }
    assert all(kinds[0] is not None for kinds in schedule.values())
    assert {kind for kinds in schedule.values() for kind in kinds if kind} == {
        "crash",
        "raise",
        "torn-write",
    }
    assert all(any(kind is None for kind in kinds) for kinds in schedule.values())


def test_chaos_spec_roundtrip_and_validation():
    chaos = ChaosSpec(crash_prob=0.1, hang_prob=0.2, hang_s=3.0, seed=9)
    assert ChaosSpec.from_json(chaos.to_json()) == chaos
    with pytest.raises(ValidationError, match="crash_prob"):
        ChaosSpec(crash_prob=1.5).validate()
    with pytest.raises(ValidationError, match="unknown ChaosSpec fields"):
        ChaosSpec.from_dict({"crash_probability": 0.5})


def test_point_policy_roundtrip_merge_and_deterministic_backoff():
    policy = PointPolicy(timeout_s=5.0, max_retries=2, backoff=0.1)
    assert PointPolicy.from_dict(policy.to_dict()) == policy
    assert not PointPolicy().active and policy.active
    merged = PointPolicy(backoff=0.5).merged_with(max_retries=3)
    assert merged == PointPolicy(backoff=0.5, max_retries=3)
    # The delay is a pure function of (seed, fingerprint, attempt) and grows
    # exponentially in the attempt number.
    first = policy.retry_delay(3, "a" * 64, 0)
    assert first == policy.retry_delay(3, "a" * 64, 0)
    assert 0.05 <= first < 0.15
    assert policy.retry_delay(3, "a" * 64, 2) >= 2 * first
    assert PointPolicy().retry_delay(3, "a" * 64, 0) == 0.0
    with pytest.raises(ValidationError, match="timeout_s"):
        PointPolicy(timeout_s=0).validate()
    with pytest.raises(ValidationError, match="max_retries"):
        PointPolicy(max_retries=-1).validate()


def test_sweep_spec_policy_field_roundtrips_and_stays_fingerprint_neutral():
    with_policy = SweepSpec(
        base=BASE, axes={"timesteps": [3, 5]}, policy=PointPolicy(max_retries=2)
    )
    bare = SweepSpec(base=BASE, axes={"timesteps": [3, 5]})
    assert SweepSpec.from_json(with_policy.to_json()).policy == PointPolicy(max_retries=2)
    # Operational, not identity: the expanded points are the same specs.
    assert [s.fingerprint() for s in with_policy.expand()] == [
        s.fingerprint() for s in bare.expand()
    ]
    # Pre-policy documents keep their bytes (and hence sweep fingerprints).
    assert "policy" not in bare.to_dict()
    assert SweepSpec.from_json(bare.to_json()) == bare


# -- the differential: chaos + retries == fault-free ---------------------------


def test_chaotic_run_converges_to_fault_free_bytes(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    chaotic = run_scenarios(
        specs,
        stream_to=tmp_path / "chaos",
        policy=PointPolicy(max_retries=3),
    )
    assert chaotic.failed == 0 and chaotic.executed == len(specs)
    assert canonical_files(clean.directory) == canonical_files(chaotic.directory)
    manifest = json.loads(chaotic.manifest_path.read_text())
    assert manifest["failed"] == []


def test_parallel_chaotic_run_without_crashes_matches_serial(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, NOCRASH.to_json())
    chaotic = run_scenarios(
        specs,
        workers=2,
        stream_to=tmp_path / "chaos",
        policy=PointPolicy(max_retries=3),
    )
    assert chaotic.failed == 0
    assert canonical_files(clean.directory) == canonical_files(chaotic.directory)


def test_kill_and_resume_under_the_same_chaos_schedule_converges(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs, stream_to=tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    # "Crash" after two points, then resume the full grid under the same
    # fault schedule (workers inherit it through the environment).
    run_scenarios(
        specs[:2], stream_to=tmp_path / "crash", policy=PointPolicy(max_retries=3)
    )
    resumed = run_scenarios(
        specs, resume=tmp_path / "crash", policy=PointPolicy(max_retries=3)
    )
    assert resumed.failed == 0
    assert resumed.executed == len(specs) - 2 and resumed.skipped == 2
    assert canonical_files(clean.directory) == canonical_files(resumed.directory)


def test_buffered_pooled_run_retries_through_chaos(tmp_path, monkeypatch):
    specs = SWEEP.expand()
    clean = run_scenarios(specs)
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    # Active chaos routes even workers=1 through the pool (the inline path
    # cannot inject worker faults); torn-write is a streamed-only fault, so
    # here the schedule exercises crashes and raises.
    chaotic = run_scenarios(specs, policy=PointPolicy(max_retries=3))
    assert chaotic == clean


def test_buffered_run_without_retries_still_raises(monkeypatch):
    """max_retries=0 keeps the pre-policy contract: the first fault is fatal."""
    specs = SWEEP.expand()
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    # Seed 43 faults every point's first attempt (crashes among them), so a
    # zero-retry run must surface an error rather than return records.
    with pytest.raises((BrokenExecutor, RuntimeError)):
        run_scenarios(specs, workers=2)


def test_timeout_kills_a_hung_worker_and_the_retry_succeeds(tmp_path, monkeypatch):
    spec = BASE.with_overrides(name="hang-point", timesteps=3)
    clean = run_scenarios([spec], stream_to=tmp_path / "clean")
    # Verified schedule for this fingerprint: attempt 0 hangs, attempt 1 clean.
    chaos = ChaosSpec(hang_prob=0.5, hang_s=30.0, seed=2)
    assert chaos_decision(chaos, spec.fingerprint(), 0) == "hang"
    assert chaos_decision(chaos, spec.fingerprint(), 1) is None
    monkeypatch.setenv(ENV_VAR, chaos.to_json())
    result = run_scenarios(
        [spec],
        stream_to=tmp_path / "chaos",
        policy=PointPolicy(timeout_s=2.0, max_retries=1),
    )
    assert result.failed == 0 and result.executed == 1
    assert canonical_files(clean.directory) == canonical_files(result.directory)


def test_timeout_without_retries_quarantines_with_a_timeout_error(tmp_path, monkeypatch):
    spec = BASE.with_overrides(name="hang-point", timesteps=3)
    chaos = ChaosSpec(hang_prob=1.0, hang_s=30.0, seed=0)
    monkeypatch.setenv(ENV_VAR, chaos.to_json())
    result = run_scenarios(
        [spec], stream_to=tmp_path / "dir", policy=PointPolicy(timeout_s=1.0)
    )
    assert result.failed == 1 and result.executed == 0
    [entry] = list(_ledger(result.failures_path))
    assert "timeout_s=1.0" in entry["error"] and entry["attempts"] == 1


def _ledger(path: Path):
    for line in path.read_text().splitlines():
        yield json.loads(line)


# -- quarantine: deterministic failures land in failures.jsonl -----------------


def test_exhausted_retries_quarantine_durably_and_the_sweep_carries_on(tmp_path):
    result = run_scenarios(
        [GOOD, FLAKY, POISON],
        workers=2,
        stream_to=tmp_path / "dir",
        policy=PointPolicy(max_retries=1),
    )
    assert result.executed == 1 and result.failed == 2
    assert [path.name for path in result.paths] == ["0000-good-point.jsonl"]
    entries = {entry["label"]: entry for entry in _ledger(result.failures_path)}
    assert entries["flaky-point"]["attempts"] == 2
    assert "ChaosError" in entries["flaky-point"]["error"]
    # The poison exception could not cross the process boundary, but it
    # failed only its own point — the pool survived and GOOD completed.
    assert entries["poison-point"]["attempts"] == 2
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["points"] == 1
    assert [entry["label"] for entry in manifest["failed"]] == [
        "flaky-point",
        "poison-point",
    ]
    assert all("wall_clock" not in entry for entry in manifest["failed"])


def test_flaky_adversary_exercises_the_quarantine_path_too(tmp_path):
    spec = BASE.with_overrides(
        name="flaky-adversary",
        timesteps=3,
        adversary="chaos-flaky",
        adversary_kwargs={"inner": "random", "inner_kwargs": {"delete_probability": 0.6}, "fail_at": 2},
    )
    result = run_scenarios(
        [spec], stream_to=tmp_path / "dir", policy=PointPolicy(max_retries=1)
    )
    assert result.failed == 1
    [entry] = list(_ledger(result.failures_path))
    assert "timestep 2" in entry["error"]


def test_resume_skips_quarantined_points_unless_retry_failed(tmp_path, monkeypatch):
    spec = BASE.with_overrides(name="transient-point", timesteps=3)
    clean = run_scenarios([spec], stream_to=tmp_path / "clean")
    # Every attempt crashes: the point exhausts its budget and quarantines.
    monkeypatch.setenv(ENV_VAR, ChaosSpec(crash_prob=1.0, seed=1).to_json())
    first = run_scenarios(
        [spec], stream_to=tmp_path / "dir", policy=PointPolicy(max_retries=1)
    )
    assert first.failed == 1 and first.paths == []
    monkeypatch.delenv(ENV_VAR)
    # A plain resume honors the quarantine: nothing re-runs, the manifest
    # still carries the failure.
    skipped = run_scenarios([spec], resume=tmp_path / "dir")
    assert skipped.executed == 0 and skipped.failed == 1
    # retry_failed re-offers the point with a fresh budget; the fault was
    # environmental (chaos is off now), so it converges — and the ledger's
    # history never leaks into the identity surface.
    retried = run_scenarios([spec], resume=tmp_path / "dir", retry_failed=True)
    assert retried.executed == 1 and retried.failed == 0
    assert canonical_files(clean.directory) == canonical_files(retried.directory)
    assert json.loads(retried.manifest_path.read_text())["failed"] == []


def test_retry_failed_requires_resume():
    with pytest.raises(ValidationError, match="retry_failed"):
        run_scenarios([GOOD], stream_to="unused", retry_failed=True)


def test_inline_serial_stream_without_policy_raises_as_before(tmp_path):
    """No active policy, no chaos: the pre-policy contract is untouched."""
    with pytest.raises(RuntimeError, match="chaos-flaky"):
        run_scenarios([FLAKY], stream_to=tmp_path / "dir")


# -- graceful degradation: reporting over a degraded directory -----------------


@pytest.fixture
def degraded_dir(tmp_path) -> Path:
    directory = tmp_path / "degraded"
    run_scenarios(
        [GOOD, FLAKY], stream_to=directory, policy=PointPolicy(max_retries=1)
    )
    return directory


def test_report_renders_a_degraded_directory_instead_of_refusing(degraded_dir):
    report = generate_report(degraded_dir)
    assert [point.label for point in report.points] == ["good-point"]
    assert [entry["label"] for entry in report.failed] == ["flaky-point"]
    assert "- failed points: 1" in report.markdown
    assert "## Failed points" in report.markdown
    assert "flaky-point" in report.markdown and "ChaosError" in report.markdown


def test_report_of_an_entirely_quarantined_directory_still_works(tmp_path):
    directory = tmp_path / "all-failed"
    run_scenarios([FLAKY], stream_to=directory, policy=PointPolicy(max_retries=1))
    report = generate_report(directory)
    assert report.points == [] and len(report.failed) == 1
    assert "## Failed points" in report.markdown
    # The watcher agrees: a directory with only failures is reportable.
    watched = watch_report(directory, max_refreshes=1, interval=0)
    assert watched is not None and len(watched.failed) == 1


def test_watch_report_over_a_degraded_directory_matches_one_shot(degraded_dir):
    one_shot = generate_report(degraded_dir)
    watched = watch_report(degraded_dir, max_refreshes=1, interval=0)
    assert watched.markdown == one_shot.markdown


def test_failure_free_report_has_no_failed_section(tmp_path):
    directory = tmp_path / "clean"
    run_scenarios([GOOD], stream_to=directory)
    report = generate_report(directory)
    assert report.failed == []
    assert "failed points" not in report.markdown
    assert "## Failed points" not in report.markdown


def test_a_ledger_entry_superseded_by_success_is_not_reported(degraded_dir):
    """A point that failed historically but later succeeded is healthy."""
    from repro.scenarios.stream import SweepStream

    # Fabricate history: GOOD once failed, then (as the directory records)
    # succeeded.  Ledger says failed; the artifact says otherwise.  Drop the
    # manifest so the report must fall back to the raw ledger.
    stream = SweepStream(degraded_dir)
    stream.record_failure(0, GOOD, attempts=1, error=RuntimeError("old news"))
    stream.close()
    (degraded_dir / MANIFEST_NAME).unlink()
    report = generate_report(degraded_dir)
    assert [entry["label"] for entry in report.failed] == ["flaky-point"]


# -- pathological directories (satellite: loud refusal, not guessing) ----------


def test_detect_compression_on_pathological_directories(tmp_path):
    from repro.scenarios.stream import detect_compression, iter_index_entries

    empty = tmp_path / "empty"
    empty.mkdir()
    assert detect_compression(empty) is None

    # An index holding only a torn tail line carries no verdict.
    torn = tmp_path / "torn"
    torn.mkdir()
    (torn / INDEX_NAME).write_text('{"index": 0, "finger')
    assert list(iter_index_entries(torn / INDEX_NAME)) == []
    assert detect_compression(torn) is None

    # Mixed encodings with no index verdict: refuse loudly.
    mixed = tmp_path / "mixed"
    mixed.mkdir()
    (mixed / "0000-a.jsonl").write_text("{}\n")
    (mixed / "0001-b.jsonl.gz").write_bytes(b"\x1f\x8b")
    with pytest.raises(ValidationError, match="refusing to guess"):
        detect_compression(mixed)

    # With an index verdict the stray file is ignored: the index wins.
    (mixed / INDEX_NAME).write_text(
        json.dumps({"index": 0, "artifact": "0000-a.jsonl"}) + "\n"
    )
    assert detect_compression(mixed) is False


def test_failures_ledger_tolerates_a_torn_tail(tmp_path):
    directory = tmp_path / "dir"
    run_scenarios([FLAKY], stream_to=directory, policy=PointPolicy(max_retries=1))
    ledger = directory / FAILURES_NAME
    ledger.write_bytes(ledger.read_bytes() + b'{"fingerprint": "torn')
    # Without the manifest, the report reads the (torn) ledger directly.
    (directory / MANIFEST_NAME).unlink()
    report = generate_report(directory)
    assert len(report.failed) == 1
