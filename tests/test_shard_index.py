"""Sharded completion indices: naming, deterministic merge, and resume.

A sweep directory may carry its completion log as the legacy single
``index.jsonl``, as per-worker ``index-<worker>.jsonl`` shards, or both at
once (a sweep started by one backend and finished by another).  Every
reader — the resume scan, ``repro report``, the live watcher — must see one
coherent directory regardless of layout, with a fixed merge order (legacy
first, then shards by sorted filename, lines in file order) so duplicate
fingerprints resolve last-write-wins identically everywhere.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.analysis.report import ReportWatcher, generate_report
from repro.scenarios import ScenarioSpec, SweepSpec, SweepStream, run_scenarios
from repro.scenarios.stream import (
    INDEX_NAME,
    index_paths,
    is_index_name,
    iter_all_index_entries,
    shard_index_name,
    shard_index_paths,
)
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="shard-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=5,
    metric_every=3,
    exact_expansion_limit=0,
    stretch_sample_pairs=20,
    seed=3,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 5], "healer_kwargs.kappa": [2, 4]})


@pytest.fixture(scope="module")
def finished_serial_dir(tmp_path_factory):
    """A completed single-writer sweep directory (legacy index.jsonl)."""
    directory = tmp_path_factory.mktemp("shard") / "serial"
    result = run_scenarios(SWEEP.expand(), stream_to=directory)
    assert result.failed == 0
    return result.directory


def copy_of(directory, tmp_path, name="copy"):
    target = tmp_path / name
    shutil.copytree(directory, target)
    return target


def shardify(directory, shards=2):
    """Rewrite a legacy directory's index as round-robin worker shards."""
    lines = (directory / INDEX_NAME).read_text().splitlines()
    (directory / INDEX_NAME).unlink()
    for slot in range(shards):
        chunk = lines[slot::shards]
        if chunk:
            (directory / shard_index_name(f"w{slot}")).write_text(
                "\n".join(chunk) + "\n"
            )
    return directory


# -- naming -------------------------------------------------------------------


def test_shard_index_name_builds_the_shard_filename():
    assert shard_index_name("w0") == "index-w0.jsonl"
    assert shard_index_name("node-3.local") == "index-node-3.local.jsonl"


@pytest.mark.parametrize("bad", ["", "-w0", "w 0", "w/0", ".hidden", "w0\n"])
def test_shard_index_name_rejects_unsafe_shard_names(bad):
    with pytest.raises(ValidationError):
        shard_index_name(bad)


def test_is_index_name_covers_legacy_and_shards_but_not_artifacts():
    assert is_index_name("index.jsonl")
    assert is_index_name("index-w0.jsonl")
    assert is_index_name("index-node-3.local.jsonl")
    assert not is_index_name("000_point.run.jsonl")
    assert not is_index_name("index.jsonl.gz")
    assert not is_index_name("MANIFEST.json")


def test_index_paths_orders_legacy_first_then_shards_sorted(tmp_path):
    for name in ("index-w1.jsonl", "index.jsonl", "index-w0.jsonl", "index-a.jsonl"):
        (tmp_path / name).write_text("")
    assert [path.name for path in index_paths(tmp_path)] == [
        "index.jsonl",
        "index-a.jsonl",
        "index-w0.jsonl",
        "index-w1.jsonl",
    ]
    assert [path.name for path in shard_index_paths(tmp_path)] == [
        "index-a.jsonl",
        "index-w0.jsonl",
        "index-w1.jsonl",
    ]


# -- merge semantics ----------------------------------------------------------


def test_legacy_directory_reads_identically_through_the_merge_path(
    finished_serial_dir,
):
    merged = list(iter_all_index_entries(finished_serial_dir))
    assert [entry["index"] for entry in merged] == list(range(len(SWEEP.expand())))
    completed = SweepStream(finished_serial_dir).completed()
    assert len(completed) == len(merged)
    assert {entry["fingerprint"] for entry in merged} == set(completed)


def test_sharded_directory_completes_like_the_legacy_one(
    finished_serial_dir, tmp_path
):
    sharded = shardify(copy_of(finished_serial_dir, tmp_path))
    assert SweepStream(sharded).completed() == SweepStream(
        finished_serial_dir
    ).completed()


def test_torn_tail_in_one_shard_skips_only_the_torn_line(
    finished_serial_dir, tmp_path
):
    sharded = shardify(copy_of(finished_serial_dir, tmp_path))
    victim = shard_index_paths(sharded)[0]
    whole = victim.read_text().splitlines()
    # Tear the last line mid-JSON, as a crash mid-append would.
    victim.write_text("\n".join(whole[:-1]) + "\n" + whole[-1][: len(whole[-1]) // 2])
    completed = SweepStream(sharded).completed()
    assert len(completed) == len(SWEEP.expand()) - 1
    torn_fingerprint = json.loads(whole[-1])["fingerprint"]
    assert torn_fingerprint not in completed


def test_duplicate_fingerprints_across_shards_resolve_last_write_wins(
    finished_serial_dir, tmp_path
):
    directory = copy_of(finished_serial_dir, tmp_path)
    entries = [json.loads(line) for line in (directory / INDEX_NAME).read_text().splitlines()]
    duplicated = dict(entries[0])
    # Same verified artifact, distinct observational cost per copy: the cost
    # identifies which copy won the merge without breaking verification.
    for shard, cost in (("a", 1.0), ("b", 2.0)):
        duplicated["wall_clock_s"] = cost
        (directory / shard_index_name(shard)).write_text(
            json.dumps(duplicated, sort_keys=True) + "\n"
        )
    completed = SweepStream(directory).completed()
    assert len(completed) == len(entries)
    # Legacy index first, then index-a, then index-b: the shard-b copy wins.
    assert completed[entries[0]["fingerprint"]]["wall_clock_s"] == 2.0


def test_resume_over_a_mixed_legacy_and_sharded_directory(
    finished_serial_dir, tmp_path
):
    """Half the completion log in index.jsonl, half in shards: resume runs 0."""
    directory = copy_of(finished_serial_dir, tmp_path)
    lines = (directory / INDEX_NAME).read_text().splitlines()
    (directory / INDEX_NAME).write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    (directory / shard_index_name("w0")).write_text(
        "\n".join(lines[len(lines) // 2 :]) + "\n"
    )
    result = run_scenarios(SWEEP.expand(), resume=directory)
    assert result.executed == 0 and result.skipped == len(lines)


def test_resume_reruns_a_point_whose_only_index_line_is_torn(
    finished_serial_dir, tmp_path
):
    sharded = shardify(copy_of(finished_serial_dir, tmp_path))
    victim = shard_index_paths(sharded)[-1]
    whole = victim.read_text().splitlines()
    victim.write_text("\n".join(whole[:-1]) + "\n" + whole[-1][:20])
    result = run_scenarios(SWEEP.expand(), resume=sharded)
    assert result.executed == 1 and result.skipped == len(SWEEP.expand()) - 1
    # The re-run healed the directory: everything verifies again.
    assert len(SweepStream(sharded).completed()) == len(SWEEP.expand())


def test_fresh_directory_check_catches_shard_indices_too(
    finished_serial_dir, tmp_path
):
    sharded = shardify(copy_of(finished_serial_dir, tmp_path))
    with pytest.raises(ValidationError, match="already exists"):
        run_scenarios(SWEEP.expand(), stream_to=sharded)


# -- report and watch ---------------------------------------------------------


def test_report_over_sharded_directory_matches_the_legacy_report(
    finished_serial_dir, tmp_path
):
    # The report title embeds the directory basename; keep it equal.
    sharded = shardify(copy_of(finished_serial_dir, tmp_path, name="serial"))
    legacy = generate_report(finished_serial_dir)
    merged = generate_report(sharded)
    assert merged.markdown == legacy.markdown
    assert [p.fingerprint for p in merged.points] == [
        p.fingerprint for p in legacy.points
    ]


def test_watcher_discovers_shards_that_appear_mid_run(finished_serial_dir, tmp_path):
    """A fleet worker's first completion creates its shard file mid-watch."""
    directory = tmp_path / "live"
    directory.mkdir()
    watcher = ReportWatcher(directory)
    assert watcher.refresh() is None

    source = finished_serial_dir
    entries = [
        json.loads(line) for line in (source / INDEX_NAME).read_text().splitlines()
    ]
    half = len(entries) // 2
    for entry in entries:
        shutil.copy(source / entry["artifact"], directory / entry["artifact"])
    # First refresh: only shard w0 exists, holding the first half.
    (directory / shard_index_name("w0")).write_text(
        "\n".join(json.dumps(e, sort_keys=True) for e in entries[:half]) + "\n"
    )
    report = watcher.refresh()
    assert len(report.points) == half
    # Second refresh: shard w1 appears with the rest; w0 also grows a torn
    # tail that must not poison the merge.
    (directory / shard_index_name("w1")).write_text(
        "\n".join(json.dumps(e, sort_keys=True) for e in entries[half:]) + "\n"
    )
    with (directory / shard_index_name("w0")).open("a") as handle:
        handle.write('{"torn":')
    report = watcher.refresh()
    assert len(report.points) == len(entries)
    assert not watcher.complete  # no MANIFEST.json yet
