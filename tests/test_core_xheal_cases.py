"""Behavioural tests for the three cases of the Xheal algorithm."""

import networkx as nx
import pytest

from repro.core.clouds import CloudKind
from repro.core.colors import BLACK
from repro.core.events import RepairAction
from repro.core.xheal import Xheal, XhealConfig
from repro.util.validation import ValidationError


def make(graph, kappa=4, seed=0):
    healer = Xheal(kappa=kappa, seed=seed)
    healer.initialize(graph)
    return healer


def test_config_validation():
    with pytest.raises(ValidationError):
        XhealConfig(kappa=1)
    assert XhealConfig().kappa == 4


def test_constructor_kappa_shortcut():
    assert Xheal(kappa=6).kappa == 6
    assert Xheal(config=XhealConfig(kappa=8)).kappa == 8


def test_case1_builds_primary_cloud_over_neighbors():
    healer = make(nx.star_graph(7))  # centre 0, leaves 1..7
    report = healer.handle_deletion(0)
    assert report.action is RepairAction.CASE_1_NEW_PRIMARY
    assert len(report.clouds_created) == 1
    clouds = healer.registry.clouds(CloudKind.PRIMARY)
    assert len(clouds) == 1
    assert clouds[0].members == set(range(1, 8))
    assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_case1_small_neighborhood_gives_clique():
    healer = make(nx.star_graph(3), kappa=4)  # 3 leaves <= kappa+1
    healer.handle_deletion(0)
    # The cloud over 3 nodes is a triangle.
    assert healer.graph.number_of_edges() == 3
    assert nx.is_connected(healer.graph)


def test_case1_degree_one_node_just_dropped():
    graph = nx.path_graph(3)  # 0-1-2; node 0 has degree 1
    healer = make(graph)
    report = healer.handle_deletion(0)
    assert report.clouds_created == []
    assert report.edges_added == []
    assert nx.is_connected(healer.graph)


def test_case1_cloud_edges_colored_not_black():
    healer = make(nx.star_graph(6))
    healer.handle_deletion(0)
    cloud = healer.registry.clouds(CloudKind.PRIMARY)[0]
    for u, v in cloud.edges:
        assert not healer.graph.edges[u, v]["color"].is_black


def test_case1_existing_black_edge_recolored_not_duplicated():
    graph = nx.star_graph(5)
    graph.add_edge(1, 2)  # leaves 1 and 2 already adjacent
    healer = make(graph)
    report = healer.handle_deletion(0)
    assert (1, 2) in report.edges_recolored or not healer.graph.edges[1, 2]["color"].is_black
    # Still a simple graph with a single (1,2) edge.
    assert healer.graph.number_of_edges() == len(set(healer.graph.edges()))


def test_case21_secondary_cloud_connects_affected_primaries():
    # Two deletions whose neighbourhoods overlap: the second deletion hits a
    # node that belongs to the first primary cloud.
    graph = nx.star_graph(8)
    healer = make(graph)
    healer.handle_deletion(0)  # case 1: primary cloud over 1..8
    member = sorted(healer.registry.clouds(CloudKind.PRIMARY)[0].members)[0]
    report = healer.handle_deletion(member)
    assert report.action in (RepairAction.CASE_2_1_SECONDARY, RepairAction.CASE_2_1_MERGE)
    assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_case21_black_neighbors_become_singleton_clouds():
    # Build a graph where the deleted node has both a primary-cloud edge and a
    # black edge: star + a pendant attached to the future cloud member.
    graph = nx.star_graph(6)
    graph.add_edge(1, 100)  # black neighbour 100 hangs off node 1
    healer = make(graph)
    healer.handle_deletion(0)  # primary cloud over 1..6
    report = healer.handle_deletion(1)  # node 1 has cloud edges + black edge to 100
    assert nx.is_connected(healer.graph)
    assert 100 in healer.graph
    # 100 must have been pulled into the repair (singleton cloud -> secondary or merge).
    assert healer.graph.degree(100) >= 1
    healer.check_invariants()
    assert report.action in (
        RepairAction.CASE_2_1_SECONDARY,
        RepairAction.CASE_2_1_MERGE,
    )


def test_case22_bridge_deletion_repairs_secondary():
    healer = make(nx.star_graph(10), seed=3)
    healer.handle_deletion(0)
    # Delete primary-cloud members until a bridge node (secondary member) exists.
    deleted_bridge = None
    for _ in range(4):
        secondaries = healer.registry.clouds(CloudKind.SECONDARY)
        if secondaries:
            deleted_bridge = sorted(secondaries[0].members)[0]
            break
        member = sorted(healer.registry.clouds(CloudKind.PRIMARY)[0].members)[0]
        healer.handle_deletion(member)
    if deleted_bridge is None:
        pytest.skip("no secondary cloud formed for this seed")
    report = healer.handle_deletion(deleted_bridge)
    assert report.action in (
        RepairAction.CASE_2_2_FIX_SECONDARY,
        RepairAction.CASE_2_2_MERGE,
        RepairAction.CASE_2_1_MERGE,
    )
    assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_connectivity_maintained_under_repeated_hub_deletion():
    graph = nx.barabasi_albert_graph(40, 3, seed=2)
    healer = make(graph, seed=5)
    for _ in range(15):
        hub = max(healer.graph.nodes(), key=lambda node: healer.graph.degree(node))
        healer.handle_deletion(hub)
        assert nx.is_connected(healer.graph)
        healer.check_invariants()


def test_insertion_takes_no_healing_action():
    healer = make(nx.cycle_graph(6))
    report = healer.handle_insertion(50, [0, 3])
    assert report.action is RepairAction.INSERTION
    assert report.edges_added == []  # adversarial edges are not healer additions
    assert healer.graph.edges[50, 0]["color"] is BLACK


def test_isolated_node_deletion_is_noop():
    graph = nx.cycle_graph(5)
    graph.add_node(99)
    healer = make(graph)
    report = healer.handle_deletion(99)
    assert report.clouds_created == []
    assert report.total_edge_changes == 0


def test_cloud_summary_counts():
    healer = make(nx.star_graph(8))
    assert healer.cloud_summary() == {
        "primary_clouds": 0,
        "secondary_clouds": 0,
        "bridge_nodes": 0,
    }
    healer.handle_deletion(0)
    summary = healer.cloud_summary()
    assert summary["primary_clouds"] == 1
    assert summary["secondary_clouds"] == 0


def test_reports_include_cost_estimates():
    healer = make(nx.star_graph(10))
    report = healer.handle_deletion(0)
    assert report.messages > 0
    assert report.rounds >= 1
