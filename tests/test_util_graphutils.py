"""Tests for repro.util.graphutils."""

import networkx as nx
import pytest

from repro.util.graphutils import (
    add_edge_if_absent,
    connected_components_count,
    copy_graph,
    degree_map,
    ensure_simple,
    induced_degree,
    is_simple,
    max_degree,
    min_degree,
    neighbors_of,
    safe_remove_node,
)


def test_copy_graph_is_independent():
    graph = nx.path_graph(4)
    clone = copy_graph(graph)
    clone.add_edge(0, 3)
    assert not graph.has_edge(0, 3)


def test_is_simple_and_ensure_simple():
    graph = nx.path_graph(3)
    assert is_simple(graph)
    graph.add_edge(1, 1)
    assert not is_simple(graph)
    with pytest.raises(ValueError):
        ensure_simple(graph)


def test_neighbors_of_sorted():
    graph = nx.Graph([(5, 1), (5, 9), (5, 3)])
    assert neighbors_of(graph, 5) == [1, 3, 9]


def test_induced_degree():
    graph = nx.complete_graph(5)
    assert induced_degree(graph, 0, [1, 2]) == 2
    assert induced_degree(graph, 0, []) == 0


def test_safe_remove_node_returns_removed_edges():
    graph = nx.star_graph(3)
    removed = safe_remove_node(graph, 0)
    assert len(removed) == 3
    assert 0 not in graph


def test_safe_remove_missing_node_is_noop():
    graph = nx.path_graph(3)
    assert safe_remove_node(graph, 99) == []
    assert graph.number_of_nodes() == 3


def test_connected_components_count():
    graph = nx.Graph()
    assert connected_components_count(graph) == 0
    graph.add_edges_from([(0, 1), (2, 3)])
    assert connected_components_count(graph) == 2


def test_add_edge_if_absent():
    graph = nx.Graph()
    graph.add_nodes_from([0, 1])
    assert add_edge_if_absent(graph, 0, 1) is True
    assert add_edge_if_absent(graph, 0, 1) is False
    assert add_edge_if_absent(graph, 0, 0) is False
    assert graph.number_of_edges() == 1


def test_degree_map_and_extremes():
    graph = nx.star_graph(4)
    degrees = degree_map(graph)
    assert degrees[0] == 4
    assert max_degree(graph) == 4
    assert min_degree(graph) == 1


def test_degree_extremes_empty_graph():
    graph = nx.Graph()
    assert max_degree(graph) == 0
    assert min_degree(graph) == 0
