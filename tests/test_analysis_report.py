"""`repro report` aggregation: golden-file regression + unit coverage.

The golden fixtures live in ``tests/golden/``: ``report_sweep/`` is a small
checked-in streamed sweep directory, ``report_expected/`` the exact files
``generate_report`` must render from it.  The comparison is byte-for-byte,
so report formatting changes are deliberate — rerun
``scripts/regen_report_golden.py`` and review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.report import (
    detect_axes,
    flatten_dotted,
    generate_report,
    scan_artifact_paths,
)
from repro.scenarios.cli import main as cli_main
from repro.util.validation import ValidationError

GOLDEN = Path(__file__).parent / "golden"
SWEEP_DIR = GOLDEN / "report_sweep"
EXPECTED_DIR = GOLDEN / "report_expected"
REPLICATES_SWEEP_DIR = GOLDEN / "report_replicates_sweep"
REPLICATES_EXPECTED_DIR = GOLDEN / "report_replicates_expected"


def test_report_matches_golden_files(tmp_path):
    report = generate_report(SWEEP_DIR, out_dir=tmp_path)
    assert report.markdown == (EXPECTED_DIR / "report.md").read_text(encoding="utf-8")
    for name in ("report.md", "summary.csv", "timeline.csv"):
        produced = (tmp_path / name).read_bytes()
        expected = (EXPECTED_DIR / name).read_bytes()
        assert produced == expected, f"{name} deviates from the golden file"
    assert [path.name for path in report.written] == [
        "report.md",
        "summary.csv",
        "timeline.csv",
    ]


def test_replicate_report_matches_golden_files(tmp_path):
    """The compressed replicates=3 sweep: aggregation + CI columns pinned."""
    report = generate_report(REPLICATES_SWEEP_DIR, out_dir=tmp_path, ci=True)
    for name in ("report.md", "summary.csv", "replicates.csv", "timeline.csv"):
        produced = (tmp_path / name).read_bytes()
        expected = (REPLICATES_EXPECTED_DIR / name).read_bytes()
        assert produced == expected, f"{name} deviates from the golden file"
    assert [path.name for path in report.written] == [
        "report.md",
        "summary.csv",
        "replicates.csv",
        "timeline.csv",
    ]
    # Per-replicate seeds are the replication mechanism, never an axis.
    assert list(report.axes) == ["healer"]
    assert "## Replicates" in report.markdown


def test_replicate_report_without_ci_omits_the_column():
    report = generate_report(REPLICATES_SWEEP_DIR, ci=False)
    assert "ci95" not in report.markdown
    assert "## Replicates" in report.markdown


def test_report_detects_the_sweep_axes():
    report = generate_report(SWEEP_DIR)
    assert list(report.axes) == ["healer", "timesteps"]
    assert report.axes["healer"] == ["no-heal", "xheal"]
    assert report.axes["timesteps"] == [3, 5]
    assert len(report.points) == 4


def test_cli_report_prints_markdown_and_writes_out(tmp_path, capsys):
    assert cli_main(["report", str(SWEEP_DIR), "--out", str(tmp_path / "out")]) == 0
    captured = capsys.readouterr()
    assert captured.out == (EXPECTED_DIR / "report.md").read_text(encoding="utf-8")
    assert "wrote" in captured.err
    assert (tmp_path / "out" / "summary.csv").exists()


def test_cli_report_no_timeline_flag(capsys):
    assert cli_main(["report", str(SWEEP_DIR), "--no-timeline"]) == 0
    assert "## Timelines" not in capsys.readouterr().out


def test_scan_prefers_manifest_order_and_falls_back_to_sorted(tmp_path):
    paths = scan_artifact_paths(SWEEP_DIR)
    manifest = json.loads((SWEEP_DIR / "MANIFEST.json").read_text())
    assert [path.name for path in paths] == [e["artifact"] for e in manifest["entries"]]

    # Without a manifest: sorted *.jsonl, with the stream index excluded.
    for path in paths:
        (tmp_path / path.name).write_bytes(path.read_bytes())
    (tmp_path / "index.jsonl").write_text("{}\n")
    fallback = scan_artifact_paths(tmp_path)
    assert [path.name for path in fallback] == sorted(path.name for path in paths)

    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValidationError, match="no run artifacts"):
        scan_artifact_paths(empty)
    with pytest.raises(ValidationError, match="not a sweep directory"):
        scan_artifact_paths(tmp_path / "missing")


def test_report_without_manifest_matches_golden_markdown(tmp_path):
    # A hand-assembled directory (no MANIFEST.json, no index.jsonl) whose
    # sorted-name order equals the sweep's submission order reports the same.
    for path in SWEEP_DIR.glob("*.jsonl"):
        if path.name != "index.jsonl":
            (tmp_path / path.name).write_bytes(path.read_bytes())
    report = generate_report(tmp_path)
    golden_body = (EXPECTED_DIR / "report.md").read_text(encoding="utf-8")
    # Only the directory name in the title differs.
    assert report.markdown.splitlines()[1:] == golden_body.splitlines()[1:]


def test_scan_ignores_crash_leftover_temp_files(tmp_path):
    """A killed stream may leave .tmp-* partials; report must skip them."""
    for path in SWEEP_DIR.glob("*.jsonl"):
        if path.name != "index.jsonl":
            (tmp_path / path.name).write_bytes(path.read_bytes())
    (tmp_path / ".tmp-0004-partial.jsonl").write_text('{"kind": "spec", "da')  # torn write
    paths = scan_artifact_paths(tmp_path)
    assert all(not path.name.startswith(".") for path in paths)
    report = generate_report(tmp_path)
    assert len(report.points) == 4


def test_axis_with_missing_key_gets_an_explicit_group(tmp_path):
    """Hand-assembled dirs can mix kwargs shapes; nothing may vanish."""
    import json as json_module

    sources = sorted(p for p in SWEEP_DIR.glob("*.jsonl") if p.name != "index.jsonl")
    for index, path in enumerate(sources[:3]):
        lines = path.read_text().splitlines()
        spec_line = json_module.loads(lines[0])
        spec_line["data"]["name"] = f"point-{index}"
        if index < 2:
            spec_line["data"]["healer_kwargs"] = {"kappa": 2 + 2 * index}
        else:
            spec_line["data"]["healer_kwargs"] = {}
        (tmp_path / path.name).write_text(
            "\n".join([json_module.dumps(spec_line, sort_keys=True)] + lines[1:]) + "\n"
        )
    report = generate_report(tmp_path)
    assert "healer_kwargs.kappa" in report.axes
    section = report.markdown.split("## Axis: `healer_kwargs.kappa`")[1].split("\n## ")[0]
    assert "(missing)" in section
    # Per-axis point counts sum to the directory total.
    counts = [
        int(line.split("|")[2].strip())
        for line in section.splitlines()
        if line.startswith("|") and "---" not in line and "points" not in line
    ]
    assert sum(counts) == 3


def test_flatten_dotted_and_detect_axes_units():
    assert flatten_dotted({"a": {"b": {"c": 1}}, "d": [1, 2]}) == {"a.b.c": 1, "d": [1, 2]}

    class Point:
        def __init__(self, spec_flat):
            self.spec_flat = spec_flat

    points = [
        Point({"name": "p0", "kappa": 2, "healer": "xheal", "seed": 1}),
        Point({"name": "p1", "kappa": 4, "healer": "xheal", "seed": 1}),
    ]
    axes = detect_axes(points)
    # `name` always varies and is never an axis; constants are dropped.
    assert axes == {"kappa": [2, 4]}


def test_bootstrap_ci_seed_labels_cannot_collide():
    """ISSUE 10 bugfix: the resampler seed must encode its labels
    unambiguously.  The old colon-join made ("a:b", "c") and ("a", "b:c")
    the same stream, so a point named like another point's point+metric
    join shared its resamples."""
    from repro.analysis.report import bootstrap_ci

    values = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]
    assert bootstrap_ci(values, "a:b", "c") != bootstrap_ci(values, "a", "b:c")


def test_identical_columns_in_different_metrics_get_independent_cis():
    """Two metrics of one point with identical values must not share a
    resample stream — their CIs come from independently-seeded bootstraps."""
    from repro.analysis.report import bootstrap_ci

    values = [3.0, 7.0, 1.0, 12.0, 5.0]
    first = bootstrap_ci(values, "point[x=1]", "amortized_msgs")
    second = bootstrap_ci(values, "point[x=1]", "max_stretch")
    assert first != second
    # ... while the same (point, metric) pair is reproducible.
    assert first == bootstrap_ci(values, "point[x=1]", "amortized_msgs")


def test_report_is_memory_bounded(monkeypatch):
    """The reader must stream lines, never load whole artifact files."""
    import repro.analysis.report as report_module

    forbidden_reads = []
    original = Path.read_text

    def spy(self, *args, **kwargs):
        if self.suffix == ".jsonl" and self.name != "MANIFEST.json":
            forbidden_reads.append(self.name)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", spy)
    report_module.generate_report(SWEEP_DIR)
    assert forbidden_reads == []
