"""Tests for repro.spectral.expansion."""

import networkx as nx
import pytest

from repro.spectral.expansion import (
    edge_expansion,
    edge_expansion_bounds,
    edge_expansion_of_cut,
    minimum_expansion_cut,
)
from repro.util.validation import ValidationError


def test_complete_graph_expansion():
    # K_n: every |S|=k cut has k(n-k) edges; minimum over k <= n/2 is at k = n//2.
    graph = nx.complete_graph(8)
    assert edge_expansion(graph) == pytest.approx(4.0)


def test_cycle_expansion():
    # C_n: the minimum cut is a contiguous arc of n/2 nodes crossed by 2 edges.
    graph = nx.cycle_graph(10)
    assert edge_expansion(graph) == pytest.approx(2 / 5)


def test_path_graph_expansion():
    # P_n: cutting in the middle crosses one edge.
    graph = nx.path_graph(8)
    assert edge_expansion(graph) == pytest.approx(1 / 4)


def test_star_expansion_is_one():
    # Star: any set of k leaves has k crossing edges -> expansion 1.
    graph = nx.star_graph(9)
    assert edge_expansion(graph) == pytest.approx(1.0)


def test_disconnected_graph_has_zero_expansion():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert edge_expansion(graph) == 0.0


def test_single_edge_graph():
    graph = nx.Graph([(0, 1)])
    assert edge_expansion(graph) == pytest.approx(1.0)


def test_too_small_graph_raises():
    graph = nx.Graph()
    graph.add_node(0)
    with pytest.raises(ValidationError):
        edge_expansion(graph)


def test_edge_expansion_of_cut_matches_manual_count():
    graph = nx.cycle_graph(6)
    assert edge_expansion_of_cut(graph, {0, 1, 2}) == pytest.approx(2 / 3)


def test_edge_expansion_of_cut_rejects_empty_and_full():
    graph = nx.cycle_graph(4)
    with pytest.raises(ValidationError):
        edge_expansion_of_cut(graph, set())
    with pytest.raises(ValidationError):
        edge_expansion_of_cut(graph, set(graph.nodes()))


def test_minimum_expansion_cut_exact_flag():
    small = nx.cycle_graph(8)
    result = minimum_expansion_cut(small)
    assert result.exact is True
    assert result.value == pytest.approx(edge_expansion_of_cut(small, result.cut))


def test_large_graph_uses_approximation():
    graph = nx.random_regular_graph(4, 40, seed=1)
    result = minimum_expansion_cut(graph)
    assert result.exact is False
    # The returned cut certifies the returned value.
    assert result.value == pytest.approx(edge_expansion_of_cut(graph, result.cut))


def test_approximate_value_upper_bounds_exact():
    # On a small graph, the approximation (forced via exact_limit=0) can only
    # be >= the true minimum.
    graph = nx.random_regular_graph(3, 14, seed=3)
    exact = edge_expansion(graph)
    approx = edge_expansion(graph, exact_limit=0)
    assert approx >= exact - 1e-12


def test_barbell_graph_has_small_expansion():
    # Two cliques joined by one edge: the clique split crosses 1 edge.
    graph = nx.barbell_graph(6, 0)
    assert edge_expansion(graph) == pytest.approx(1 / 6)


def test_expansion_bounds_order():
    graph = nx.random_regular_graph(4, 30, seed=5)
    lower, upper = edge_expansion_bounds(graph, samples=32, seed=1)
    assert 0.0 <= lower <= upper


def test_expansion_bounds_disconnected():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert edge_expansion_bounds(graph) == (0.0, 0.0)


def test_expander_has_constant_expansion():
    graph = nx.random_regular_graph(6, 16, seed=2)
    assert edge_expansion(graph) >= 1.0
