"""Equivalence tests: the fast kernels must match the slow references.

Three families of guarantees:

* **Cuts** — the vectorized Gray-code kernels return the *same minimum value*
  as the brute-force references on every graph family up to 12 nodes, and the
  returned cut certifies that value under the reference cut evaluators.
* **Spectral** — the sparse / warm-started eigenvalue path agrees with the
  dense reference within 1e-9.
* **Stretch** — the sampled-source BFS implementation returns a summary
  *bit-identical* to the old all-pairs implementation under a fixed seed.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.perf.engine import MetricsEngine
from repro.spectral.cheeger import (
    cheeger_constant_of_cut,
    exact_cheeger_reference,
)
from repro.spectral.expansion import (
    edge_expansion_of_cut,
    exact_minimum_cut_reference,
    minimum_expansion_cut,
)
from repro.perf.kernels import exact_minimum_cheeger_cut
from repro.spectral.laplacian import (
    algebraic_connectivity,
    algebraic_connectivity_reference,
    normalized_lambda2_reference,
    normalized_laplacian_second_eigenvalue,
)
from repro.spectral.metrics import snapshot_metrics
from repro.spectral.stretch import (
    stretch_against_ghost,
    stretch_against_ghost_reference,
)


def _graph_zoo(max_nodes: int = 12) -> list[tuple[str, nx.Graph]]:
    """Every structured + random family used for cut equivalence."""
    zoo: list[tuple[str, nx.Graph]] = []
    for n in range(2, max_nodes + 1):
        zoo.append((f"K{n}", nx.complete_graph(n)))
        zoo.append((f"P{n}", nx.path_graph(n)))
        zoo.append((f"star{n}", nx.star_graph(n - 1)))
        if n >= 3:
            zoo.append((f"C{n}", nx.cycle_graph(n)))
    for seed in range(4):
        for n in (5, 8, 12):
            zoo.append((f"gnp{n}s{seed}", nx.gnp_random_graph(n, 0.45, seed=seed)))
    zoo.append(("barbell", nx.barbell_graph(5, 1)))
    zoo.append(("grid3x4", nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 4))))
    zoo.append(("two-components", nx.Graph([(0, 1), (1, 2), (3, 4)])))
    isolated = nx.path_graph(5)
    isolated.add_node(99)
    zoo.append(("isolated-node", isolated))
    return zoo


@pytest.mark.parametrize("name,graph", _graph_zoo())
def test_fast_expansion_matches_reference(name, graph):
    reference = exact_minimum_cut_reference(graph)
    fast = minimum_expansion_cut(graph)
    assert fast.exact is True
    assert fast.value == reference.value, name
    # The fast cut is legal and certifies the claimed minimum.
    assert fast.cut
    assert len(fast.cut) <= graph.number_of_nodes() // 2
    assert edge_expansion_of_cut(graph, fast.cut) == fast.value


@pytest.mark.parametrize("name,graph", _graph_zoo())
def test_fast_cheeger_matches_reference(name, graph):
    reference = exact_cheeger_reference(graph)
    value, cut = exact_minimum_cheeger_cut(graph)
    assert value == reference.value, name
    assert cut
    assert len(cut) < graph.number_of_nodes()
    assert cheeger_constant_of_cut(graph, cut) == value


def test_exact_limit_beyond_kernel_cap_falls_back_to_reference(monkeypatch):
    # Asking for exactness past the vectorized kernel's node cap must run the
    # brute force, not raise.  (Cap shrunk so the test stays fast.)
    import repro.spectral.cheeger as cheeger_mod
    import repro.spectral.expansion as expansion_mod

    monkeypatch.setattr(expansion_mod, "MAX_EXACT_NODES", 8)
    monkeypatch.setattr(cheeger_mod, "MAX_EXACT_NODES", 8)
    graph = nx.random_regular_graph(4, 12, seed=5)
    from repro.spectral.cheeger import cheeger_constant
    from repro.spectral.expansion import edge_expansion

    assert edge_expansion(graph, exact_limit=12) == exact_minimum_cut_reference(graph).value
    assert cheeger_constant(graph, exact_limit=12) == exact_cheeger_reference(graph).value


def test_spectral_dense_paths_match_references():
    for seed in range(3):
        graph = nx.random_regular_graph(4, 40, seed=seed)
        assert algebraic_connectivity(graph) == pytest.approx(
            algebraic_connectivity_reference(graph), abs=1e-9
        )
        assert normalized_laplacian_second_eigenvalue(graph) == pytest.approx(
            normalized_lambda2_reference(graph), abs=1e-9
        )


@pytest.mark.slow
def test_spectral_sparse_path_matches_dense_reference():
    # n > the 400-node sparse threshold so the Lanczos path actually runs.
    graph = nx.random_regular_graph(6, 450, seed=7)
    assert algebraic_connectivity(graph) == pytest.approx(
        algebraic_connectivity_reference(graph), abs=1e-9
    )
    assert normalized_laplacian_second_eigenvalue(graph) == pytest.approx(
        normalized_lambda2_reference(graph), abs=1e-9
    )


@pytest.mark.slow
def test_spectral_warm_started_engine_matches_dense_reference():
    # Two successive versions of a >threshold graph: the second solve is
    # warm-started from the first solve's Fiedler vector and must still agree
    # with the dense reference to 1e-9.
    engine = MetricsEngine()
    graph = nx.random_regular_graph(6, 420, seed=3)
    assert engine.algebraic_connectivity(graph, version=1) == pytest.approx(
        algebraic_connectivity_reference(graph), abs=1e-9
    )
    graph.remove_node(0)
    graph.add_edges_from((1, node) for node in range(2, 8) if not graph.has_edge(1, node))
    assert nx.is_connected(graph)
    assert engine.algebraic_connectivity(graph, version=2) == pytest.approx(
        algebraic_connectivity_reference(graph), abs=1e-9
    )
    assert engine.normalized_lambda2(graph, version=2) == pytest.approx(
        normalized_lambda2_reference(graph), abs=1e-9
    )


def test_disconnected_spectral_paths_agree():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert algebraic_connectivity(graph) == 0.0 == algebraic_connectivity_reference(graph)
    assert (
        normalized_laplacian_second_eigenvalue(graph)
        == 0.0
        == normalized_lambda2_reference(graph)
    )


@pytest.mark.parametrize("sample_pairs", [None, 3, 25, 10_000])
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_stretch_identical_to_reference_under_fixed_seed(sample_pairs, seed):
    healed = nx.random_regular_graph(4, 48, seed=seed)
    ghost = nx.random_regular_graph(4, 48, seed=seed + 50)
    ghost.remove_nodes_from(range(4))  # common node set is a strict subset
    fast = stretch_against_ghost(healed, ghost, sample_pairs=sample_pairs, seed=seed)
    reference = stretch_against_ghost_reference(
        healed, ghost, sample_pairs=sample_pairs, seed=seed
    )
    assert fast == reference


def test_stretch_identical_on_disconnected_ghost():
    healed = nx.path_graph(20)
    ghost = nx.Graph()
    ghost.add_nodes_from(range(20))
    ghost.add_edges_from((i, i + 1) for i in range(9))
    for sample_pairs in (None, 7):
        fast = stretch_against_ghost(healed, ghost, sample_pairs=sample_pairs, seed=3)
        reference = stretch_against_ghost_reference(
            healed, ghost, sample_pairs=sample_pairs, seed=3
        )
        assert fast == reference


def test_stretch_reports_healing_failure_as_inf():
    # Connected in the ghost, disconnected in the healed graph -> inf stretch.
    ghost = nx.path_graph(6)
    healed = nx.Graph()
    healed.add_nodes_from(range(6))
    healed.add_edges_from([(0, 1), (2, 3), (4, 5)])
    fast = stretch_against_ghost(healed, ghost)
    reference = stretch_against_ghost_reference(healed, ghost)
    assert fast == reference
    assert fast.max_stretch == float("inf")


def test_snapshot_metrics_unchanged_by_fast_kernels():
    # End-to-end: a full snapshot built on the fast kernels matches one whose
    # expansion/conductance are recomputed by the brute-force references.
    graph = nx.random_regular_graph(4, 12, seed=11)
    snapshot = snapshot_metrics(graph)
    assert snapshot.edge_expansion == exact_minimum_cut_reference(graph).value
    assert snapshot.cheeger_constant == exact_cheeger_reference(graph).value
    assert snapshot.algebraic_connectivity == pytest.approx(
        algebraic_connectivity_reference(graph), abs=1e-9
    )
