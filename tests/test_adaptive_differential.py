"""Adaptive-sweep determinism contract (ISSUE 10): a killed-and-resumed
adaptive sweep makes byte-identical round decisions and produces
byte-identical artifacts, ledger and report — on any executor backend,
with chaos faults injected.

Every decision is a pure function of recorded results + derived seeds, so
the comparison baseline is always the clean, uninterrupted serial run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.report import generate_report
from repro.scenarios import ScenarioSpec, SweepSpec
from repro.scenarios.adaptive import (
    AdaptiveSpec,
    HalvingSchedule,
    StoppingRule,
    run_adaptive,
)
from repro.scenarios.chaos import ENV_VAR, ChaosSpec
from repro.scenarios.policy import PointPolicy
from repro.scenarios.stream import (
    FAILURES_NAME,
    MANIFEST_NAME,
    ROUNDS_NAME,
    is_index_name,
    strip_costs,
)

BACKENDS = ("serial", "process-pool", "subprocess-fleet")

BASE = ScenarioSpec(
    name="adaptive-diff",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=10,
    seed=7,
)

HALVING_SWEEP = SweepSpec(
    base=BASE,
    axes={"healer_kwargs.kappa": [2, 3, 4]},
    adaptive=AdaptiveSpec(
        halving=HalvingSchedule(
            axis="healer_kwargs.kappa",
            objective="amortized_msgs",
            replicates=1,
            timesteps=2,
            growth=2,
        )
    ),
)

STOPPING_SWEEP = SweepSpec(
    base=BASE,
    axes={"healer_kwargs.kappa": [2, 4]},
    adaptive=AdaptiveSpec(
        stopping=StoppingRule(
            metric="amortized_msgs",
            target_half_width=2.0,
            min_replicates=2,
            max_replicates=4,
        )
    ),
)

#: Same fault mix as test_executors.py; seed 7 gives every point of
#: STOPPING_SWEEP a clean attempt within 2 retries (seed 43's schedule
#: needs 4 for these fingerprints).
CHAOS = ChaosSpec(crash_prob=0.3, raise_prob=0.25, torn_write_prob=0.25, seed=7)


def canonical_files(directory: Path):
    """Byte-identity surface of an adaptive sweep directory.

    Artifacts and ``rounds.jsonl`` compare byte-for-byte (the ledger is part
    of the determinism contract); completion logs and the quarantine ledger
    are operational history and excluded; the manifest participates through
    :func:`strip_costs`.
    """
    directory = Path(directory)
    files = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if not is_index_name(path.name)
        and path.name not in (MANIFEST_NAME, FAILURES_NAME)
        and not path.name.startswith(".")
    }
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        files[MANIFEST_NAME] = strip_costs(json.loads(manifest.read_text()))
    return files


def report_markdown(directory: Path) -> str:
    """The report body — the title line names the directory, so drop it."""
    markdown = generate_report(directory, ci=True, include_timeline=False).markdown
    return markdown.split("\n", 1)[1]


class _KilledBetweenRounds(Exception):
    pass


@pytest.mark.parametrize("sweep", [HALVING_SWEEP, STOPPING_SWEEP], ids=["halving", "stopping"])
def test_kill_between_rounds_and_resume_is_byte_identical(tmp_path, sweep):
    clean = run_adaptive(sweep, tmp_path / "clean")
    assert len(clean.rounds) > 1

    def kill_after_first_round(entry):
        if entry["round"] == 0:
            raise _KilledBetweenRounds

    with pytest.raises(_KilledBetweenRounds):
        run_adaptive(sweep, tmp_path / "crash", on_round=kill_after_first_round)
    # Round 0's decision is already durable in the ledger...
    assert (tmp_path / "crash" / ROUNDS_NAME).is_file()
    resumed = run_adaptive(sweep, tmp_path / "crash", resume=True)
    # ... and the resume replays it (verifying against the ledger), then
    # continues: identical decisions, artifacts, ledger bytes and report.
    assert resumed.rounds == clean.rounds
    assert [s.fingerprint() for s in resumed.specs] == [
        s.fingerprint() for s in clean.specs
    ]
    assert resumed.executed + resumed.skipped == len(clean.specs)
    assert canonical_files(tmp_path / "clean") == canonical_files(tmp_path / "crash")
    assert (tmp_path / "crash" / ROUNDS_NAME).read_bytes() == (
        tmp_path / "clean" / ROUNDS_NAME
    ).read_bytes()
    assert report_markdown(tmp_path / "crash") == report_markdown(tmp_path / "clean")


def test_kill_mid_round_and_resume_is_byte_identical(tmp_path, monkeypatch):
    """A crash *inside* a round leaves durable partial artifacts; the resume
    re-derives the same round from the sweep document and finishes it."""
    import repro.scenarios.runner as runner_module

    clean = run_adaptive(STOPPING_SWEEP, tmp_path / "clean")
    calls = []
    real = runner_module.execute_spec

    def dying_execute(spec):
        if len(calls) == 2:
            raise KeyboardInterrupt
        calls.append(spec.name)
        return real(spec)

    monkeypatch.setattr(runner_module, "execute_spec", dying_execute)
    with pytest.raises(KeyboardInterrupt):
        run_adaptive(STOPPING_SWEEP, tmp_path / "crash")
    monkeypatch.setattr(runner_module, "execute_spec", real)
    assert len(calls) == 2  # died with round 0 half-recorded, no ledger entry
    assert not (tmp_path / "crash" / ROUNDS_NAME).exists()

    resumed = run_adaptive(STOPPING_SWEEP, tmp_path / "crash", resume=True)
    assert resumed.skipped == 2 and resumed.executed == len(clean.specs) - 2
    assert resumed.rounds == clean.rounds
    assert canonical_files(tmp_path / "clean") == canonical_files(tmp_path / "crash")
    assert report_markdown(tmp_path / "crash") == report_markdown(tmp_path / "clean")


def test_every_backend_derives_identical_schedules_and_bytes(tmp_path):
    surfaces = {}
    ledgers = {}
    for name in BACKENDS:
        result = run_adaptive(
            HALVING_SWEEP, tmp_path / name, workers=2, executor=name
        )
        assert result.executed == len(result.specs)
        surfaces[name] = canonical_files(tmp_path / name)
        ledgers[name] = (tmp_path / name / ROUNDS_NAME).read_bytes()
    assert surfaces["serial"] == surfaces["process-pool"] == surfaces["subprocess-fleet"]
    assert ledgers["serial"] == ledgers["process-pool"] == ledgers["subprocess-fleet"]


def test_chaos_faults_do_not_change_adaptive_decisions(tmp_path, monkeypatch):
    """Crash/raise/torn-write faults on the fleet retry to convergence and
    leave the schedule — and every byte — equal to the fault-free run."""
    clean = run_adaptive(STOPPING_SWEEP, tmp_path / "clean")
    monkeypatch.setenv(ENV_VAR, CHAOS.to_json())
    chaotic = run_adaptive(
        STOPPING_SWEEP,
        tmp_path / "chaos",
        workers=2,
        executor="subprocess-fleet",
        policy=PointPolicy(max_retries=3),
    )
    assert chaotic.rounds == clean.rounds
    assert canonical_files(tmp_path / "clean") == canonical_files(tmp_path / "chaos")
    assert report_markdown(tmp_path / "chaos") == report_markdown(tmp_path / "clean")


def test_resume_switches_backends_without_changing_bytes(tmp_path):
    """Start serial, die between rounds, finish on the subprocess fleet."""
    clean = run_adaptive(HALVING_SWEEP, tmp_path / "clean")

    def kill_after_first_round(entry):
        if entry["round"] == 0:
            raise _KilledBetweenRounds

    with pytest.raises(_KilledBetweenRounds):
        run_adaptive(HALVING_SWEEP, tmp_path / "crash", on_round=kill_after_first_round)
    resumed = run_adaptive(
        HALVING_SWEEP,
        tmp_path / "crash",
        workers=2,
        executor="subprocess-fleet",
        resume=True,
    )
    assert resumed.rounds == clean.rounds
    assert canonical_files(tmp_path / "clean") == canonical_files(tmp_path / "crash")
