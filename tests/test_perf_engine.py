"""Tests for the metrics engine: version counters, caching, and harness wiring."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.adversary import RandomAdversary
from repro.baselines import RandomKHeal
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.perf.engine import MetricsCache, MetricsEngine
from repro.analysis.invariants import check_theorem2
from repro.spectral.metrics import snapshot_metrics


# ---------------------------------------------------------------- version counters


def test_healer_graph_version_bumps_on_events(small_regular_graph):
    healer = Xheal(kappa=4, seed=1)
    healer.initialize(small_regular_graph)
    v0 = healer.graph_version
    healer.handle_insertion(100, [0, 1])
    v1 = healer.graph_version
    assert v1 > v0
    healer.handle_deletion(100)
    assert healer.graph_version > v1


def test_graph_version_bumps_on_healing_edge_churn(small_regular_graph):
    # A deletion whose healing claims/releases edges must advance the version
    # past the single handle_deletion bump.
    healer = Xheal(kappa=4, seed=1)
    healer.initialize(small_regular_graph)
    before = healer.graph_version
    report = healer.handle_deletion(0)
    assert report.edges_added  # the healing did rewire something
    assert healer.graph_version >= before + 1 + len(report.edges_added)


def test_baseline_healer_has_graph_version(small_regular_graph):
    healer = RandomKHeal(seed=2)
    healer.initialize(small_regular_graph)
    v0 = healer.graph_version
    healer.handle_deletion(3)
    assert healer.graph_version > v0


def test_ghost_version_bumps_and_copies(small_regular_graph):
    ghost = GhostGraph(small_regular_graph)
    v0 = ghost.version
    ghost.record_insertion(100, [0])
    assert ghost.version == v0 + 1
    ghost.record_deletion(100)  # alive view changes even though G' does not
    assert ghost.version == v0 + 2
    assert ghost.copy().version == ghost.version


def test_ghost_graph_version_ignores_deletions(small_regular_graph):
    # Full-ghost metrics are keyed on graph_version, which only insertions
    # advance — deletion-heavy runs must keep those cache entries warm.
    ghost = GhostGraph(small_regular_graph)
    gv = ghost.graph_version
    ghost.record_deletion(0)
    ghost.record_deletion(1)
    assert ghost.graph_version == gv
    ghost.record_insertion(100, [2])
    assert ghost.graph_version == gv + 1
    assert ghost.copy().graph_version == ghost.graph_version


# ---------------------------------------------------------------- MetricsCache


def test_metrics_cache_hit_and_invalidation():
    cache = MetricsCache()
    miss = cache.lookup("k", 1)
    assert miss is not None and cache.misses == 1
    cache.store("k", 1, 42)
    assert cache.lookup("k", 1) == 42
    assert cache.hits == 1
    # A new version invalidates; None bypasses entirely.
    assert cache.lookup("k", 2) != 42 or cache.misses >= 2
    cache.lookup("k", None)
    assert cache.misses == 3
    assert cache.stats() == {"hits": 1, "misses": 3, "entries": 1}


def test_engine_snapshot_matches_plain_snapshot(small_regular_graph):
    engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=50, seed=0)
    ghost = nx.random_regular_graph(4, 16, seed=8)
    by_engine = engine.snapshot(small_regular_graph, ghost=ghost, version=1, ghost_version=1)
    plain = snapshot_metrics(
        small_regular_graph, ghost=ghost, exact_limit=16, stretch_sample_pairs=50, seed=0
    )
    assert by_engine == plain


def test_engine_snapshot_cache_hit_on_same_version(small_regular_graph):
    engine = MetricsEngine(exact_limit=16)
    first = engine.snapshot(small_regular_graph, version=7)
    misses = engine.cache.misses
    second = engine.snapshot(small_regular_graph, version=7)
    assert second == first
    assert engine.cache.misses == misses  # nothing recomputed
    assert engine.cache.hits >= 1


def test_engine_unversioned_calls_bypass_cache(small_regular_graph):
    engine = MetricsEngine(exact_limit=16)
    engine.snapshot(small_regular_graph)
    engine.snapshot(small_regular_graph)
    assert engine.cache.hits == 0


def test_snapshot_with_unknown_ghost_version_bypasses_cache(small_regular_graph):
    # version given but ghost_version omitted: the composite snapshot (whose
    # stretch depends on the ghost) must NOT be served from cache later.
    engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=20)
    ghost_a = nx.random_regular_graph(4, 16, seed=1)
    ghost_b = nx.path_graph(16)
    first = engine.snapshot(small_regular_graph, ghost=ghost_a, version=1)
    second = engine.snapshot(small_regular_graph, ghost=ghost_b, version=1)
    assert first.max_stretch != second.max_stretch or first != second


def test_engine_invariant_check_reuses_snapshot_values(small_regular_graph):
    healer = Xheal(kappa=4, seed=3)
    healer.initialize(small_regular_graph)
    ghost = GhostGraph(small_regular_graph)
    engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=50)
    engine.snapshot(
        healer.graph,
        ghost=ghost.alive_subgraph(),
        version=healer.graph_version,
        ghost_version=ghost.version,
    )
    hits_before = engine.cache.hits
    verdict = engine.check_theorem2(
        healer.graph, ghost, kappa=4, healed_version=healer.graph_version
    )
    # expansion + lambda(healed) + stretch + connectivity come straight from cache.
    assert engine.cache.hits >= hits_before + 3
    assert verdict.all_hold


def test_engine_verdict_matches_plain_verdict(small_regular_graph):
    healer = Xheal(kappa=4, seed=3)
    healer.initialize(small_regular_graph)
    ghost = GhostGraph(small_regular_graph)
    healer.handle_deletion(5)
    ghost.record_deletion(5)
    engine = MetricsEngine(exact_limit=16, stretch_sample_pairs=50, seed=0)
    fast = engine.check_theorem2(
        healer.graph, ghost, kappa=4, healed_version=healer.graph_version
    )
    plain = check_theorem2(
        healer.graph, ghost, kappa=4, exact_limit=16, sample_pairs=50, seed=0
    )
    assert fast == plain


def test_stretch_summary_keyed_per_label(small_regular_graph):
    # Two labeled streams at equal version tuples must not share stretch results.
    engine = MetricsEngine(stretch_sample_pairs=None)
    star = nx.star_graph(9)
    cycle = nx.cycle_graph(10)
    a = engine.snapshot(star, ghost=star, version=1, ghost_version=1, label="A")
    b = engine.snapshot(nx.path_graph(10), ghost=cycle, version=1, ghost_version=1, label="B")
    assert a.max_stretch == 1.0
    assert b.max_stretch > 1.0  # path vs cycle ghost: not label-A's cached 1.0


def test_stretch_summary_factory_not_called_on_cache_hit(small_regular_graph):
    engine = MetricsEngine(stretch_sample_pairs=20)
    ghost = nx.random_regular_graph(4, 16, seed=9)
    calls = []

    def factory():
        calls.append(1)
        return ghost

    first = engine.stretch_summary(small_regular_graph, factory, 1, 1)
    second = engine.stretch_summary(small_regular_graph, factory, 1, 1)
    assert first == second and first is not None
    assert len(calls) == 1


# ---------------------------------------------------------------- harness wiring


def test_run_experiment_reports_cache_hits(small_regular_graph):
    config = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: RandomAdversary(seed=2, delete_probability=0.5),
        initial_graph=small_regular_graph,
        timesteps=12,
        metric_every=4,
        check_invariants_every=4,
        exact_expansion_limit=12,
        stretch_sample_pairs=30,
    )
    result = run_experiment(config)
    assert result.cache_stats["hits"] > 0
    assert result.timeline.entries  # intermediate snapshots were recorded
    assert result.final_metrics.nodes == result.final_graph.number_of_nodes()
