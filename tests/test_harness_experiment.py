"""Tests for the experiment runner and sweeps."""

from dataclasses import replace

import networkx as nx
import pytest

from repro.adversary import DeletionOnlyAdversary, RandomAdversary, ScriptedAdversary
from repro.baselines import ForgivingTreeHeal, NoHeal
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment, run_healer_on_trace
from repro.harness.reporting import format_series, format_table, print_comparison, print_table
from repro.harness.sweeps import sweep_healers, sweep_parameter
from repro.harness.workloads import random_regular_workload
from repro.util.validation import ValidationError


def base_config(**overrides):
    config = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: DeletionOnlyAdversary(seed=2),
        initial_graph=random_regular_workload(20, 4, seed=3),
        timesteps=10,
        kappa=4,
        exact_expansion_limit=14,
        stretch_sample_pairs=60,
    )
    return replace(config, **overrides) if overrides else config


def test_run_experiment_basic_outcome():
    result = run_experiment(base_config())
    assert result.healer_name == "xheal"
    assert result.deletions == 10
    assert result.insertions == 0
    assert result.connected
    assert result.final_verdict.all_hold
    assert result.cost_summary.deletions == 10


def test_run_experiment_validation():
    with pytest.raises(ValidationError):
        run_experiment(base_config(timesteps=0))


def test_run_experiment_records_timeline_and_verdicts():
    result = run_experiment(base_config(metric_every=5, check_invariants_every=5))
    assert len(result.timeline.entries) == 2
    assert len(result.intermediate_verdicts) == 2


def test_run_experiment_stops_when_adversary_exhausted():
    config = base_config(
        adversary_factory=lambda: ScriptedAdversary.deleting([0, 1]), timesteps=50
    )
    result = run_experiment(config)
    assert result.timesteps_executed == 2


def test_summary_row_keys():
    result = run_experiment(base_config(timesteps=5))
    row = result.summary_row()
    for key in ("healer", "h(Gt)", "h(G't)", "max_degree_ratio", "theorem2_holds"):
        assert key in row


def test_run_healer_on_trace_replays_identically():
    first = run_experiment(base_config())
    replay = run_healer_on_trace(
        Xheal(kappa=4, seed=1),
        base_config().initial_graph,
        first.trace,
        kappa=4,
        exact_expansion_limit=14,
    )
    assert replay.deletions == first.deletions
    assert replay.final_graph.number_of_nodes() == first.final_graph.number_of_nodes()


def test_run_healer_on_trace_with_baseline():
    source = run_experiment(base_config(timesteps=8))
    result = run_healer_on_trace(
        ForgivingTreeHeal(seed=0), base_config().initial_graph, source.trace, kappa=4
    )
    assert result.healer_name == "forgiving-tree"
    assert result.deletions == source.deletions


def test_trace_skips_impossible_events():
    # A trace deleting the same node twice: the second deletion must be skipped.
    from repro.adversary.base import AdversaryEvent, EventType

    trace = [AdversaryEvent(EventType.DELETE, 0), AdversaryEvent(EventType.DELETE, 0)]
    result = run_healer_on_trace(NoHeal(), random_regular_workload(10, 4, seed=1), trace)
    assert result.deletions == 1


def test_sweep_parameter_over_kappa():
    sweep = sweep_parameter(
        base_config(timesteps=5),
        label="kappa",
        values=[2, 4],
        configure=lambda config, kappa: replace(
            config, healer_factory=lambda: Xheal(kappa=kappa, seed=1), kappa=kappa
        ),
    )
    assert len(sweep) == 2
    assert sweep[0].row()["parameter"] == 2
    assert all(point.result.connected for point in sweep)


def test_sweep_healers_compares_algorithms():
    sweep = sweep_healers(
        base_config(timesteps=6),
        healers={
            "xheal": lambda: Xheal(kappa=4, seed=1),
            "no-heal": lambda: NoHeal(),
        },
    )
    names = {point.result.healer_name for point in sweep}
    assert names == {"xheal", "no-heal"}


def test_reporting_table_and_series_rendering(capsys):
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
    table = format_table(rows)
    assert "a" in table and "10" in table and "-" in table
    print_table(rows, title="demo")
    captured = capsys.readouterr().out
    assert "demo" in captured
    assert format_table([]) == "(no rows)"
    series = format_series("expansion", [1, 2], [0.5, 0.25])
    assert "expansion" in series and "0.25" in series


def test_print_comparison_uses_summary_rows(capsys):
    result = run_experiment(base_config(timesteps=4))
    print_comparison([result], title="cmp")
    captured = capsys.readouterr().out
    assert "xheal" in captured and "cmp" in captured
