"""Tests for repro.spectral.cheeger."""

import networkx as nx
import pytest

from repro.spectral.cheeger import (
    cheeger_bounds_from_lambda,
    cheeger_constant,
    cheeger_constant_of_cut,
    conductance_sweep,
)
from repro.spectral.laplacian import normalized_laplacian_second_eigenvalue
from repro.util.validation import ValidationError


def test_regular_graph_cheeger_equals_expansion_over_degree():
    # For k-regular graphs phi = h / k (paper, Section 1.1).
    from repro.spectral.expansion import edge_expansion

    graph = nx.random_regular_graph(4, 12, seed=1)
    h = edge_expansion(graph)
    phi = cheeger_constant(graph)
    assert phi == pytest.approx(h / 4, rel=1e-9)


def test_cheeger_of_cut_matches_manual():
    graph = nx.cycle_graph(6)
    # S = {0,1,2}: 2 crossing edges, vol(S)=6, vol(rest)=6.
    assert cheeger_constant_of_cut(graph, {0, 1, 2}) == pytest.approx(2 / 6)


def test_cheeger_cut_validation():
    graph = nx.cycle_graph(4)
    with pytest.raises(ValidationError):
        cheeger_constant_of_cut(graph, set())
    with pytest.raises(ValidationError):
        cheeger_constant_of_cut(graph, set(graph.nodes()))


def test_disconnected_graph_zero_conductance():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert cheeger_constant(graph) == 0.0


def test_two_cliques_conductance_collapses():
    # The paper's Section 1.1 example: constant expansion but O(1/n) conductance.
    from repro.harness.workloads import two_cliques_workload
    from repro.spectral.expansion import edge_expansion

    small = two_cliques_workload(16, expander_degree=4, seed=1)
    large = two_cliques_workload(32, expander_degree=4, seed=1)
    h = edge_expansion(large)
    phi = cheeger_constant(large)
    # The embedded 4-regular expander keeps the edge expansion a constant...
    assert h >= 0.5
    # ...but the clique halves make the conductance collapse towards O(1/n):
    # doubling n shrinks it, and it sits far below the expansion.
    assert phi <= 0.15
    assert phi < cheeger_constant(small)
    assert phi < h / 4


def test_conductance_sweep_returns_certifying_cut():
    graph = nx.random_regular_graph(4, 24, seed=3)
    result = conductance_sweep(graph)
    assert result.value == pytest.approx(cheeger_constant_of_cut(graph, result.cut))


def test_sweep_handles_disconnected():
    graph = nx.Graph([(0, 1), (2, 3)])
    result = conductance_sweep(graph)
    assert result.value == 0.0


def test_exact_vs_sweep_consistency():
    graph = nx.petersen_graph()
    exact = cheeger_constant(graph)
    sweep = conductance_sweep(graph).value
    assert sweep >= exact - 1e-12


def test_cheeger_bounds_from_lambda_sandwich():
    graph = nx.random_regular_graph(4, 16, seed=4)
    lam = normalized_laplacian_second_eigenvalue(graph)
    lower, upper = cheeger_bounds_from_lambda(lam)
    phi = cheeger_constant(graph)
    assert lower - 1e-9 <= phi <= upper + 1e-9


def test_cheeger_bounds_negative_lambda_rejected():
    with pytest.raises(ValidationError):
        cheeger_bounds_from_lambda(-0.1)
