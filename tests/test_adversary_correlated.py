"""Correlated adversaries: domain kills, batched atomicity, trace replay.

ISSUE 9 tentpole part 2 plus the min-nodes satellite.  The contracts:

* a ``domain-kill`` batch drains one whole failure domain per kill turn and
  is *atomically* truncated by ``min_nodes`` — never half-applied;
* the harness applies a batch within one timestep, observing the degree
  tracker per event, so replaying the flat trace is byte-identical;
* ``trace-replay`` plays a recorded JSONL churn log back deterministically,
  batch boundaries included, reproducing the recording run's summary row
  bit for bit.
"""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.adversary.base import Adversary, AdversaryEvent, EventType
from repro.adversary.correlated import DomainKillAdversary, TraceReplayAdversary
from repro.adversary.traces import (
    churn_trace_bytes,
    group_into_batches,
    read_churn_trace,
    write_churn_trace,
)
from repro.core.domains import assign_domain, domain_members
from repro.harness.experiment import run_experiment
from repro.scenarios.registry import ADVERSARIES
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import ValidationError


def labelled_graph(domains: dict[str, list[int]], extra_nodes: int = 0) -> nx.Graph:
    """A connected graph whose nodes carry the given domain labels."""
    nodes = sorted(node for members in domains.values() for node in members)
    nodes += list(range(max(nodes, default=-1) + 1, max(nodes, default=-1) + 1 + extra_nodes))
    graph = nx.cycle_graph(nodes) if len(nodes) > 2 else nx.path_graph(nodes)
    for name, members in domains.items():
        assign_domain(graph, members, name)
    return graph


# -- registry -----------------------------------------------------------------


def test_correlated_adversaries_are_registered_with_aliases():
    assert ADVERSARIES.get("domain-kill") is DomainKillAdversary
    assert ADVERSARIES.get("rack-kill") is DomainKillAdversary
    assert ADVERSARIES.get("trace-replay") is TraceReplayAdversary


# -- the atomic min-nodes guard (satellite regression) ------------------------


def test_batched_deletions_truncate_atomically_at_the_min_nodes_floor():
    graph = nx.cycle_graph(6)
    batch = Adversary._batched_deletions(graph, [0, 1, 2, 3], minimum_remaining=4)
    # 6 nodes, floor 4: only the first two targets survive the truncation.
    assert [event.node for event in batch] == [0, 1]
    assert all(event.is_deletion for event in batch)


def test_batched_deletions_return_empty_when_no_deletion_is_affordable():
    graph = nx.cycle_graph(4)
    assert Adversary._batched_deletions(graph, [0, 1], minimum_remaining=4) == ()
    assert Adversary._batched_deletions(graph, [0], minimum_remaining=9) == ()


def test_batched_deletions_skip_absent_targets_without_spending_allowance():
    graph = nx.cycle_graph(6)
    batch = Adversary._batched_deletions(graph, [99, 0, 98, 1], minimum_remaining=4)
    assert [event.node for event in batch] == [0, 1]


def test_domain_kill_never_half_applies_a_kill(monkeypatch):
    """Regression: a kill bigger than the allowance shrinks, up front.

    The harness receives the already-truncated batch; at no point does a
    partially-applied domain kill exist.  With a 6-node rack and a floor of
    8 on a 10-node graph, exactly 2 members die — in sorted order.
    """
    graph = labelled_graph({"rack00": [0, 1, 2, 3, 4, 5]}, extra_nodes=4)
    adversary = DomainKillAdversary(min_nodes=8, seed=0)
    adversary.bind(graph)
    batch = adversary.next_events(graph, timestep=1)
    assert [event.node for event in batch] == [0, 1]
    assert all(event.is_deletion for event in batch)


def test_domain_kill_falls_back_to_insertion_at_the_floor():
    graph = labelled_graph({"rack00": [0, 1, 2, 3]})
    adversary = DomainKillAdversary(min_nodes=4, seed=0)
    adversary.bind(graph)
    batch = adversary.next_events(graph, timestep=1)
    assert len(batch) == 1 and batch[0].is_insertion


# -- domain-kill selection policies -------------------------------------------


def test_domain_kill_drains_one_whole_domain_per_kill_turn():
    graph = labelled_graph({"rack00": [0, 1, 2], "rack01": [3, 4, 5]}, extra_nodes=4)
    adversary = DomainKillAdversary(order="round-robin", min_nodes=4, seed=0)
    adversary.bind(graph)
    first = adversary.next_events(graph, timestep=1)
    assert [event.node for event in first] == [0, 1, 2]
    graph.remove_nodes_from([0, 1, 2])
    second = adversary.next_events(graph, timestep=2)
    assert [event.node for event in second] == [3, 4, 5]


def test_domain_kill_largest_order_prefers_the_biggest_domain():
    graph = labelled_graph({"small": [0, 1], "big": [2, 3, 4]}, extra_nodes=5)
    adversary = DomainKillAdversary(order="largest", min_nodes=4, seed=0)
    adversary.bind(graph)
    batch = adversary.next_events(graph, timestep=1)
    assert [event.node for event in batch] == [2, 3, 4]


def test_domain_kill_max_kills_bounds_the_correlated_losses():
    graph = labelled_graph({"rack00": [0, 1], "rack01": [2, 3]}, extra_nodes=4)
    adversary = DomainKillAdversary(order="round-robin", min_nodes=4, max_kills=1, seed=0)
    adversary.bind(graph)
    assert all(event.is_deletion for event in adversary.next_events(graph, 1))
    graph.remove_nodes_from([0, 1])
    followup = adversary.next_events(graph, 2)
    assert len(followup) == 1 and followup[0].is_insertion


def test_domain_kill_inserted_nodes_are_domainless():
    spec = ScenarioSpec(
        healer="no-heal",
        adversary="domain-kill",
        adversary_kwargs={"kill_every": 2, "min_nodes": 4},
        topology="pod-mesh",
        topology_kwargs={"pods": 2, "nodes_per_pod": 4},
        timesteps=4,
        seed=3,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
    )
    result = run_experiment(spec.compile())
    inserted = {event.node for event in result.trace if event.is_insertion}
    assert inserted
    members = domain_members(result.final_graph)
    labelled = {node for nodes in members.values() for node in nodes}
    assert not (inserted & labelled)


def test_domain_kill_rejects_bad_parameters():
    with pytest.raises(ValidationError):
        DomainKillAdversary(kill_every=0)
    with pytest.raises(ValidationError):
        DomainKillAdversary(order="biggest-first")
    with pytest.raises(ValidationError):
        DomainKillAdversary(max_kills=-1)


# -- batched events in the harness --------------------------------------------


def test_run_experiment_applies_a_whole_batch_in_one_timestep():
    spec = ScenarioSpec(
        healer="xheal",
        adversary="domain-kill",
        adversary_kwargs={"kill_every": 2, "min_nodes": 5},
        topology="racked-clos",
        topology_kwargs={"racks": 3, "nodes_per_rack": 4},
        timesteps=4,
        seed=5,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
    )
    result = run_experiment(spec.compile())
    # More events than timesteps: batches happened.
    assert result.timesteps_executed == len(result.trace) > 4
    assert result.event_steps == sorted(result.event_steps)
    assert set(result.event_steps) <= {1, 2, 3, 4}
    # Every kill turn's batch shares one timestep.
    by_step: dict[int, list[AdversaryEvent]] = {}
    for event, step in zip(result.trace, result.event_steps):
        by_step.setdefault(step, []).append(event)
    assert any(len(events) > 1 for events in by_step.values())


def test_run_experiment_rejects_an_invalid_batch_before_applying_any_of_it():
    class BadBatch(Adversary):
        name = "bad-batch"

        def next_events(self, graph, timestep):
            nodes = sorted(graph.nodes())
            return (
                AdversaryEvent(EventType.DELETE, nodes[0]),
                AdversaryEvent(EventType.DELETE, 10_000),  # not in the graph
            )

    from repro.harness.experiment import ExperimentConfig
    from repro.scenarios.registry import HEALERS

    config = ExperimentConfig(
        healer_factory=lambda: HEALERS.get("no-heal")(seed=0),
        adversary_factory=lambda: BadBatch(seed=0),
        initial_graph=nx.cycle_graph(6),
        timesteps=2,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
    )
    with pytest.raises(ValidationError, match="batched deletion of unknown node"):
        run_experiment(config)


def test_batch_validation_tracks_membership_deltas_within_the_batch():
    """Insert-then-attach and delete-then-reuse are legal inside one batch."""

    class InsertChain(Adversary):
        name = "insert-chain"

        def __init__(self, seed: int = 0):
            super().__init__(seed=seed)
            self._done = False

        def next_events(self, graph, timestep):
            if self._done:
                return None
            self._done = True
            return (
                AdversaryEvent(EventType.INSERT, 100, (0,)),
                AdversaryEvent(EventType.INSERT, 101, (100,)),  # anchors on 100
                AdversaryEvent(EventType.DELETE, 100),
            )

    from repro.harness.experiment import ExperimentConfig
    from repro.scenarios.registry import HEALERS

    config = ExperimentConfig(
        healer_factory=lambda: HEALERS.get("no-heal")(seed=0),
        adversary_factory=lambda: InsertChain(seed=0),
        initial_graph=nx.cycle_graph(5),
        timesteps=3,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
    )
    result = run_experiment(config)
    assert result.timesteps_executed == 3
    assert result.insertions == 2 and result.deletions == 1
    assert 101 in result.final_graph and 100 not in result.final_graph


# -- churn traces and trace-replay --------------------------------------------


def test_churn_trace_read_write_round_trip(tmp_path):
    events = [
        AdversaryEvent(EventType.DELETE, 3),
        AdversaryEvent(EventType.DELETE, 4),
        AdversaryEvent(EventType.INSERT, 9, (0, 1)),
    ]
    path = write_churn_trace(events, tmp_path / "trace.jsonl", steps=[1, 1, 2])
    parsed_events, parsed_steps = read_churn_trace(path)
    assert parsed_events == events
    assert parsed_steps == [1, 1, 2]
    assert path.read_bytes() == churn_trace_bytes(events, [1, 1, 2])


def test_churn_trace_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "explode", "node": 1}\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        read_churn_trace(path)


def test_group_into_batches_groups_only_consecutive_equal_steps():
    events = [AdversaryEvent(EventType.DELETE, n) for n in range(5)]
    batches = group_into_batches(events, [1, 1, 2, 1, None])
    assert [len(batch) for batch in batches] == [2, 1, 1, 1]
    assert [event.node for event in batches[0]] == [0, 1]


def test_trace_replay_preserves_batch_boundaries(tmp_path):
    events = [
        AdversaryEvent(EventType.DELETE, 0),
        AdversaryEvent(EventType.DELETE, 1),
        AdversaryEvent(EventType.INSERT, 9, (2,)),
    ]
    path = write_churn_trace(events, tmp_path / "trace.jsonl", steps=[1, 1, 2])
    adversary = TraceReplayAdversary(path=str(path))
    graph = nx.cycle_graph(6)
    adversary.bind(graph)
    assert [e.node for e in adversary.next_events(graph, 1)] == [0, 1]
    assert [e.node for e in adversary.next_events(graph, 2)] == [9]
    assert adversary.next_events(graph, 3) is None


def test_trace_replay_label_overrides_the_reported_adversary_name(tmp_path):
    path = write_churn_trace([AdversaryEvent(EventType.DELETE, 0)], tmp_path / "t.jsonl")
    assert TraceReplayAdversary(path=str(path)).name == "trace-replay"
    assert TraceReplayAdversary(path=str(path), label="domain-kill").name == "domain-kill"


def test_recorded_run_replayed_via_trace_replay_is_bit_identical(tmp_path):
    """The ISSUE 9 acceptance criterion, end to end through specs."""
    spec = ScenarioSpec(
        healer="budgeted",
        adversary="domain-kill",
        adversary_kwargs={"kill_every": 3, "min_nodes": 6},
        healer_kwargs={"inner": "xheal", "budget": 2},
        topology="racked-clos",
        topology_kwargs={"racks": 3, "nodes_per_rack": 5},
        timesteps=9,
        seed=7,
        exact_expansion_limit=0,
        stretch_sample_pairs=20,
    )
    original = run_experiment(spec.compile())
    trace_path = tmp_path / "churn.jsonl"
    write_churn_trace(original.trace, trace_path, steps=original.event_steps)

    replay_spec = spec.with_overrides(
        adversary="trace-replay",
        adversary_kwargs={"path": str(trace_path), "label": original.adversary_name},
    )
    replayed = run_experiment(replay_spec.compile())

    assert json.dumps(replayed.summary_row(), sort_keys=True) == json.dumps(
        original.summary_row(), sort_keys=True
    )
    # ... and re-recording the replay reproduces the trace file byte for byte.
    assert (
        churn_trace_bytes(replayed.trace, replayed.event_steps)
        == trace_path.read_bytes()
    )
