"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal


@pytest.fixture
def small_regular_graph() -> nx.Graph:
    """A connected 4-regular graph on 16 nodes (exact spectral computations feasible)."""
    return nx.random_regular_graph(4, 16, seed=7)


@pytest.fixture
def star_graph() -> nx.Graph:
    """A star on 12 nodes with centre 0 — the paper's worst case for tree healers."""
    return nx.star_graph(11)


@pytest.fixture
def grid_graph() -> nx.Graph:
    """A 4x4 grid with integer labels."""
    return nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4), ordering="sorted")


@pytest.fixture
def xheal_on_regular(small_regular_graph) -> tuple[Xheal, GhostGraph]:
    """A kappa=4 Xheal healer initialized on the small regular graph, plus its ghost."""
    healer = Xheal(kappa=4, seed=13)
    healer.initialize(small_regular_graph)
    return healer, GhostGraph(small_regular_graph)


def drive(healer, ghost, adversary, steps):
    """Drive ``healer`` and ``ghost`` with ``adversary`` for up to ``steps`` events."""
    for timestep in range(steps):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
    return healer, ghost
