"""Adaptive sweeps: spec validation, pure decision functions, round ledger,
and end-to-end stopping/halving schedules (ISSUE 10 tentpole).

The determinism contract itself (kill-and-resume byte-identity across
executor backends, with chaos) lives in ``tests/test_adaptive_differential.py``;
this file covers the units it is built from.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, SweepSpec
from repro.scenarios.adaptive import (
    AdaptiveSpec,
    HalvingSchedule,
    StoppingRule,
    run_adaptive,
    select_survivors,
)
from repro.scenarios.cli import main as cli_main
from repro.scenarios.stream import read_rounds, record_round, rounds_path
from repro.scenarios.sweep import point_label, replicate_spec
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="adaptive-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=4,
    exact_expansion_limit=0,
    stretch_sample_pairs=10,
    seed=7,
)

STOPPING = AdaptiveSpec(
    stopping=StoppingRule(
        metric="amortized_msgs",
        target_half_width=1e9,
        min_replicates=2,
        max_replicates=4,
    )
)

HALVING = AdaptiveSpec(
    halving=HalvingSchedule(
        axis="healer_kwargs.kappa",
        objective="amortized_msgs",
        replicates=1,
        timesteps=2,
        growth=2,
    )
)


# -- spec validation and round-trips ------------------------------------------


def test_stopping_rule_validation_rejects_bad_fields():
    with pytest.raises(ValidationError, match="metric"):
        StoppingRule(metric="", target_half_width=1.0).validate()
    with pytest.raises(ValidationError, match="positive finite"):
        StoppingRule(metric="m", target_half_width=0.0).validate()
    with pytest.raises(ValidationError, match="positive finite"):
        StoppingRule(metric="m", target_half_width=float("nan")).validate()
    with pytest.raises(ValidationError, match="min_replicates"):
        StoppingRule(metric="m", target_half_width=1.0, min_replicates=1).validate()
    with pytest.raises(ValidationError, match="max_replicates must be >="):
        StoppingRule(
            metric="m", target_half_width=1.0, min_replicates=5, max_replicates=3
        ).validate()
    with pytest.raises(ValidationError, match="batch"):
        StoppingRule(metric="m", target_half_width=1.0, batch=0).validate()


def test_halving_schedule_validation_rejects_bad_fields():
    with pytest.raises(ValidationError, match="axis"):
        HalvingSchedule(axis="", objective="m").validate()
    with pytest.raises(ValidationError, match="keep"):
        HalvingSchedule(axis="a", objective="m", keep=1.0).validate()
    with pytest.raises(ValidationError, match="keep"):
        HalvingSchedule(axis="a", objective="m", keep=0.0).validate()
    with pytest.raises(ValidationError, match="growth"):
        HalvingSchedule(axis="a", objective="m", growth=0).validate()
    with pytest.raises(ValidationError, match="rounds"):
        HalvingSchedule(axis="a", objective="m", rounds=0).validate()


def test_adaptive_spec_declares_exactly_one_mode():
    with pytest.raises(ValidationError, match="exactly one"):
        AdaptiveSpec().validate()
    with pytest.raises(ValidationError, match="exactly one"):
        AdaptiveSpec(stopping=STOPPING.stopping, halving=HALVING.halving).validate()
    assert STOPPING.validate().mode == "stopping"
    assert HALVING.validate().mode == "halving"


def test_adaptive_spec_checks_fit_with_the_sweep():
    sweep = SweepSpec(base=BASE, axes={"timesteps": [3, 4]}, adaptive=HALVING)
    with pytest.raises(ValidationError, match="not one of the sweep's axes"):
        sweep.validate()
    single = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [4]}, adaptive=HALVING
    )
    with pytest.raises(ValidationError, match="at least two"):
        single.validate()
    budget_vs_axis = SweepSpec(
        base=BASE,
        axes={"healer_kwargs.kappa": [2, 4], "timesteps": [3, 4]},
        adaptive=HALVING,
    )
    with pytest.raises(ValidationError, match="timesteps"):
        budget_vs_axis.validate()
    with pytest.raises(ValidationError, match="replicates"):
        SweepSpec(
            base=BASE,
            axes={"healer_kwargs.kappa": [2, 4]},
            replicates=3,
            adaptive=HALVING,
        ).validate()


def test_adaptive_blocks_round_trip_through_json():
    for adaptive in (STOPPING, HALVING):
        sweep = SweepSpec(
            base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=adaptive
        )
        restored = SweepSpec.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.adaptive == adaptive
    plain = SweepSpec(base=BASE, axes={"healer_kwargs.kappa": [2, 4]})
    assert "adaptive" not in plain.to_dict()
    assert SweepSpec.from_json(plain.to_json()).adaptive is None


def test_adaptive_block_rejects_unknown_fields():
    with pytest.raises(ValidationError, match="unknown"):
        AdaptiveSpec.from_dict({"stoping": {}})
    with pytest.raises(ValidationError, match="unknown"):
        StoppingRule.from_dict({"metric": "m", "target_half_width": 1, "batchez": 2})
    with pytest.raises(ValidationError, match="unknown"):
        HalvingSchedule.from_dict({"axis": "a", "objective": "m", "grow": 3})


def test_adaptive_block_is_fingerprint_neutral():
    """The block schedules execution; it must not change point identity."""
    plain = SweepSpec(base=BASE, axes={"healer_kwargs.kappa": [2, 4]})
    adaptive = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=HALVING
    )
    assignments = plain.points()
    assert assignments == adaptive.points()
    for assignment in assignments:
        for rep in range(2):
            assert replicate_spec(
                plain.base, plain.label, assignment, rep
            ).fingerprint() == replicate_spec(
                adaptive.base, adaptive.label, assignment, rep
            ).fingerprint()


def test_replicate_spec_matches_exhaustive_expansion():
    """Adaptive rounds and ``expand()`` must mint the *same* points."""
    sweep = SweepSpec(base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, replicates=3)
    expanded = sweep.expand()
    minted = [
        replicate_spec(sweep.base, sweep.label, assignment, rep)
        for assignment in sweep.points()
        for rep in range(3)
    ]
    assert minted == expanded


# -- pure decision functions ---------------------------------------------------


def test_select_survivors_keeps_the_best_in_declared_order():
    assert select_survivors(["a", "b", "c", "d"], [4.0, 1.0, 3.0, 2.0], 0.5) == ["b", "d"]
    assert select_survivors(
        ["a", "b", "c", "d"], [4.0, 1.0, 3.0, 2.0], 0.5, minimize=False
    ) == ["a", "c"]


def test_select_survivors_breaks_ties_by_declared_order():
    assert select_survivors(["a", "b", "c"], [1.0, 1.0, 1.0], 0.5) == ["a", "b"]


def test_select_survivors_always_keeps_one_and_drops_one():
    # keep so small it rounds to zero survivors -> clamped up to one...
    assert select_survivors(["a", "b"], [2.0, 1.0], 0.01) == ["b"]
    # ... and so large it would keep everyone -> clamped down to n-1.
    assert select_survivors(["a", "b", "c"], [1.0, 2.0, 3.0], 0.99) == ["a", "b"]
    with pytest.raises(ValidationError, match="one score per arm"):
        select_survivors([], [], 0.5)


# -- the rounds ledger ---------------------------------------------------------


def test_record_round_appends_and_replays(tmp_path):
    first = record_round(tmp_path, {"round": 0, "mode": "halving", "survivors": [2]})
    second = record_round(tmp_path, {"round": 1, "mode": "halving", "survivors": [2]})
    assert [entry["round"] for entry in read_rounds(tmp_path)] == [0, 1]
    # Replaying a recorded round is idempotent: same entry, no new line.
    before = rounds_path(tmp_path).read_bytes()
    assert record_round(tmp_path, {"round": 0, "mode": "halving", "survivors": [2]}) == first
    assert rounds_path(tmp_path).read_bytes() == before
    assert second["round"] == 1


def test_record_round_refuses_to_diverge_from_the_ledger(tmp_path):
    record_round(tmp_path, {"round": 0, "mode": "halving", "survivors": [2]})
    with pytest.raises(ValidationError, match="refusing to diverge"):
        record_round(tmp_path, {"round": 0, "mode": "halving", "survivors": [4]})


def test_record_round_requires_an_integer_round(tmp_path):
    with pytest.raises(ValidationError):
        record_round(tmp_path, {"round": True, "mode": "halving"})
    with pytest.raises(ValidationError):
        record_round(tmp_path, {"mode": "halving"})


# -- end-to-end schedules ------------------------------------------------------


def test_stopping_with_a_huge_target_stops_at_min_replicates(tmp_path):
    sweep = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=STOPPING
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    assert result.mode == "stopping"
    assert len(result.rounds) == 1
    decisions = result.rounds[0]["decisions"]
    assert [d["status"] for d in decisions] == ["converged", "converged"]
    assert [d["replicates"] for d in decisions] == [2, 2]
    # 2 points x min 2 replicates ran; the exhaustive grid is 2 x max 4.
    assert len(result.specs) == 4
    assert result.executed == 4 and result.skipped == 0
    assert result.exhaustive_points == 8 and result.points_saved == 4
    manifest = json.loads((tmp_path / "dir" / "MANIFEST.json").read_text())
    assert manifest["points"] == 4


def test_stopping_with_an_impossible_target_exhausts_the_budget(tmp_path):
    # min_replicates=3: with only two replicates the kappa=2 point's metric
    # values coincide exactly, giving a legitimately zero-width CI.
    rule = StoppingRule(
        metric="amortized_msgs",
        target_half_width=1e-12,
        min_replicates=3,
        max_replicates=5,
        batch=1,
    )
    sweep = SweepSpec(
        base=BASE,
        axes={"healer_kwargs.kappa": [2, 4]},
        adaptive=AdaptiveSpec(stopping=rule),
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    # Replicates per point grow 3 -> 4 -> 5, then every point is exhausted.
    assert [entry["round"] for entry in result.rounds] == [0, 1, 2]
    final = result.rounds[-1]["decisions"]
    assert len(final) == 2
    assert all(d["status"] == "exhausted" for d in final)
    assert all(d["replicates"] == 5 for d in final)
    assert len(result.specs) == 10 and result.points_saved == 0


def test_stopping_reports_the_same_ci_the_report_renders(tmp_path):
    """The stopping oracle IS the report's seeded bootstrap, by construction."""
    from repro.analysis.report import generate_report

    sweep = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=STOPPING
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    report = generate_report(tmp_path / "dir", ci=True, include_timeline=False)
    for decision in result.rounds[-1]["decisions"]:
        low, high = decision["ci_low"], decision["ci_high"]
        assert f"[{low:.4g}, {high:.4g}]" in report.markdown


def test_halving_eliminates_down_to_one_arm(tmp_path):
    sweep = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 3, 4]}, adaptive=HALVING
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    assert result.mode == "halving"
    arms = [len(entry["scores"]) for entry in result.rounds]
    assert arms == sorted(arms, reverse=True) and arms[-1] == 1
    # Budgets grow geometrically and the final round keeps its single arm.
    budgets = [entry["budget"] for entry in result.rounds]
    assert [b["replicates"] for b in budgets] == [2**r for r in range(len(budgets))]
    assert [b["timesteps"] for b in budgets] == [2 * 2**r for r in range(len(budgets))]
    assert len(result.rounds[-1]["survivors"]) == 1
    assert result.points_saved > 0
    # Every decided point is recorded and covered by the manifest.
    manifest = json.loads((tmp_path / "dir" / "MANIFEST.json").read_text())
    assert manifest["points"] == len(result.specs)
    assert {e["fingerprint"] for e in manifest["entries"]} == {
        spec.fingerprint() for spec in result.specs
    }


def test_halving_respects_a_round_cap_and_never_eliminates_last(tmp_path):
    schedule = HalvingSchedule(
        axis="healer_kwargs.kappa",
        objective="amortized_msgs",
        replicates=1,
        rounds=1,
    )
    sweep = SweepSpec(
        base=BASE,
        axes={"healer_kwargs.kappa": [2, 3, 4]},
        adaptive=AdaptiveSpec(halving=schedule),
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    assert len(result.rounds) == 1
    assert result.rounds[0]["survivors"] == [2, 3, 4]


def test_halving_carries_other_axes_through_every_round(tmp_path):
    schedule = HalvingSchedule(
        axis="healer_kwargs.kappa", objective="amortized_msgs", rounds=2
    )
    sweep = SweepSpec(
        base=BASE,
        axes={"healer_kwargs.kappa": [2, 4], "metric_every": [1, 2]},
        adaptive=AdaptiveSpec(halving=schedule),
    )
    result = run_adaptive(sweep, tmp_path / "dir")
    # Round 0: 2 arms x 2 metric_every points; round 1: 1 arm x 2 at 2 reps.
    assert result.rounds[0]["scores"][0]["points"] == 2
    survivors = result.rounds[0]["survivors"]
    assert len(survivors) == 1
    names = {spec.name for spec in result.specs}
    for metric_every in (1, 2):
        assignment = {
            "healer_kwargs.kappa": survivors[0],
            "metric_every": metric_every,
        }
        assert f"{point_label(sweep.label, assignment)}[rep=1]" in names


def test_fresh_adaptive_run_refuses_a_populated_directory(tmp_path):
    sweep = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=STOPPING
    )
    run_adaptive(sweep, tmp_path / "dir")
    with pytest.raises(ValidationError, match="resume"):
        run_adaptive(sweep, tmp_path / "dir")
    # resume=True replays the whole schedule without executing anything.
    replay = run_adaptive(sweep, tmp_path / "dir", resume=True)
    assert replay.executed == 0 and replay.skipped == len(replay.specs)


def test_resuming_a_different_adaptive_sweep_warns_about_orphans(tmp_path):
    sweep = SweepSpec(
        base=BASE, axes={"healer_kwargs.kappa": [2, 4]}, adaptive=STOPPING
    )
    run_adaptive(sweep, tmp_path / "dir")
    (rounds_path(tmp_path / "dir")).unlink()
    other = SweepSpec(
        base=BASE.with_overrides(seed=8),
        axes={"healer_kwargs.kappa": [2, 4]},
        adaptive=STOPPING,
    )
    with pytest.warns(RuntimeWarning, match="not part of this adaptive schedule"):
        run_adaptive(other, tmp_path / "dir", resume=True)


# -- CLI flag plumbing ---------------------------------------------------------


@pytest.fixture
def sweep_file(tmp_path) -> Path:
    path = tmp_path / "sweep.json"
    path.write_text(
        SweepSpec(base=BASE, axes={"healer_kwargs.kappa": [2, 4]}).to_json()
    )
    return path


def test_cli_halving_flag_runs_an_adaptive_sweep(sweep_file, tmp_path, capsys):
    code = cli_main(
        [
            "sweep",
            str(sweep_file),
            "--halving",
            "healer_kwargs.kappa=amortized_msgs",
            "--stream-to",
            str(tmp_path / "out"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mode=halving" in out and "adaptive halving:" in out
    assert (tmp_path / "out" / "rounds.jsonl").is_file()


def test_cli_target_ci_flag_runs_a_stopping_sweep(sweep_file, tmp_path, capsys):
    code = cli_main(
        [
            "sweep",
            str(sweep_file),
            "--target-ci",
            "amortized_msgs=1e9",
            "--stream-to",
            str(tmp_path / "out"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mode=stopping" in out
    assert [entry["mode"] for entry in read_rounds(tmp_path / "out")] == ["stopping"]


def test_cli_adaptive_rejects_contradictory_flags(sweep_file, tmp_path, capsys):
    out_dir = str(tmp_path / "out")
    cases = [
        # adaptive sweeps need a durable directory to round-schedule over
        (["sweep", str(sweep_file), "--halving", "healer_kwargs.kappa=amortized_msgs"], "--stream-to"),
        # --adaptive alone needs a block in the file
        (["sweep", str(sweep_file), "--adaptive", "--stream-to", out_dir], "adaptive"),
        # the two modes are mutually exclusive
        (
            [
                "sweep", str(sweep_file),
                "--halving", "healer_kwargs.kappa=amortized_msgs",
                "--target-ci", "amortized_msgs=1",
                "--stream-to", out_dir,
            ],
            "one",
        ),
        # the schedule owns replicate counts
        (
            [
                "sweep", str(sweep_file),
                "--halving", "healer_kwargs.kappa=amortized_msgs",
                "--replicates", "3",
                "--stream-to", out_dir,
            ],
            "--replicates",
        ),
        # malformed flag values
        (["sweep", str(sweep_file), "--target-ci", "amortized_msgs", "--stream-to", out_dir], "METRIC=WIDTH"),
        (["sweep", str(sweep_file), "--target-ci", "amortized_msgs=wide", "--stream-to", out_dir], "number"),
        (["sweep", str(sweep_file), "--halving", "kappa", "--stream-to", out_dir], "AXIS=OBJECTIVE"),
    ]
    for argv, needle in cases:
        assert cli_main(argv) == 2, argv
        err = capsys.readouterr().err
        assert err.startswith("error:") and needle in err, (argv, err)
